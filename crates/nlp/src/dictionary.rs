//! The failure dictionary: phrase banks per fault tag.
//!
//! The paper constructs this dictionary by making "several passes over
//! the dataset" and verifying the entries manually. The default bank
//! shipped here is reconstructed from the phrases the paper quotes
//! (Tables II and III, the case studies, and Fig. 6's tag set); the
//! [`crate::ngram`]/[`crate::tfidf`] modules provide the mining tooling
//! for extending it against a new corpus.

use crate::normalize::{normalize, stem};
use crate::ontology::FaultTag;
use crate::token::tokenize;
use std::collections::{BTreeMap, BTreeSet};

/// A phrase bank mapping each fault tag to its indicative phrases.
#[derive(Debug, Clone, PartialEq)]
pub struct FailureDictionary {
    entries: BTreeMap<FaultTag, Vec<String>>,
}

impl FailureDictionary {
    /// An empty dictionary.
    pub fn new() -> FailureDictionary {
        FailureDictionary {
            entries: BTreeMap::new(),
        }
    }

    /// The paper-derived default dictionary.
    pub fn default_bank() -> FailureDictionary {
        let mut d = FailureDictionary::new();
        let add = |d: &mut FailureDictionary, tag, phrases: &[&str]| {
            for p in phrases {
                d.add_phrase(tag, p);
            }
        };
        add(
            &mut d,
            FaultTag::Environment,
            &[
                "recklessly behaving road user",
                "construction zone",
                "emergency vehicle",
                "debris on the road",
                "sun glare",
                "heavy rain",
                "weather conditions deteriorated",
                "cyclist swerved suddenly",
                "jaywalking pedestrian",
                "lane closure ahead",
                "erratic road user",
            ],
        );
        add(
            &mut d,
            FaultTag::RecognitionSystem,
            &[
                "didn't see the lead vehicle",
                "failed to detect",
                "perception missed",
                "recognition failure",
                "misclassified object",
                "traffic light not recognized",
                "lane markings not recognized",
                "false obstacle detection",
                "failed to recognize",
                "perception system",
                "missed detection of pothole",
                "bump not detected",
            ],
        );
        add(
            &mut d,
            FaultTag::Planner,
            &[
                "planner failed to anticipate",
                "improper motion planning",
                "motion plan infeasible",
                "path planning error",
                "unwanted maneuver planned",
                "late braking decision",
                "trajectory generation failed",
                "planner",
            ],
        );
        add(
            &mut d,
            FaultTag::IncorrectBehaviorPrediction,
            &[
                "incorrect behavior prediction",
                "behavior prediction wrong",
                "mispredicted other vehicle",
                "predicted the cyclist incorrectly",
            ],
        );
        add(
            &mut d,
            FaultTag::ComputerSystem,
            &[
                "processor overload",
                "compute unit fault",
                "memory exhausted",
                "hardware fault",
                "computer system problem",
                "onboard computer overheated",
            ],
        );
        add(
            &mut d,
            FaultTag::Sensor,
            &[
                "sensor failed to localize in time",
                "gps signal lost",
                "lidar dropout",
                "radar misread",
                "camera blinded",
                "sensor malfunction",
                "calibration drift",
                "localization lost",
            ],
        );
        add(
            &mut d,
            FaultTag::Network,
            &[
                "data rate too high",
                "network congestion",
                "can bus errors",
                "messages dropped on the network",
                "bandwidth exceeded",
                "communication timeout",
            ],
        );
        add(
            &mut d,
            FaultTag::DesignBug,
            &[
                "not designed to handle",
                "unforeseen situation",
                "unsupported scenario",
                "design limitation",
                "outside the operational design domain",
                "unhandled edge case",
            ],
        );
        add(
            &mut d,
            FaultTag::Software,
            &[
                "software module froze",
                "software crash",
                "software bug",
                "software hang",
                "process crashed",
                "null pointer dereference",
                "software fault",
                "software discrepancy",
            ],
        );
        add(
            &mut d,
            FaultTag::AvControllerUnresponsive,
            &[
                "controller did not respond",
                "did not respond to commands",
                "unresponsive controller",
                "steering command ignored",
                "actuator command not executed",
                "controller stopped responding",
            ],
        );
        add(
            &mut d,
            FaultTag::AvControllerDecision,
            &[
                "controller made a wrong decision",
                "incorrect control action",
                "controller chose an incorrect maneuver",
                "bad control decision",
            ],
        );
        add(
            &mut d,
            FaultTag::HangCrash,
            &[
                "watchdog error",
                "watchdog timer expired",
                "system hang",
                "system froze and rebooted",
                "unexpected reboot",
            ],
        );
        d
    }

    /// Adds a phrase under a tag (no-op if already present).
    ///
    /// `UnknownT` accepts no phrases — it is the fallback, not a class —
    /// so phrases added under it are ignored.
    pub fn add_phrase(&mut self, tag: FaultTag, phrase: &str) {
        if tag == FaultTag::UnknownT {
            return;
        }
        let list = self.entries.entry(tag).or_default();
        let phrase = phrase.trim().to_ascii_lowercase();
        if !list.contains(&phrase) {
            list.push(phrase);
        }
    }

    /// The phrases registered under a tag.
    pub fn phrases(&self, tag: FaultTag) -> &[String] {
        self.entries.get(&tag).map_or(&[], Vec::as_slice)
    }

    /// Tags with at least one phrase.
    pub fn tags(&self) -> impl Iterator<Item = FaultTag> + '_ {
        self.entries.keys().copied()
    }

    /// Total number of phrases.
    pub fn len(&self) -> usize {
        self.entries.values().map(Vec::len).sum()
    }

    /// Whether the dictionary is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The normalized (stop-word-free, stemmed) keyword set for a tag.
    pub fn keyword_set(&self, tag: FaultTag) -> BTreeSet<String> {
        let mut set = BTreeSet::new();
        for phrase in self.phrases(tag) {
            for token in normalize(&tokenize(phrase)) {
                set.insert(token);
            }
        }
        set
    }

    /// The normalized phrase token sequences for a tag (for contiguous
    /// phrase matching).
    pub fn phrase_tokens(&self, tag: FaultTag) -> Vec<Vec<String>> {
        self.phrases(tag)
            .iter()
            .map(|p| tokenize(p).iter().map(|t| stem(t)).collect())
            .collect()
    }
}

impl Default for FailureDictionary {
    /// The paper-derived default bank (same as
    /// [`FailureDictionary::default_bank`]).
    fn default() -> FailureDictionary {
        FailureDictionary::default_bank()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_bank_covers_all_classifiable_tags() {
        let d = FailureDictionary::default_bank();
        for tag in FaultTag::ALL {
            if tag == FaultTag::UnknownT {
                assert!(d.phrases(tag).is_empty());
            } else {
                assert!(
                    !d.phrases(tag).is_empty(),
                    "tag {tag} has no dictionary phrases"
                );
            }
        }
        assert!(d.len() > 50);
    }

    #[test]
    fn add_phrase_dedups_and_lowercases() {
        let mut d = FailureDictionary::new();
        d.add_phrase(FaultTag::Software, "Kernel Panic");
        d.add_phrase(FaultTag::Software, "kernel panic");
        assert_eq!(d.phrases(FaultTag::Software), ["kernel panic"]);
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn unknown_t_accepts_nothing() {
        let mut d = FailureDictionary::new();
        d.add_phrase(FaultTag::UnknownT, "anything");
        assert!(d.is_empty());
    }

    #[test]
    fn keyword_sets_are_normalized() {
        let d = FailureDictionary::default_bank();
        let kw = d.keyword_set(FaultTag::Software);
        // "software module froze" → stems present; stop words absent.
        assert!(kw.contains("software"));
        assert!(kw.contains("froze"));
        assert!(!kw.contains("the"));
    }

    #[test]
    fn phrase_tokens_keep_order() {
        let d = FailureDictionary::default_bank();
        let phrases = d.phrase_tokens(FaultTag::HangCrash);
        assert!(phrases
            .iter()
            .any(|p| p.windows(2).any(|w| w[0] == "watchdog" && w[1] == "error")));
    }

    #[test]
    fn keyword_sets_mostly_disjoint() {
        // Sanity: the Recognition and Network vocabularies must not
        // collapse into each other.
        let d = FailureDictionary::default_bank();
        let a = d.keyword_set(FaultTag::RecognitionSystem);
        let b = d.keyword_set(FaultTag::Network);
        let overlap: Vec<_> = a.intersection(&b).collect();
        assert!(overlap.len() <= 2, "overlap too large: {overlap:?}");
    }
}
