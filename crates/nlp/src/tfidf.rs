//! TF-IDF ranking for dictionary construction.
//!
//! When mining dictionary phrases, raw frequency favors boilerplate
//! ("driver resumed manual control" appears in nearly every Nissan line).
//! TF-IDF ranks terms that are frequent in one *class* of documents but
//! rare across classes — exactly the discriminative phrases a failure
//! dictionary needs.

use crate::normalize::remove_stop_words;
use crate::token::tokenize;
use std::collections::{HashMap, HashSet};

/// A scored term.
#[derive(Debug, Clone, PartialEq)]
pub struct ScoredTerm {
    /// The term.
    pub term: String,
    /// Its TF-IDF score.
    pub score: f64,
}

/// A TF-IDF model over a document corpus.
#[derive(Debug, Clone, Default)]
pub struct TfIdf {
    /// Per-document token counts.
    doc_counts: Vec<HashMap<String, usize>>,
    /// Number of documents containing each term.
    doc_freq: HashMap<String, usize>,
}

impl TfIdf {
    /// Builds the model from a corpus (stop words removed).
    pub fn fit<'a, I>(documents: I) -> TfIdf
    where
        I: IntoIterator<Item = &'a str>,
    {
        let mut model = TfIdf::default();
        for doc in documents {
            let tokens = remove_stop_words(&tokenize(doc));
            let mut counts: HashMap<String, usize> = HashMap::new();
            for t in tokens {
                *counts.entry(t).or_insert(0) += 1;
            }
            let distinct: HashSet<&String> = counts.keys().collect();
            for term in distinct {
                *model.doc_freq.entry(term.clone()).or_insert(0) += 1;
            }
            model.doc_counts.push(counts);
        }
        model
    }

    /// Number of documents in the corpus.
    pub fn n_documents(&self) -> usize {
        self.doc_counts.len()
    }

    /// Number of documents containing `term`.
    pub fn document_frequency(&self, term: &str) -> usize {
        self.doc_freq.get(term).copied().unwrap_or(0)
    }

    /// Smoothed inverse document frequency of a term:
    /// `ln((1 + N) / (1 + df)) + 1`.
    pub fn idf(&self, term: &str) -> f64 {
        let n = self.doc_counts.len() as f64;
        let df = self.doc_freq.get(term).copied().unwrap_or(0) as f64;
        ((1.0 + n) / (1.0 + df)).ln() + 1.0
    }

    /// TF-IDF score of a term within document `doc` (term frequency is
    /// count / doc length).
    ///
    /// Returns 0 for unknown documents or absent terms.
    pub fn score(&self, doc: usize, term: &str) -> f64 {
        let Some(counts) = self.doc_counts.get(doc) else {
            return 0.0;
        };
        let total: usize = counts.values().sum();
        if total == 0 {
            return 0.0;
        }
        let tf = counts.get(term).copied().unwrap_or(0) as f64 / total as f64;
        tf * self.idf(term)
    }

    /// The `top_k` highest-scoring terms of document `doc`.
    pub fn top_terms(&self, doc: usize, top_k: usize) -> Vec<ScoredTerm> {
        let Some(counts) = self.doc_counts.get(doc) else {
            return Vec::new();
        };
        let mut scored: Vec<ScoredTerm> = counts
            .keys()
            .map(|t| ScoredTerm {
                term: t.clone(),
                score: self.score(doc, t),
            })
            .collect();
        scored.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .expect("scores are finite")
                .then_with(|| a.term.cmp(&b.term))
        });
        scored.truncate(top_k);
        scored
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Three class-aggregated documents, as used when mining dictionary
    // candidates: one per fault class.
    const DOCS: [&str; 3] = [
        "software froze software crashed software bug driver disengaged",
        "perception missed pedestrian perception failed driver disengaged",
        "watchdog error watchdog timer driver disengaged",
    ];

    #[test]
    fn discriminative_terms_beat_boilerplate() {
        let m = TfIdf::fit(DOCS);
        // "driver"/"disengaged" appear in all docs → low idf.
        assert!(m.idf("software") > m.idf("driver"));
        let top = m.top_terms(0, 2);
        assert_eq!(top[0].term, "software");
        assert_ne!(top[1].term, "driver");
    }

    #[test]
    fn idf_monotone_in_rarity() {
        let m = TfIdf::fit(DOCS);
        assert!(m.idf("watchdog") > m.idf("driver"));
        // Unseen term has the largest idf.
        assert!(m.idf("unseen") >= m.idf("watchdog"));
    }

    #[test]
    fn score_zero_for_absent() {
        let m = TfIdf::fit(DOCS);
        assert_eq!(m.score(0, "watchdog"), 0.0);
        assert_eq!(m.score(99, "software"), 0.0);
        assert!(m.score(0, "software") > 0.0);
    }

    #[test]
    fn n_documents() {
        assert_eq!(TfIdf::fit(DOCS).n_documents(), 3);
        assert_eq!(TfIdf::fit([]).n_documents(), 0);
    }

    #[test]
    fn top_terms_bounds() {
        let m = TfIdf::fit(DOCS);
        assert!(m.top_terms(0, 100).len() >= 4);
        assert_eq!(m.top_terms(0, 1).len(), 1);
        assert!(m.top_terms(99, 5).is_empty());
    }
}
