//! Classifier evaluation: confusion matrices and per-tag
//! precision/recall.
//!
//! The paper validates its dictionary manually ("verified by the
//! authors"); with ground truth available (the synthetic corpus records
//! its intended tags) the validation can be quantitative.

use crate::ontology::FaultTag;
use std::collections::BTreeMap;
use std::fmt;

/// A confusion matrix over fault tags.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ConfusionMatrix {
    /// `counts[(truth, predicted)]`.
    counts: BTreeMap<(FaultTag, FaultTag), usize>,
    total: usize,
}

impl ConfusionMatrix {
    /// An empty matrix.
    pub fn new() -> ConfusionMatrix {
        ConfusionMatrix::default()
    }

    /// Builds a matrix from aligned (truth, predicted) pairs.
    pub fn from_pairs<I>(pairs: I) -> ConfusionMatrix
    where
        I: IntoIterator<Item = (FaultTag, FaultTag)>,
    {
        let mut m = ConfusionMatrix::new();
        for (truth, predicted) in pairs {
            m.record(truth, predicted);
        }
        m
    }

    /// Records one observation.
    pub fn record(&mut self, truth: FaultTag, predicted: FaultTag) {
        *self.counts.entry((truth, predicted)).or_insert(0) += 1;
        self.total += 1;
    }

    /// Total observations.
    pub fn total(&self) -> usize {
        self.total
    }

    /// The count in one cell.
    pub fn count(&self, truth: FaultTag, predicted: FaultTag) -> usize {
        self.counts.get(&(truth, predicted)).copied().unwrap_or(0)
    }

    /// Overall accuracy (0 for an empty matrix).
    pub fn accuracy(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let correct: usize = FaultTag::ALL
            .iter()
            .map(|&t| self.count(t, t))
            .sum();
        correct as f64 / self.total as f64
    }

    /// Precision for one tag: `TP / (TP + FP)` (`None` if never
    /// predicted).
    pub fn precision(&self, tag: FaultTag) -> Option<f64> {
        let tp = self.count(tag, tag);
        let predicted: usize = FaultTag::ALL
            .iter()
            .map(|&t| self.count(t, tag))
            .sum();
        if predicted == 0 {
            None
        } else {
            Some(tp as f64 / predicted as f64)
        }
    }

    /// Recall for one tag: `TP / (TP + FN)` (`None` if never true).
    pub fn recall(&self, tag: FaultTag) -> Option<f64> {
        let tp = self.count(tag, tag);
        let actual: usize = FaultTag::ALL
            .iter()
            .map(|&t| self.count(tag, t))
            .sum();
        if actual == 0 {
            None
        } else {
            Some(tp as f64 / actual as f64)
        }
    }

    /// F1 score for one tag (`None` if undefined).
    pub fn f1(&self, tag: FaultTag) -> Option<f64> {
        let p = self.precision(tag)?;
        let r = self.recall(tag)?;
        if p + r == 0.0 {
            Some(0.0)
        } else {
            Some(2.0 * p * r / (p + r))
        }
    }

    /// Macro-averaged F1 over tags that appear (as truth or prediction).
    pub fn macro_f1(&self) -> f64 {
        let scores: Vec<f64> = FaultTag::ALL
            .iter()
            .filter_map(|&t| self.f1(t))
            .collect();
        if scores.is_empty() {
            0.0
        } else {
            scores.iter().sum::<f64>() / scores.len() as f64
        }
    }

    /// The most-confused (truth, predicted) off-diagonal pairs, sorted by
    /// count descending.
    pub fn top_confusions(&self, k: usize) -> Vec<((FaultTag, FaultTag), usize)> {
        let mut off: Vec<((FaultTag, FaultTag), usize)> = self
            .counts
            .iter()
            .filter(|((t, p), _)| t != p)
            .map(|(&k, &v)| (k, v))
            .collect();
        off.sort_by_key(|&(_, count)| std::cmp::Reverse(count));
        off.truncate(k);
        off
    }
}

impl fmt::Display for ConfusionMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "confusion matrix: {} observations, accuracy {:.3}, macro-F1 {:.3}",
            self.total,
            self.accuracy(),
            self.macro_f1()
        )?;
        for ((truth, predicted), count) in self.top_confusions(10) {
            writeln!(f, "  {truth} -> {predicted}: {count}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use FaultTag::*;

    fn sample() -> ConfusionMatrix {
        ConfusionMatrix::from_pairs([
            (Software, Software),
            (Software, Software),
            (Software, HangCrash), // one confusion
            (Planner, Planner),
            (UnknownT, UnknownT),
        ])
    }

    #[test]
    fn accuracy_and_counts() {
        let m = sample();
        assert_eq!(m.total(), 5);
        assert_eq!(m.count(Software, Software), 2);
        assert_eq!(m.count(Software, HangCrash), 1);
        assert!((m.accuracy() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn precision_recall_f1() {
        let m = sample();
        // Software: TP=2, FN=1 (misread as HangCrash), FP=0.
        assert_eq!(m.precision(Software), Some(1.0));
        assert!((m.recall(Software).unwrap() - 2.0 / 3.0).abs() < 1e-12);
        assert!((m.f1(Software).unwrap() - 0.8).abs() < 1e-12);
        // HangCrash: predicted once, never true.
        assert_eq!(m.precision(HangCrash), Some(0.0));
        assert_eq!(m.recall(HangCrash), None);
        assert_eq!(m.f1(HangCrash), None);
        // Never seen at all.
        assert_eq!(m.precision(Network), None);
    }

    #[test]
    fn top_confusions_off_diagonal_only() {
        let m = sample();
        let top = m.top_confusions(5);
        assert_eq!(top, vec![((Software, HangCrash), 1)]);
    }

    #[test]
    fn empty_matrix() {
        let m = ConfusionMatrix::new();
        assert_eq!(m.accuracy(), 0.0);
        assert_eq!(m.macro_f1(), 0.0);
        assert!(m.top_confusions(3).is_empty());
    }

    #[test]
    fn display_renders() {
        let s = sample().to_string();
        assert!(s.contains("accuracy 0.800"));
        assert!(s.contains("Software -> Hang/Crash: 1"));
    }
}
