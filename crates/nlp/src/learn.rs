//! Dictionary learning: build a failure dictionary from a labeled
//! corpus.
//!
//! The paper's authors constructed their dictionary by making "several
//! passes over the dataset" and selecting the phrases that differentiate
//! fault classes. This module mechanizes one such pass: aggregate the
//! descriptions of each fault class into one document, rank terms by
//! TF-IDF (frequent in the class, rare elsewhere), and take the top
//! discriminative terms and bigrams per class as that class's phrases.

use crate::dictionary::FailureDictionary;
use crate::ngram::{count_ngrams, top_ngrams};
use crate::ontology::FaultTag;
use crate::tfidf::TfIdf;
use std::collections::{BTreeMap, HashMap};

/// Options for dictionary learning.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LearnOptions {
    /// Discriminative unigrams to keep per tag.
    pub terms_per_tag: usize,
    /// Frequent bigrams to keep per tag.
    pub bigrams_per_tag: usize,
    /// Minimum occurrences for a bigram to qualify.
    pub min_bigram_count: usize,
}

impl Default for LearnOptions {
    fn default() -> Self {
        LearnOptions {
            terms_per_tag: 8,
            bigrams_per_tag: 5,
            min_bigram_count: 2,
        }
    }
}

/// Learns a [`FailureDictionary`] from labeled descriptions.
///
/// Descriptions labeled [`FaultTag::UnknownT`] are ignored (the fallback
/// class has no vocabulary by construction). Tags with no examples end
/// up with no phrases — classification then falls back to `Unknown-T`
/// for them, exactly like an undertrained real dictionary.
///
/// # Examples
///
/// ```
/// use disengage_nlp::learn::{learn_dictionary, LearnOptions};
/// use disengage_nlp::{Classifier, FaultTag};
///
/// let corpus = vec![
///     (FaultTag::Software, "software module froze".to_owned()),
///     (FaultTag::Software, "software crash in the module".to_owned()),
///     (FaultTag::HangCrash, "watchdog error".to_owned()),
///     (FaultTag::HangCrash, "watchdog timer expired".to_owned()),
/// ];
/// let dict = learn_dictionary(&corpus, LearnOptions::default());
/// let cl = Classifier::new(dict);
/// assert_eq!(cl.classify("watchdog error").tag, FaultTag::HangCrash);
/// ```
pub fn learn_dictionary(
    labeled: &[(FaultTag, String)],
    options: LearnOptions,
) -> FailureDictionary {
    // Aggregate descriptions per tag.
    let mut per_tag: BTreeMap<FaultTag, Vec<&str>> = BTreeMap::new();
    for (tag, text) in labeled {
        if *tag == FaultTag::UnknownT {
            continue;
        }
        per_tag.entry(*tag).or_default().push(text.as_str());
    }
    let tags: Vec<FaultTag> = per_tag.keys().copied().collect();
    let class_docs: Vec<String> = tags
        .iter()
        .map(|t| per_tag[t].join(" "))
        .collect();
    let model = TfIdf::fit(class_docs.iter().map(String::as_str));

    // Cross-class document frequency of bigrams, to drop boilerplate
    // phrases ("driver took", "manual operation") that occur in most
    // classes' narratives.
    let mut bigram_df: HashMap<String, usize> = HashMap::new();
    for doc in &class_docs {
        for bigram in count_ngrams([doc.as_str()], 2).into_keys() {
            *bigram_df.entry(bigram).or_insert(0) += 1;
        }
    }

    let mut dict = FailureDictionary::new();
    let n_classes = tags.len().max(1);
    for (i, &tag) in tags.iter().enumerate() {
        // Discriminative unigrams: skip boilerplate that appears in more
        // than half the classes ("driver", "test", ...), which TF-IDF
        // down-weights but does not eliminate with this few documents.
        let mut kept = 0usize;
        for term in model.top_terms(i, options.terms_per_tag * 3) {
            if kept >= options.terms_per_tag {
                break;
            }
            if model.document_frequency(&term.term) * 2 > n_classes {
                continue;
            }
            dict.add_phrase(tag, &term.term);
            kept += 1;
        }
        // Frequent *discriminative* bigrams within the class give the
        // phrase-match bonus its contiguous sequences.
        let mut kept_bigrams = 0usize;
        for ngram in top_ngrams(
            per_tag[&tag].iter().copied(),
            2,
            options.min_bigram_count,
            options.bigrams_per_tag * 3,
        ) {
            if kept_bigrams >= options.bigrams_per_tag {
                break;
            }
            if bigram_df.get(&ngram.ngram).copied().unwrap_or(0) * 2 > n_classes {
                continue;
            }
            dict.add_phrase(tag, &ngram.ngram);
            kept_bigrams += 1;
        }
    }
    dict
}

/// Learned-dictionary quality against a labeled evaluation set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LearnEvaluation {
    /// Fraction of evaluation records tagged correctly.
    pub tag_accuracy: f64,
    /// Fraction whose root category is correct.
    pub category_accuracy: f64,
    /// Evaluation records.
    pub n: usize,
}

/// Trains on `train`, evaluates tag/category accuracy on `eval`.
pub fn train_and_evaluate(
    train: &[(FaultTag, String)],
    eval: &[(FaultTag, String)],
    options: LearnOptions,
) -> LearnEvaluation {
    let dict = learn_dictionary(train, options);
    let classifier = crate::vote::Classifier::new(dict);
    let mut tag_hits = 0usize;
    let mut cat_hits = 0usize;
    for (want, text) in eval {
        let got = classifier.classify(text);
        if got.tag == *want {
            tag_hits += 1;
        }
        if got.category == want.category() {
            cat_hits += 1;
        }
    }
    let n = eval.len();
    LearnEvaluation {
        tag_accuracy: if n == 0 { 0.0 } else { tag_hits as f64 / n as f64 },
        category_accuracy: if n == 0 { 0.0 } else { cat_hits as f64 / n as f64 },
        n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vote::Classifier;

    fn toy_corpus() -> Vec<(FaultTag, String)> {
        let mut out = Vec::new();
        let add = |out: &mut Vec<(FaultTag, String)>, tag, texts: &[&str]| {
            for t in texts {
                out.push((tag, (*t).to_owned()));
            }
        };
        add(&mut out, FaultTag::Software, &[
            "software module froze during operation",
            "software crash took down the stack",
            "software bug corrupted the plan",
        ]);
        add(&mut out, FaultTag::HangCrash, &[
            "watchdog error raised",
            "watchdog timer expired and rebooted",
            "system hang with watchdog reset",
        ]);
        add(&mut out, FaultTag::Sensor, &[
            "gps signal lost near the tunnel",
            "lidar dropout on the highway",
            "sensor malfunction on the array",
        ]);
        add(&mut out, FaultTag::UnknownT, &["event recorded"]);
        out
    }

    #[test]
    fn learned_dictionary_classifies_training_classes() {
        let dict = learn_dictionary(&toy_corpus(), LearnOptions::default());
        assert!(!dict.phrases(FaultTag::Software).is_empty());
        assert!(dict.phrases(FaultTag::UnknownT).is_empty());
        let cl = Classifier::new(dict);
        assert_eq!(cl.classify("the software froze again").tag, FaultTag::Software);
        assert_eq!(cl.classify("watchdog timer error").tag, FaultTag::HangCrash);
        assert_eq!(cl.classify("gps dropout").tag, FaultTag::Sensor);
    }

    #[test]
    fn unseen_tags_have_no_phrases() {
        let dict = learn_dictionary(&toy_corpus(), LearnOptions::default());
        assert!(dict.phrases(FaultTag::Network).is_empty());
        let cl = Classifier::new(dict);
        assert_eq!(
            cl.classify("data rate too high for the onboard network").tag,
            FaultTag::UnknownT
        );
    }

    #[test]
    fn train_evaluate_on_same_distribution() {
        let corpus = toy_corpus();
        let eval: Vec<(FaultTag, String)> = vec![
            (FaultTag::Software, "software froze".to_owned()),
            (FaultTag::HangCrash, "watchdog reset happened".to_owned()),
            (FaultTag::Sensor, "lidar dropout again".to_owned()),
        ];
        let e = train_and_evaluate(&corpus, &eval, LearnOptions::default());
        assert_eq!(e.n, 3);
        assert!(e.tag_accuracy >= 2.0 / 3.0, "accuracy {}", e.tag_accuracy);
        assert!(e.category_accuracy >= e.tag_accuracy);
    }

    #[test]
    fn empty_inputs() {
        let dict = learn_dictionary(&[], LearnOptions::default());
        assert!(dict.is_empty());
        let e = train_and_evaluate(&[], &[], LearnOptions::default());
        assert_eq!(e.n, 0);
        assert_eq!(e.tag_accuracy, 0.0);
    }

    #[test]
    fn more_terms_capture_more_vocabulary() {
        let small = learn_dictionary(
            &toy_corpus(),
            LearnOptions {
                terms_per_tag: 2,
                bigrams_per_tag: 1,
                min_bigram_count: 2,
            },
        );
        let large = learn_dictionary(
            &toy_corpus(),
            LearnOptions {
                terms_per_tag: 10,
                bigrams_per_tag: 8,
                min_bigram_count: 1,
            },
        );
        assert!(large.len() > small.len());
    }
}
