//! The fault-tag / failure-category ontology of Table III, grounded in
//! the STPA control structure of Fig. 3.

use std::fmt;

/// Root failure categories (Table III / Table IV columns).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FailureCategory {
    /// Faults in the machine-learning system's design — perception and
    /// planning/control algorithms.
    MlDesign,
    /// Faults in the computing system — hardware and software.
    System,
    /// Could not be categorized.
    UnknownC,
}

impl FailureCategory {
    /// All categories.
    pub const ALL: [FailureCategory; 3] = [
        FailureCategory::MlDesign,
        FailureCategory::System,
        FailureCategory::UnknownC,
    ];

    /// Display name matching the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            FailureCategory::MlDesign => "ML/Design",
            FailureCategory::System => "System",
            FailureCategory::UnknownC => "Unknown-C",
        }
    }
}

impl fmt::Display for FailureCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The sub-division of `ML/Design` used by Table IV: perception-side vs
/// planner/controller-side machine-learning faults.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum MlSubsystem {
    /// Perception / recognition (interpreting sensor data, including
    /// environmental surprises — footnote 5 of the paper).
    Perception,
    /// Planning, decision, and control.
    PlannerController,
}

impl fmt::Display for MlSubsystem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            MlSubsystem::Perception => "Perception/Recognition",
            MlSubsystem::PlannerController => "Planner/Controller",
        })
    }
}

/// The fault tags of Table III (plus `Unknown-T` for unclassifiable
/// causes and the `Incorrect Behavior Prediction` tag visible in Fig. 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FaultTag {
    /// Sudden change in external factors (construction zones, emergency
    /// vehicles, reckless road users, weather).
    Environment,
    /// Computer-system-related problem (e.g. processor overload).
    ComputerSystem,
    /// Failure to recognize the outside environment correctly.
    RecognitionSystem,
    /// Planner failed to anticipate another driver's behavior.
    Planner,
    /// Incorrect prediction of another road user's behavior (Fig. 6
    /// breaks this out of `Planner`).
    IncorrectBehaviorPrediction,
    /// Sensor failed to localize in time.
    Sensor,
    /// Data rate too high for the onboard network.
    Network,
    /// The AV was not designed to handle an unforeseen situation.
    DesignBug,
    /// Software problems: hangs, crashes, bugs.
    Software,
    /// The AV controller did not respond to commands (the `System` half
    /// of Table III's split `AV Controller` row).
    AvControllerUnresponsive,
    /// The AV controller made wrong decisions/predictions (the
    /// `ML/Design` half of the split row).
    AvControllerDecision,
    /// Watchdog timer error.
    HangCrash,
    /// No tag could be associated.
    UnknownT,
}

impl FaultTag {
    /// All tags.
    pub const ALL: [FaultTag; 13] = [
        FaultTag::Environment,
        FaultTag::ComputerSystem,
        FaultTag::RecognitionSystem,
        FaultTag::Planner,
        FaultTag::IncorrectBehaviorPrediction,
        FaultTag::Sensor,
        FaultTag::Network,
        FaultTag::DesignBug,
        FaultTag::Software,
        FaultTag::AvControllerUnresponsive,
        FaultTag::AvControllerDecision,
        FaultTag::HangCrash,
        FaultTag::UnknownT,
    ];

    /// The root failure category of this tag (Table III's mapping).
    ///
    /// Environmental surprises count as perception-related ML faults
    /// (footnote 5 of the paper), so `Environment` maps to `ML/Design`.
    pub fn category(self) -> FailureCategory {
        match self {
            FaultTag::Environment
            | FaultTag::RecognitionSystem
            | FaultTag::Planner
            | FaultTag::IncorrectBehaviorPrediction
            | FaultTag::DesignBug
            | FaultTag::AvControllerDecision => FailureCategory::MlDesign,
            FaultTag::ComputerSystem
            | FaultTag::Sensor
            | FaultTag::Network
            | FaultTag::Software
            | FaultTag::AvControllerUnresponsive
            | FaultTag::HangCrash => FailureCategory::System,
            FaultTag::UnknownT => FailureCategory::UnknownC,
        }
    }

    /// For `ML/Design` tags, which ML subsystem the fault localizes to
    /// (the Table IV split); `None` for `System`/`Unknown` tags.
    pub fn ml_subsystem(self) -> Option<MlSubsystem> {
        match self {
            FaultTag::Environment | FaultTag::RecognitionSystem => Some(MlSubsystem::Perception),
            FaultTag::Planner
            | FaultTag::IncorrectBehaviorPrediction
            | FaultTag::DesignBug
            | FaultTag::AvControllerDecision => Some(MlSubsystem::PlannerController),
            _ => None,
        }
    }

    /// Display name matching Fig. 6's legend.
    pub fn name(self) -> &'static str {
        match self {
            FaultTag::Environment => "Environment",
            FaultTag::ComputerSystem => "Computer System",
            FaultTag::RecognitionSystem => "Recognition System",
            FaultTag::Planner => "Planner",
            FaultTag::IncorrectBehaviorPrediction => "Incorrect Behavior Prediction",
            FaultTag::Sensor => "Sensor",
            FaultTag::Network => "Network",
            FaultTag::DesignBug => "Design Bug",
            FaultTag::Software => "Software",
            FaultTag::AvControllerUnresponsive => "AV Controller",
            FaultTag::AvControllerDecision => "AV Controller (decision)",
            FaultTag::HangCrash => "Hang/Crash",
            FaultTag::UnknownT => "Unknown-T",
        }
    }
}

impl fmt::Display for FaultTag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_three_category_mapping() {
        assert_eq!(FaultTag::Environment.category(), FailureCategory::MlDesign);
        assert_eq!(FaultTag::ComputerSystem.category(), FailureCategory::System);
        assert_eq!(
            FaultTag::RecognitionSystem.category(),
            FailureCategory::MlDesign
        );
        assert_eq!(FaultTag::Planner.category(), FailureCategory::MlDesign);
        assert_eq!(FaultTag::Sensor.category(), FailureCategory::System);
        assert_eq!(FaultTag::Network.category(), FailureCategory::System);
        assert_eq!(FaultTag::DesignBug.category(), FailureCategory::MlDesign);
        assert_eq!(FaultTag::Software.category(), FailureCategory::System);
        assert_eq!(FaultTag::HangCrash.category(), FailureCategory::System);
        assert_eq!(FaultTag::UnknownT.category(), FailureCategory::UnknownC);
    }

    #[test]
    fn av_controller_split_row() {
        assert_eq!(
            FaultTag::AvControllerUnresponsive.category(),
            FailureCategory::System
        );
        assert_eq!(
            FaultTag::AvControllerDecision.category(),
            FailureCategory::MlDesign
        );
    }

    #[test]
    fn ml_subsystem_split() {
        assert_eq!(
            FaultTag::RecognitionSystem.ml_subsystem(),
            Some(MlSubsystem::Perception)
        );
        assert_eq!(
            FaultTag::Environment.ml_subsystem(),
            Some(MlSubsystem::Perception)
        );
        assert_eq!(
            FaultTag::Planner.ml_subsystem(),
            Some(MlSubsystem::PlannerController)
        );
        assert_eq!(FaultTag::Software.ml_subsystem(), None);
        assert_eq!(FaultTag::UnknownT.ml_subsystem(), None);
    }

    #[test]
    fn every_tag_has_consistent_subsystem() {
        for tag in FaultTag::ALL {
            match tag.category() {
                FailureCategory::MlDesign => assert!(
                    tag.ml_subsystem().is_some(),
                    "{tag} is ML/Design but has no subsystem"
                ),
                _ => assert!(
                    tag.ml_subsystem().is_none(),
                    "{tag} is not ML/Design but has a subsystem"
                ),
            }
        }
    }

    #[test]
    fn names_unique() {
        let mut names: Vec<&str> = FaultTag::ALL.iter().map(|t| t.name()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), FaultTag::ALL.len());
    }
}
