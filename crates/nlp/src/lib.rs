//! Stage III of the paper's pipeline: NLP-based labeling and tagging of
//! disengagement and accident causes.
//!
//! The paper builds a *failure dictionary* — phrases mined from the raw
//! logs over several passes — and uses a keyword-voting scheme to assign
//! each free-text disengagement cause a **fault tag** (Table III) and a
//! **failure category** (`ML/Design` vs `System` vs `Unknown-C`), grounded
//! in the STPA control-structure ontology. This crate implements that
//! machinery:
//!
//! * [`token`] — tokenizer for log text,
//! * [`normalize`] — stop-word removal and a light suffix stemmer,
//! * [`ontology`] — the fault tags and categories of Table III,
//! * [`dictionary`] — the failure dictionary (shipped with the
//!   paper-derived phrase bank; extensible),
//! * [`vote`] — the keyword-voting classifier with `Unknown-T` fallback,
//! * [`ngram`] / [`tfidf`] — the dictionary-construction tooling (mine
//!   candidate phrases from a corpus and rank them).
//!
//! # Examples
//!
//! ```
//! use disengage_nlp::vote::Classifier;
//! use disengage_nlp::ontology::{FaultTag, FailureCategory};
//!
//! let classifier = Classifier::with_default_dictionary();
//! let a = classifier.classify("the AV didn't see the lead vehicle; perception missed it");
//! assert_eq!(a.tag, FaultTag::RecognitionSystem);
//! assert_eq!(a.category, FailureCategory::MlDesign);
//!
//! let b = classifier.classify("watchdog error");
//! assert_eq!(b.tag, FaultTag::HangCrash);
//! assert_eq!(b.category, FailureCategory::System);
//! ```

pub mod dictionary;
pub mod eval;
pub mod learn;
pub mod ngram;
pub mod normalize;
pub mod ontology;
pub mod tfidf;
pub mod token;
pub mod vote;

pub use dictionary::FailureDictionary;
pub use ontology::{FailureCategory, FaultTag};
pub use vote::{Classifier, TagAssignment, TagVote};
