//! Token normalization: stop-word removal and light stemming.

/// English stop words that carry no signal in disengagement logs.
const STOP_WORDS: &[&str] = &[
    "a", "an", "the", "and", "or", "of", "to", "in", "on", "at", "for", "as", "is", "was",
    "were", "be", "been", "by", "with", "from", "that", "this", "it", "its", "had", "has",
    "have", "did", "do", "does", "not", "no", "so", "then", "than", "but", "into", "onto",
    "out", "up", "down", "over", "under", "result", "resumed", "safely",
];

/// Whether a token is a stop word.
pub fn is_stop_word(token: &str) -> bool {
    STOP_WORDS.contains(&token)
}

/// Removes stop words from a token stream.
///
/// # Examples
///
/// ```
/// # use disengage_nlp::normalize::remove_stop_words;
/// let tokens: Vec<String> = ["the", "planner", "was", "confused"]
///     .iter().map(|s| s.to_string()).collect();
/// assert_eq!(remove_stop_words(&tokens), vec!["planner", "confused"]);
/// ```
pub fn remove_stop_words(tokens: &[String]) -> Vec<String> {
    tokens
        .iter()
        .filter(|t| !is_stop_word(t))
        .cloned()
        .collect()
}

/// A light suffix stemmer tuned for failure-log vocabulary.
///
/// Handles the inflections that actually occur in the reports —
/// `disengaged`/`disengagement(s)` → `disengag`, `braking`/`braked` →
/// `brak`, `predictions` → `predict` — without the full Porter machinery.
/// Words of four characters or fewer are returned unchanged.
///
/// # Examples
///
/// ```
/// # use disengage_nlp::normalize::stem;
/// assert_eq!(stem("disengagements"), "disengag");
/// assert_eq!(stem("disengaged"), "disengag");
/// assert_eq!(stem("braking"), "brak");
/// assert_eq!(stem("car"), "car");
/// ```
pub fn stem(token: &str) -> String {
    let t = token;
    if t.len() <= 4 {
        return t.to_owned();
    }
    // Ordered longest-suffix-first.
    const SUFFIXES: &[&str] = &[
        "ements", "ement", "ications", "ication", "ations", "ation", "nesses", "ness", "ingly",
        "edly", "ings", "ing", "ions", "ion", "ies", "ers", "er", "ed", "es", "s", "ly",
    ];
    for suf in SUFFIXES {
        if let Some(stripped) = t.strip_suffix(suf) {
            if stripped.len() >= 3 {
                return stripped.to_owned();
            }
        }
    }
    t.to_owned()
}

/// Full normalization: stop-word removal then stemming.
pub fn normalize(tokens: &[String]) -> Vec<String> {
    remove_stop_words(tokens)
        .iter()
        .map(|t| stem(t))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::token::tokenize;

    #[test]
    fn stop_words_removed() {
        let t = tokenize("the driver of the AV did not react");
        let n = remove_stop_words(&t);
        assert_eq!(n, vec!["driver", "av", "react"]);
    }

    #[test]
    fn stemming_aligns_inflections() {
        assert_eq!(stem("disengagement"), stem("disengaged"));
        assert_eq!(stem("prediction"), stem("predicted"));
        assert_eq!(stem("recognition"), "recognit");
        assert_eq!(stem("planning"), "plann");
    }

    #[test]
    fn short_words_untouched() {
        assert_eq!(stem("av"), "av");
        assert_eq!(stem("gps"), "gps");
        assert_eq!(stem("lane"), "lane");
    }

    #[test]
    fn stem_keeps_minimum_stem_length() {
        // "using" -> "us" would be too short; kept as "us"? No: stripped
        // len 2 < 3, so unchanged.
        assert_eq!(stem("using"), "using");
    }

    #[test]
    fn normalize_pipeline() {
        let t = tokenize("The planner failed to anticipate the other driver's behavior");
        let n = normalize(&t);
        assert!(n.contains(&"plann".to_owned()));
        assert!(n.contains(&"fail".to_owned()));
        assert!(n.contains(&"behavior".to_owned()));
        assert!(!n.iter().any(|w| w == "the"));
    }
}
