//! Stage IV injector: degenerate numeric series.
//!
//! The statistics substrate sits at the end of the pipeline, where a
//! quarantine lane can no longer help — a `stats` panic kills the whole
//! run. These generators enumerate the pathological shapes (empty,
//! constant, NaN-laced, infinite, negative) that every fitter and test
//! must reject with a typed `StatsError`, never a panic. The chaos
//! property suite feeds them to `fit`, `ks`, and `dist` under
//! `catch_unwind`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A pathological sample shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DegenerateKind {
    /// No observations at all.
    Empty,
    /// A single observation (below most fitters' minimum n).
    Single,
    /// All observations identical (zero variance).
    Constant,
    /// A plausible sample with NaNs spliced in.
    NanLaced,
    /// A plausible sample with infinities spliced in.
    InfLaced,
    /// Strictly negative values (outside positive-support fits).
    Negative,
    /// All zeros (boundary of positive support).
    Zeros,
}

impl DegenerateKind {
    /// Every degenerate shape.
    pub const ALL: [DegenerateKind; 7] = [
        DegenerateKind::Empty,
        DegenerateKind::Single,
        DegenerateKind::Constant,
        DegenerateKind::NanLaced,
        DegenerateKind::InfLaced,
        DegenerateKind::Negative,
        DegenerateKind::Zeros,
    ];

    /// Stable snake_case name.
    pub fn name(self) -> &'static str {
        match self {
            DegenerateKind::Empty => "empty",
            DegenerateKind::Single => "single",
            DegenerateKind::Constant => "constant",
            DegenerateKind::NanLaced => "nan_laced",
            DegenerateKind::InfLaced => "inf_laced",
            DegenerateKind::Negative => "negative",
            DegenerateKind::Zeros => "zeros",
        }
    }

    /// Generates one series of this shape (seeded; `n` is the nominal
    /// length, ignored where the shape dictates it).
    pub fn series(self, seed: u64, n: usize) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xDE6E);
        let base = |rng: &mut StdRng| -> Vec<f64> {
            (0..n.max(4)).map(|_| rng.gen_range(0.1..10.0)).collect()
        };
        match self {
            DegenerateKind::Empty => Vec::new(),
            DegenerateKind::Single => vec![rng.gen_range(0.1..10.0)],
            DegenerateKind::Constant => vec![rng.gen_range(0.1..10.0); n.max(4)],
            DegenerateKind::NanLaced => {
                let mut xs = base(&mut rng);
                let at = rng.gen_range(0..xs.len());
                xs[at] = f64::NAN;
                xs
            }
            DegenerateKind::InfLaced => {
                let mut xs = base(&mut rng);
                let at = rng.gen_range(0..xs.len());
                xs[at] = f64::INFINITY;
                xs
            }
            DegenerateKind::Negative => base(&mut rng).into_iter().map(|x| -x).collect(),
            DegenerateKind::Zeros => vec![0.0; n.max(4)],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_are_what_they_claim() {
        assert!(DegenerateKind::Empty.series(1, 8).is_empty());
        assert_eq!(DegenerateKind::Single.series(1, 8).len(), 1);
        let c = DegenerateKind::Constant.series(1, 8);
        assert!(c.windows(2).all(|w| w[0] == w[1]) && c.len() == 8);
        assert!(DegenerateKind::NanLaced.series(1, 8).iter().any(|x| x.is_nan()));
        assert!(DegenerateKind::InfLaced.series(1, 8).iter().any(|x| x.is_infinite()));
        assert!(DegenerateKind::Negative.series(1, 8).iter().all(|&x| x < 0.0));
        assert!(DegenerateKind::Zeros.series(1, 8).iter().all(|&x| x == 0.0));
    }

    #[test]
    fn deterministic_per_seed() {
        for kind in DegenerateKind::ALL {
            let a: Vec<u64> = kind.series(9, 16).iter().map(|x| x.to_bits()).collect();
            let b: Vec<u64> = kind.series(9, 16).iter().map(|x| x.to_bits()).collect();
            assert_eq!(a, b, "{kind:?}");
        }
    }

    #[test]
    fn names_unique() {
        let names: std::collections::BTreeSet<&str> =
            DegenerateKind::ALL.iter().map(|k| k.name()).collect();
        assert_eq!(names.len(), DegenerateKind::ALL.len());
    }
}
