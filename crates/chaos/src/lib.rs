//! Seeded fault injection and resilience auditing for the Stage I–IV
//! pipeline.
//!
//! The paper's premise is surviving messy inputs — scanned DMV PDFs with
//! OCR noise, twelve manufacturer-specific schemas, free-text causes
//! that resist tagging. This crate makes that a testable property
//! instead of a hope: a seeded [`FaultPlan`] perturbs the raw documents
//! between Stage I (digitization) and Stage II (parsing), and an
//! [`audit`](crate::audit::audit) pass classifies every injected fault
//! into exactly one outcome:
//!
//! * **corrected** — the pipeline neutralized the fault (the recovered
//!   records match a fault-free parse of the same document);
//! * **quarantined** — the fault surfaced as a parse/validation failure
//!   in the manual-review queue (detected, not silently wrong);
//! * **absorbed** — the run completed but the output silently differs
//!   (a dropped row nobody noticed, a duplicated record, a corrupted
//!   field that still parsed).
//!
//! The identity `injected == corrected + quarantined + absorbed` holds
//! by construction and is enforced by
//! `disengage_core::telemetry::reconcile` and the `repro --chaos`
//! campaign runner.
//!
//! Fault taxonomy (see `FaultKind`): OCR-style character corruption and
//! truncation beyond the calibrated CER, dropped/duplicated/reordered
//! report rows, schema drift (mangled numeric fields and dates, corrupt
//! section headers), and blanked free-text causes. Two further
//! injectors sit outside the document path: [`poison`] degrades the
//! Stage III failure dictionary, and [`degenerate`] produces the
//! pathological numeric series (empty, constant, NaN-laced) that the
//! `stats` crate must reject without panicking.
//!
//! Everything is a pure function of the plan's seed: rate 0 injects
//! nothing and byte-identical output to a clean run is guaranteed (and
//! checked by the campaign runner).
//!
//! # Examples
//!
//! ```
//! use disengage_chaos::{inject_documents, FaultPlan};
//! use disengage_reports::formats::{DocumentKind, RawDocument};
//! use disengage_reports::{Manufacturer, ReportYear};
//!
//! let docs = vec![RawDocument::new(
//!     Manufacturer::Nissan,
//!     ReportYear::R2016,
//!     DocumentKind::Disengagements,
//!     "car-0: 2016-01-04 auto disengage 0.8s software froze\n",
//! )];
//! let plan = FaultPlan::new(1.0, 7); // fault every line
//! let (faulted, log) = inject_documents(&plan, &docs);
//! assert_eq!(log.total(), 1);
//! assert_ne!(faulted[0].text, docs[0].text);
//!
//! // Rate 0 is the identity.
//! let (clean, log) = inject_documents(&FaultPlan::new(0.0, 7), &docs);
//! assert_eq!(log.total(), 0);
//! assert_eq!(clean[0].text, docs[0].text);
//! ```

pub mod audit;
pub mod degenerate;
pub mod inject;
pub mod io;
pub mod plan;
pub mod poison;

pub use audit::{audit, audit_at, AuditedFault, ChaosAudit, FaultFate, KindOutcomes};
pub use degenerate::DegenerateKind;
pub use inject::{inject_documents, inject_documents_at, FaultLog, InjectedFault};
pub use io::{plant_litter, IoFaultPlan, SeededIoFaults};
pub use plan::{FaultKind, FaultPlan};
pub use poison::poison_dictionary;
