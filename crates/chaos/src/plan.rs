//! The fault plan: a seeded, `Copy` description of how hard to shake
//! the pipeline.

use std::fmt;

/// What kind of perturbation an injector applied to a document line.
///
/// The taxonomy maps onto the failure modes of the paper's Stage I–II
/// data path: OCR noise past the calibrated character-error rate
/// ([`FaultKind::CharNoise`], [`FaultKind::Truncate`]), record-stream
/// corruption ([`FaultKind::RowDrop`], [`FaultKind::RowDup`],
/// [`FaultKind::RowSwap`]), schema drift in the manufacturer formats
/// ([`FaultKind::FieldDrift`]), and free-text causes that vanish before
/// Stage III can tag them ([`FaultKind::BlankCause`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FaultKind {
    /// Random characters replaced with OCR-style confusables/junk.
    CharNoise,
    /// The line cut off mid-field (a torn or mis-cropped scan).
    Truncate,
    /// The line silently removed (a lost record).
    RowDrop,
    /// The line emitted twice (a double scan).
    RowDup,
    /// The line swapped with its successor (shuffled pages).
    RowSwap,
    /// A numeric or date field mangled out of its valid range.
    FieldDrift,
    /// The free-text cause stripped, leaving only structured fields.
    BlankCause,
}

impl FaultKind {
    /// Every fault kind, in injection-weight order.
    pub const ALL: [FaultKind; 7] = [
        FaultKind::CharNoise,
        FaultKind::Truncate,
        FaultKind::RowDrop,
        FaultKind::RowDup,
        FaultKind::RowSwap,
        FaultKind::FieldDrift,
        FaultKind::BlankCause,
    ];

    /// Stable snake_case name (used as a telemetry key segment).
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::CharNoise => "char_noise",
            FaultKind::Truncate => "truncate",
            FaultKind::RowDrop => "row_drop",
            FaultKind::RowDup => "row_dup",
            FaultKind::RowSwap => "row_swap",
            FaultKind::FieldDrift => "field_drift",
            FaultKind::BlankCause => "blank_cause",
        }
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A seeded fault-injection plan.
///
/// `Copy` on purpose: it rides inside pipeline configuration structs
/// without breaking their `Copy`/`Clone` derives. The plan is the only
/// source of randomness for injection — two runs with the same plan
/// perturb the same lines the same way.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Seed for the injection RNG (independent of corpus/OCR seeds).
    pub seed: u64,
    /// Per-line fault probability in `[0, 1]`. Rate `0` injects
    /// nothing and leaves every byte untouched.
    pub rate: f64,
    /// Bound on OCR dictionary-correction retries under chaos (attempt
    /// `k` escalates the repair edit-distance, capped at 2).
    pub repair_attempts: u32,
}

impl FaultPlan {
    /// A plan at `rate` with the default repair budget.
    pub fn new(rate: f64, seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            rate: rate.clamp(0.0, 1.0),
            repair_attempts: 2,
        }
    }

    /// Whether this plan injects anything at all.
    pub fn active(&self) -> bool {
        self.rate > 0.0
    }

    /// Parses the CLI form `<rate>[,<seed>]` (e.g. `0.05` or `0.05,7`).
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for a malformed rate/seed or a
    /// rate outside `[0, 1]`.
    pub fn parse(s: &str) -> Result<FaultPlan, String> {
        let (rate_s, seed_s) = match s.split_once(',') {
            Some((r, sd)) => (r, Some(sd)),
            None => (s, None),
        };
        let rate: f64 = rate_s
            .trim()
            .parse()
            .map_err(|_| format!("invalid chaos rate `{rate_s}`"))?;
        if !(0.0..=1.0).contains(&rate) {
            return Err(format!("chaos rate {rate} outside [0, 1]"));
        }
        let seed: u64 = match seed_s {
            Some(sd) => sd
                .trim()
                .parse()
                .map_err(|_| format!("invalid chaos seed `{sd}`"))?,
            None => 0xC4A05,
        };
        Ok(FaultPlan::new(rate, seed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_rate_only() {
        let p = FaultPlan::parse("0.05").unwrap();
        assert!((p.rate - 0.05).abs() < 1e-12);
        assert_eq!(p.seed, 0xC4A05);
    }

    #[test]
    fn parse_rate_and_seed() {
        let p = FaultPlan::parse("0.25,42").unwrap();
        assert!((p.rate - 0.25).abs() < 1e-12);
        assert_eq!(p.seed, 42);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(FaultPlan::parse("lots").is_err());
        assert!(FaultPlan::parse("1.5").is_err());
        assert!(FaultPlan::parse("-0.1").is_err());
        assert!(FaultPlan::parse("0.1,x").is_err());
    }

    #[test]
    fn rate_clamped_and_active() {
        assert!(!FaultPlan::new(0.0, 1).active());
        assert!(FaultPlan::new(0.5, 1).active());
        assert_eq!(FaultPlan::new(7.0, 1).rate, 1.0);
    }

    #[test]
    fn kind_names_unique_and_stable() {
        let names: std::collections::BTreeSet<&str> =
            FaultKind::ALL.iter().map(|k| k.name()).collect();
        assert_eq!(names.len(), FaultKind::ALL.len());
        assert_eq!(FaultKind::RowDrop.to_string(), "row_drop");
    }
}
