//! Document-level fault injectors.
//!
//! Faults are applied to the raw document text between Stage I
//! (digitization) and Stage II (parsing) — exactly where real-world
//! corruption enters: a bad scan, a torn page, a duplicated sheet, a
//! field key-entered out of range. Injection is a pure function of the
//! plan seed and the document index, so a fault log can be replayed and
//! audited after the run.

use crate::plan::{FaultKind, FaultPlan};
use disengage_reports::formats::RawDocument;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One injected fault: what was done, and where.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InjectedFault {
    /// Fault kind applied.
    pub kind: FaultKind,
    /// Index of the document in the injected batch.
    pub doc: usize,
    /// 1-based line within the document's original text.
    pub line: usize,
}

impl InjectedFault {
    /// One-line description for flight-recorder events and postmortem
    /// rendering, e.g. `char_noise doc 3 line 14`.
    pub fn describe(&self) -> String {
        format!("{} doc {} line {}", self.kind.name(), self.doc, self.line)
    }
}

/// The ledger of everything a plan injected into a batch.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultLog {
    /// Every fault, in (document, line) order.
    pub faults: Vec<InjectedFault>,
}

impl FaultLog {
    /// Total faults injected.
    pub fn total(&self) -> u64 {
        self.faults.len() as u64
    }

    /// Faults of one kind.
    pub fn count(&self, kind: FaultKind) -> u64 {
        self.faults.iter().filter(|f| f.kind == kind).count() as u64
    }

    /// Faults grouped by document index.
    pub fn by_document(&self) -> std::collections::BTreeMap<usize, Vec<InjectedFault>> {
        let mut map: std::collections::BTreeMap<usize, Vec<InjectedFault>> =
            std::collections::BTreeMap::new();
        for &f in &self.faults {
            map.entry(f.doc).or_default().push(f);
        }
        map
    }
}

/// OCR-confusable junk used by [`FaultKind::CharNoise`].
const NOISE_CHARS: [char; 10] = ['#', '@', '~', '^', '0', 'O', 'l', '|', '5', 'S'];

/// Applies the plan to a batch of documents, returning the perturbed
/// batch and the fault ledger. Rate 0 returns a byte-identical copy and
/// an empty log.
pub fn inject_documents(plan: &FaultPlan, docs: &[RawDocument]) -> (Vec<RawDocument>, FaultLog) {
    inject_documents_at(plan, docs, 0)
}

/// Like [`inject_documents`], but for a batch that starts at global
/// corpus index `base`: document `d` of the slice is perturbed exactly
/// as document `base + d` of the full corpus would be, and the fault
/// log records global indices. This is what keeps sharded execution
/// byte-identical to a monolithic run — each shard injects its own
/// slice under the corpus-wide plan.
pub fn inject_documents_at(
    plan: &FaultPlan,
    docs: &[RawDocument],
    base: usize,
) -> (Vec<RawDocument>, FaultLog) {
    let mut log = FaultLog::default();
    if !plan.active() {
        return (docs.to_vec(), log);
    }
    let out = docs
        .iter()
        .enumerate()
        .map(|(d, doc)| {
            // One RNG per document, keyed by (seed, global index)
            // through the workspace-wide SplitMix64 derivation — the
            // same scheme Stage I uses for OCR noise, so a document's
            // perturbation never depends on its neighbours, its batch
            // position history, or which slice of the corpus it was
            // injected in.
            let g = base + d;
            let mut rng = StdRng::seed_from_u64(rand::derive_seed(plan.seed, g as u64));
            let text = inject_text(plan, &mut rng, g, &doc.text, &mut log);
            RawDocument::new(doc.manufacturer, doc.report_year, doc.kind, text)
        })
        .collect();
    (out, log)
}

/// Perturbs one document's text. Line-level faults are decided in a
/// first pass (one RNG draw sequence over the original lines, so the
/// stream is stable) and applied in a second.
fn inject_text(
    plan: &FaultPlan,
    rng: &mut StdRng,
    doc_index: usize,
    text: &str,
    log: &mut FaultLog,
) -> String {
    let lines: Vec<&str> = text.lines().collect();
    // Pass 1: decide.
    let mut decisions: Vec<Option<FaultKind>> = Vec::with_capacity(lines.len());
    for line in &lines {
        if line.trim().is_empty() || !rng.gen_bool(plan.rate) {
            decisions.push(None);
        } else {
            let kind = FaultKind::ALL[rng.gen_range(0..FaultKind::ALL.len())];
            decisions.push(Some(kind));
        }
    }
    // Pass 2: apply. Text-level faults mutate the line; structural
    // faults (drop/dup/swap) shape the output list.
    let mut out: Vec<String> = Vec::with_capacity(lines.len() + 2);
    let mut i = 0usize;
    while i < lines.len() {
        let line = lines[i];
        match decisions[i] {
            None => out.push(line.to_owned()),
            Some(kind) => {
                log.faults.push(InjectedFault {
                    kind,
                    doc: doc_index,
                    line: i + 1,
                });
                match kind {
                    FaultKind::CharNoise => out.push(char_noise(rng, line)),
                    FaultKind::Truncate => out.push(truncate(rng, line)),
                    FaultKind::RowDrop => {}
                    FaultKind::RowDup => {
                        out.push(line.to_owned());
                        out.push(line.to_owned());
                    }
                    FaultKind::RowSwap => {
                        if i + 1 < lines.len() {
                            out.push(lines[i + 1].to_owned());
                            out.push(line.to_owned());
                            // The successor was consumed by the swap; its
                            // own decision (if any) is forfeited so each
                            // line is perturbed at most once.
                            i += 1;
                        } else {
                            out.push(line.to_owned());
                        }
                    }
                    FaultKind::FieldDrift => out.push(field_drift(rng, line)),
                    FaultKind::BlankCause => {
                        if let Some(kept) = blank_cause(line) {
                            out.push(kept);
                        }
                    }
                }
            }
        }
        i += 1;
    }
    let mut joined = out.join("\n");
    if text.ends_with('\n') && !joined.is_empty() {
        joined.push('\n');
    }
    joined
}

/// Replaces 1–3 characters with OCR-confusable junk.
fn char_noise(rng: &mut StdRng, line: &str) -> String {
    let mut chars: Vec<char> = line.chars().collect();
    if chars.is_empty() {
        return line.to_owned();
    }
    let hits = rng.gen_range(1..=3usize).min(chars.len());
    for _ in 0..hits {
        let at = rng.gen_range(0..chars.len());
        chars[at] = NOISE_CHARS[rng.gen_range(0..NOISE_CHARS.len())];
    }
    chars.into_iter().collect()
}

/// Cuts the line somewhere in its second half (a torn scan).
fn truncate(rng: &mut StdRng, line: &str) -> String {
    let chars: Vec<char> = line.chars().collect();
    if chars.len() < 4 {
        return line.to_owned();
    }
    let keep = rng.gen_range(chars.len() / 2..chars.len());
    chars[..keep].iter().collect()
}

/// Mangles the first numeric run out of its valid range (negative
/// mileage, month 13 dates, absurd speeds). Lines without digits get a
/// corrupted first word instead (schema-header drift).
fn field_drift(rng: &mut StdRng, line: &str) -> String {
    let bytes = line.as_bytes();
    let start = bytes.iter().position(|b| b.is_ascii_digit());
    match start {
        Some(s) => {
            let end = bytes[s..]
                .iter()
                .position(|b| !(b.is_ascii_digit() || *b == b'.'))
                .map_or(bytes.len(), |e| s + e);
            let replacement = match rng.gen_range(0..3u8) {
                0 => "-999999",
                1 => "999913",
                _ => "0000000",
            };
            format!("{}{}{}", &line[..s], replacement, &line[end..])
        }
        None => char_noise(rng, line),
    }
}

/// Strips the free-text tail after the last token containing a digit —
/// the cause description vanishes, structured fields remain. Lines with
/// no digit-bearing token are removed entirely.
fn blank_cause(line: &str) -> Option<String> {
    let tokens: Vec<&str> = line.split_whitespace().collect();
    let last_structured = tokens
        .iter()
        .rposition(|t| t.chars().any(|c| c.is_ascii_digit()))?;
    Some(tokens[..=last_structured].join(" "))
}

#[cfg(test)]
mod tests {
    use super::*;
    use disengage_reports::formats::DocumentKind;
    use disengage_reports::{Manufacturer, ReportYear};

    fn doc(text: &str) -> RawDocument {
        RawDocument::new(
            Manufacturer::Nissan,
            ReportYear::R2016,
            DocumentKind::Disengagements,
            text,
        )
    }

    #[test]
    fn rate_zero_is_identity() {
        let docs = vec![doc("line one\nline two\n")];
        let (out, log) = inject_documents(&FaultPlan::new(0.0, 9), &docs);
        assert_eq!(out, docs);
        assert_eq!(log.total(), 0);
    }

    #[test]
    fn injection_is_deterministic_per_seed() {
        let docs = vec![doc("a 1 x\nb 2 y\nc 3 z\n"); 20];
        let plan = FaultPlan::new(0.5, 1234);
        let (out1, log1) = inject_documents(&plan, &docs);
        let (out2, log2) = inject_documents(&plan, &docs);
        assert_eq!(out1, out2);
        assert_eq!(log1, log2);
        let (out3, _) = inject_documents(&FaultPlan::new(0.5, 99), &docs);
        assert_ne!(out1, out3, "different seeds, same perturbation");
    }

    #[test]
    fn rate_one_faults_every_nonempty_line() {
        let docs = vec![doc("one 1\ntwo 2\nthree 3\n")];
        let (_, log) = inject_documents(&FaultPlan::new(1.0, 7), &docs);
        // RowSwap may consume its successor's decision, so the count is
        // between ceil(n/2) and n.
        assert!(log.total() >= 2 && log.total() <= 3, "{log:?}");
    }

    #[test]
    fn empty_lines_never_faulted() {
        let docs = vec![doc("\n\n\n")];
        let (out, log) = inject_documents(&FaultPlan::new(1.0, 7), &docs);
        assert_eq!(log.total(), 0);
        assert_eq!(out[0].text, docs[0].text);
    }

    #[test]
    fn row_drop_removes_and_dup_duplicates() {
        let mut rng = StdRng::seed_from_u64(0);
        // Exercise the primitives directly for exactness.
        assert_eq!(blank_cause("car-0 2016-01-04 software froze"), Some("car-0 2016-01-04".to_owned()));
        assert_eq!(blank_cause("no digits at all"), None);
        let drifted = field_drift(&mut rng, "miles 120.5 end");
        assert!(!drifted.contains("120.5"), "{drifted}");
        let trunc = truncate(&mut rng, "abcdefghij");
        assert!(trunc.len() < 10 && trunc.len() >= 5);
        let noised = char_noise(&mut rng, "watchdog");
        assert_eq!(noised.chars().count(), 8);
    }

    #[test]
    fn log_groups_by_document() {
        let docs = vec![doc("a 1\nb 2\n"), doc("c 3\nd 4\n")];
        let (_, log) = inject_documents(&FaultPlan::new(1.0, 5), &docs);
        let by_doc = log.by_document();
        assert!(by_doc.len() <= 2);
        for (d, faults) in by_doc {
            assert!(d < 2);
            assert!(!faults.is_empty());
            for f in faults {
                assert!(f.line >= 1 && f.line <= 2);
            }
        }
    }

    #[test]
    fn slice_injection_matches_full_batch() {
        let docs: Vec<RawDocument> = (0..6)
            .map(|i| doc(&format!("alpha {i} x\nbeta {i} y\ngamma {i} z\n")))
            .collect();
        let plan = FaultPlan::new(0.6, 0x5EED);
        let (full, full_log) = inject_documents(&plan, &docs);
        // Inject the same batch as two shards at their global bases.
        let (lo, lo_log) = inject_documents_at(&plan, &docs[..2], 0);
        let (hi, hi_log) = inject_documents_at(&plan, &docs[2..], 2);
        let stitched: Vec<RawDocument> = lo.into_iter().chain(hi).collect();
        assert_eq!(stitched, full);
        let mut stitched_log = lo_log;
        stitched_log.faults.extend(hi_log.faults);
        assert_eq!(stitched_log, full_log);
        // Every logged index is global, not slice-local.
        assert!(stitched_log.faults.iter().all(|f| f.doc < 6));
    }

    #[test]
    fn trailing_newline_preserved() {
        let docs = vec![doc("a 1\nb 2\n")];
        let (out, _) = inject_documents(&FaultPlan::new(1.0, 3), &docs);
        if !out[0].text.is_empty() {
            assert!(out[0].text.ends_with('\n'));
        }
    }
}
