//! Stage III injector: failure-dictionary poisoning.
//!
//! The paper's classifier leans entirely on a hand-built phrase bank; a
//! realistic degradation is losing part of it (a bad merge, a truncated
//! data file, an over-aggressive stop-word pass). The poisoner drops
//! each phrase independently with the plan's fault probability — the
//! classifier must keep answering (falling back to `Unknown-T`), never
//! panic, even on an empty dictionary.

use crate::plan::FaultPlan;
use disengage_nlp::{FailureDictionary, FaultTag};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Rebuilds the dictionary with each phrase independently dropped with
/// probability `plan.rate`, returning the poisoned dictionary and how
/// many phrases were removed. Rate 0 reproduces the input exactly.
pub fn poison_dictionary(plan: &FaultPlan, dict: &FailureDictionary) -> (FailureDictionary, u64) {
    if !plan.active() {
        return (dict.clone(), 0);
    }
    let mut rng = StdRng::seed_from_u64(plan.seed ^ 0xD1C7_1034);
    let mut out = FailureDictionary::new();
    let mut dropped = 0u64;
    for tag in FaultTag::ALL {
        for phrase in dict.phrases(tag) {
            if rng.gen_bool(plan.rate) {
                dropped += 1;
            } else {
                out.add_phrase(tag, phrase);
            }
        }
    }
    (out, dropped)
}

#[cfg(test)]
mod tests {
    use super::*;
    use disengage_nlp::Classifier;

    #[test]
    fn rate_zero_keeps_everything() {
        let dict = FailureDictionary::default_bank();
        let (poisoned, dropped) = poison_dictionary(&FaultPlan::new(0.0, 3), &dict);
        assert_eq!(dropped, 0);
        assert_eq!(poisoned.len(), dict.len());
    }

    #[test]
    fn rate_one_empties_the_bank() {
        let dict = FailureDictionary::default_bank();
        let (poisoned, dropped) = poison_dictionary(&FaultPlan::new(1.0, 3), &dict);
        assert_eq!(dropped as usize, dict.len());
        assert!(poisoned.is_empty());
        // The classifier over an empty dictionary must still answer.
        let c = Classifier::new(poisoned);
        let a = c.classify("software module froze");
        assert_eq!(a.tag, FaultTag::UnknownT);
        let b = c.classify("");
        assert_eq!(b.tag, FaultTag::UnknownT);
    }

    #[test]
    fn partial_poisoning_deterministic_and_counted() {
        let dict = FailureDictionary::default_bank();
        let plan = FaultPlan::new(0.3, 11);
        let (p1, d1) = poison_dictionary(&plan, &dict);
        let (p2, d2) = poison_dictionary(&plan, &dict);
        assert_eq!(d1, d2);
        assert_eq!(p1.len(), p2.len());
        assert_eq!(p1.len() + d1 as usize, dict.len());
        assert!(d1 > 0, "rate 0.3 over {} phrases dropped none", dict.len());
    }
}
