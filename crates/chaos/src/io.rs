//! Seeded I/O fault injection for the artifact store.
//!
//! The cache crate defines the fault *surface*
//! ([`disengage_cache::IoFaults`]): every filesystem operation the
//! store performs first asks an injector whether to simulate a
//! failure. This module provides the seeded implementation, driven by
//! the same SplitMix64 derivation ([`rand::derive_seed`]) as every
//! other chaos injector, so a campaign's fault schedule is a pure
//! function of `(seed, consultation index)` and reproducible across
//! runs and machines.
//!
//! Beyond live faults, crashed peers leave *litter*: torn `*.tmp`
//! write intermediates, orphaned `*.lock` files, truncated `.art`
//! frames. [`plant_litter`] fabricates exactly that debris (owned by a
//! provably dead pid) so recovery paths — reclamation sweeps, frame
//! checksums, stale-lock breaking — are exercised without an actual
//! crash.

use std::fs;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

use disengage_cache::lock;
use disengage_cache::{IoFault, IoFaults, IoOp};

/// A pid far above Linux's `pid_max` (2^22): never a live process, so
/// litter attributed to it is provably stale on any /proc platform.
const DEAD_PID: u32 = 3_999_999_999;

/// A seeded, `Copy` description of how hard to shake the store's I/O.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IoFaultPlan {
    /// Seed for the fault schedule (independent of corpus/OCR/chaos
    /// document seeds).
    pub seed: u64,
    /// Per-operation fault probability in `[0, 1]`. Rate `0` injects
    /// nothing — the store behaves exactly as without an injector.
    pub rate: f64,
}

impl IoFaultPlan {
    /// A plan at `rate` (clamped to `[0, 1]`) with `seed`.
    pub fn new(rate: f64, seed: u64) -> IoFaultPlan {
        IoFaultPlan {
            seed,
            rate: rate.clamp(0.0, 1.0),
        }
    }

    /// Whether this plan injects anything at all.
    pub fn active(&self) -> bool {
        self.rate > 0.0
    }

    /// Parses the CLI form `<rate>[,<seed>]` (e.g. `0.1` or `0.1,7`).
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for a malformed rate/seed or a
    /// rate outside `[0, 1]`.
    pub fn parse(s: &str) -> Result<IoFaultPlan, String> {
        let (rate_s, seed_s) = match s.split_once(',') {
            Some((r, sd)) => (r, Some(sd)),
            None => (s, None),
        };
        let rate: f64 = rate_s
            .trim()
            .parse()
            .map_err(|_| format!("invalid io-fault rate `{rate_s}`"))?;
        if !(0.0..=1.0).contains(&rate) {
            return Err(format!("io-fault rate {rate} outside [0, 1]"));
        }
        let seed: u64 = match seed_s {
            Some(sd) => sd
                .trim()
                .parse()
                .map_err(|_| format!("invalid io-fault seed `{sd}`"))?,
            None => 0x10FA,
        };
        Ok(IoFaultPlan::new(rate, seed))
    }

    /// An armed injector for this plan, or `None` at rate 0 (the store
    /// then skips injection entirely).
    pub fn injector(&self) -> Option<SeededIoFaults> {
        self.active().then(|| SeededIoFaults::new(*self))
    }
}

/// The seeded [`IoFaults`] implementation: consultation `n` draws
/// `derive_seed(plan.seed, n)` and faults when the derived uniform
/// fraction falls under the plan rate. The consultation counter is a
/// process-global atomic shared by every store clone, so the schedule
/// is deterministic for a fixed sequence of store operations (which
/// the single-threaded campaign runner guarantees); under free-running
/// threads it stays seeded-pseudorandom, which is all a stress test
/// needs.
#[derive(Debug)]
pub struct SeededIoFaults {
    plan: IoFaultPlan,
    consultations: AtomicU64,
}

impl SeededIoFaults {
    /// An injector drawing its schedule from `plan`.
    pub fn new(plan: IoFaultPlan) -> SeededIoFaults {
        SeededIoFaults {
            plan,
            consultations: AtomicU64::new(0),
        }
    }

    /// How many times the store has consulted this injector.
    pub fn consultations(&self) -> u64 {
        self.consultations.load(Ordering::Relaxed)
    }
}

impl IoFaults for SeededIoFaults {
    fn inject(&self, op: IoOp) -> Option<IoFault> {
        let n = self.consultations.fetch_add(1, Ordering::Relaxed);
        let r = rand::derive_seed(self.plan.seed, n);
        // Top 53 bits → uniform in [0, 1), the workspace convention.
        let fraction = (r >> 11) as f64 / (1u64 << 53) as f64;
        if fraction >= self.plan.rate {
            return None;
        }
        // The low bit (independent of the fraction bits) picks the
        // flavor among the faults meaningful for this operation.
        let flip = r & 1 == 1;
        Some(match op {
            IoOp::ReadArtifact if flip => IoFault::BitFlip,
            IoOp::WriteTmp if flip => IoFault::ShortWrite,
            _ => IoFault::Error,
        })
    }
}

/// Fabricates crashed-peer litter inside an artifact-store root:
/// per existing stage directory, one torn `*.tmp` intermediate and one
/// orphaned `*.lock` (both owned by a dead pid with an expired lease)
/// plus one truncated `.art` frame. Returns how many files were
/// planted. The store must absorb all of it — reclaiming the tmp and
/// lock, flagging the torn frame as `Corrupt` and recomputing.
pub fn plant_litter(root: &Path, seed: u64) -> usize {
    let Ok(stages) = fs::read_dir(root) else {
        return 0;
    };
    let mut planted = 0;
    for (i, stage) in stages.flatten().enumerate() {
        let dir = stage.path();
        if !dir.is_dir() {
            continue;
        }
        let tag = rand::derive_seed(seed, i as u64);
        let tmp = dir.join(format!(".{tag:016x}.{DEAD_PID}.0.tmp"));
        if fs::write(&tmp, b"torn mid-write").is_ok() {
            planted += 1;
        }
        let lock_file = dir.join(format!("{tag:016x}.lock"));
        // Lease timestamp 1: expired since the epoch, dead owner —
        // stale by either test.
        if fs::write(&lock_file, lock::compose(DEAD_PID, 1)).is_ok() {
            planted += 1;
        }
        let torn = dir.join(format!("{tag:016x}.art"));
        if fs::write(&torn, b"DART").is_ok() {
            planted += 1;
        }
    }
    planted
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_rate_only() {
        let p = IoFaultPlan::parse("0.1").unwrap();
        assert!((p.rate - 0.1).abs() < 1e-12);
        assert_eq!(p.seed, 0x10FA);
    }

    #[test]
    fn parse_rate_and_seed() {
        let p = IoFaultPlan::parse("0.25,42").unwrap();
        assert!((p.rate - 0.25).abs() < 1e-12);
        assert_eq!(p.seed, 42);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(IoFaultPlan::parse("lots").is_err());
        assert!(IoFaultPlan::parse("1.5").is_err());
        assert!(IoFaultPlan::parse("-0.1").is_err());
        assert!(IoFaultPlan::parse("0.1,x").is_err());
    }

    #[test]
    fn rate_zero_injects_nothing() {
        assert!(IoFaultPlan::new(0.0, 7).injector().is_none());
        let armed = SeededIoFaults::new(IoFaultPlan::new(0.0, 7));
        for _ in 0..100 {
            assert_eq!(armed.inject(IoOp::WriteTmp), None);
        }
    }

    #[test]
    fn rate_one_always_faults_with_op_appropriate_kinds() {
        let faults = SeededIoFaults::new(IoFaultPlan::new(1.0, 7));
        for _ in 0..50 {
            match faults.inject(IoOp::WriteTmp).expect("rate 1 must fault") {
                IoFault::Error | IoFault::ShortWrite => {}
                IoFault::BitFlip => panic!("bit-flip is a read fault"),
            }
            match faults.inject(IoOp::ReadArtifact).expect("rate 1") {
                IoFault::Error | IoFault::BitFlip => {}
                IoFault::ShortWrite => panic!("short write is a write fault"),
            }
            assert_eq!(
                faults.inject(IoOp::RenameCommit),
                Some(IoFault::Error),
                "rename can only fail outright"
            );
        }
    }

    #[test]
    fn schedule_is_seed_deterministic() {
        let ops = [
            IoOp::WriteTmp,
            IoOp::ReadArtifact,
            IoOp::RenameCommit,
            IoOp::RemoveEvict,
        ];
        let a = SeededIoFaults::new(IoFaultPlan::new(0.3, 99));
        let b = SeededIoFaults::new(IoFaultPlan::new(0.3, 99));
        let c = SeededIoFaults::new(IoFaultPlan::new(0.3, 100));
        let run = |inj: &SeededIoFaults| -> Vec<Option<IoFault>> {
            (0..200).map(|i| inj.inject(ops[i % ops.len()])).collect()
        };
        let (sa, sb, sc) = (run(&a), run(&b), run(&c));
        assert_eq!(sa, sb, "same seed, same schedule");
        assert_ne!(sa, sc, "different seed, different schedule");
        let fired = sa.iter().flatten().count();
        assert!((20..=100).contains(&fired), "rate 0.3 → ~60/200, got {fired}");
    }

    #[test]
    fn litter_lands_in_every_stage_dir() {
        let root = std::env::temp_dir().join(format!(
            "disengage-chaos-litter-{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&root);
        fs::create_dir_all(root.join("corpus")).unwrap();
        fs::create_dir_all(root.join("digitize")).unwrap();
        assert_eq!(plant_litter(&root, 5), 6);
        let names: Vec<String> = fs::read_dir(root.join("corpus"))
            .unwrap()
            .flatten()
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .collect();
        assert!(names.iter().any(|n| n.ends_with(".tmp")), "{names:?}");
        assert!(names.iter().any(|n| n.ends_with(".lock")), "{names:?}");
        assert!(names.iter().any(|n| n.ends_with(".art")), "{names:?}");
        let _ = fs::remove_dir_all(&root);
    }
}
