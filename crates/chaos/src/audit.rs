//! Post-run fault accounting: every injected fault gets exactly one
//! outcome, so the ledger reconciles arithmetically.
//!
//! The audit re-parses each faulted document and its pristine twin with
//! the same Stage II normalizer the pipeline uses, then classifies the
//! document's faults:
//!
//! * new parse/validation failures (relative to the clean parse) claim
//!   faults as **quarantined** — the fault was detected and routed to
//!   the manual-review queue;
//! * record-level differences not explained by quarantined lines claim
//!   faults as **absorbed** — the run completed but the output silently
//!   changed (the dangerous bucket);
//! * the remainder are **corrected** — the pipeline neutralized the
//!   fault (e.g. a reorder that parses to the same record set, or noise
//!   the dictionary correction repaired).
//!
//! Within one document, outcomes attach to individual faults in line
//! order (quarantined first, then absorbed), so per-kind attribution is
//! approximate when a document carries several faults of different
//! kinds — but the totals identity
//! `injected == corrected + quarantined + absorbed` is exact by
//! construction, which is what `telemetry::reconcile` enforces.

use crate::inject::{FaultLog, InjectedFault};
use crate::plan::{FaultKind, FaultPlan};
use disengage_reports::formats::RawDocument;
use disengage_reports::normalize::normalize_document;
use std::collections::BTreeMap;

/// Outcome counts for one fault kind (or the grand total).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KindOutcomes {
    /// Faults injected.
    pub injected: u64,
    /// Neutralized: output indistinguishable from the clean parse.
    pub corrected: u64,
    /// Detected: surfaced as a failure in the manual-review queue.
    pub quarantined: u64,
    /// Silent: the run completed with different output.
    pub absorbed: u64,
}

/// The audited fate of one injected fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultFate {
    /// Neutralized: output indistinguishable from the clean parse.
    Corrected,
    /// Detected: surfaced as a failure in the manual-review queue.
    Quarantined,
    /// Silent: the run completed with different output.
    Absorbed,
}

impl FaultFate {
    /// Stable snake_case name (the provenance/export rendering).
    pub fn name(self) -> &'static str {
        match self {
            FaultFate::Corrected => "corrected",
            FaultFate::Quarantined => "quarantined",
            FaultFate::Absorbed => "absorbed",
        }
    }
}

/// One injected fault together with its audited outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AuditedFault {
    /// The fault as injected (kind, document, 1-based line).
    pub fault: InjectedFault,
    /// What became of it.
    pub outcome: FaultFate,
}

impl KindOutcomes {
    /// Whether the outcome partition accounts for every injection.
    pub fn reconciles(&self) -> bool {
        self.injected == self.corrected + self.quarantined + self.absorbed
    }

    /// Adds another outcome partition into this one (shard folding).
    pub fn add(&mut self, other: KindOutcomes) {
        self.injected += other.injected;
        self.corrected += other.corrected;
        self.quarantined += other.quarantined;
        self.absorbed += other.absorbed;
    }
}

/// The audited result of one chaos run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ChaosAudit {
    /// Fault rate the plan ran at.
    pub rate: f64,
    /// Plan seed.
    pub seed: u64,
    /// Outcome totals across all kinds.
    pub totals: KindOutcomes,
    /// Outcomes per fault kind (stable snake_case keys).
    pub per_kind: BTreeMap<&'static str, KindOutcomes>,
    /// Every fault with its individual outcome, in injection order —
    /// the per-fault ledger behind the counts above (provenance
    /// consumes it; `to_json` stays aggregate-only).
    pub faults: Vec<AuditedFault>,
}

impl ChaosAudit {
    /// Folds another shard's audit into this one: totals and per-kind
    /// counts add, the fault ledger extends in call order. Since the
    /// counts are unsigned integer sums, the fold is exact and
    /// order-invariant (up to ledger ordering, which callers fix by
    /// absorbing shards in enumeration order). Rate and seed are taken
    /// from `other` when this audit is still default-empty, and must
    /// otherwise agree — all shards run under one corpus-wide plan.
    pub fn absorb(&mut self, other: &ChaosAudit) {
        if self.totals == KindOutcomes::default() && self.faults.is_empty() {
            self.rate = other.rate;
            self.seed = other.seed;
        }
        debug_assert!(
            (self.rate == other.rate && self.seed == other.seed)
                || other.totals == KindOutcomes::default(),
            "absorbing audits from different plans"
        );
        self.totals.add(other.totals);
        for (kind, o) in &other.per_kind {
            self.per_kind.entry(kind).or_default().add(*o);
        }
        self.faults.extend(other.faults.iter().copied());
    }

    /// Renders the audit as a JSON object (hand-rolled, like the `obs`
    /// exporters — the workspace carries no serialization dependency).
    pub fn to_json(&self) -> String {
        fn outcomes(o: &KindOutcomes) -> String {
            format!(
                "{{\"injected\":{},\"corrected\":{},\"quarantined\":{},\"absorbed\":{},\"reconciles\":{}}}",
                o.injected, o.corrected, o.quarantined, o.absorbed, o.reconciles()
            )
        }
        let kinds: Vec<String> = self
            .per_kind
            .iter()
            .map(|(k, o)| format!("\"{k}\":{}", outcomes(o)))
            .collect();
        format!(
            "{{\"rate\":{},\"seed\":{},\"totals\":{},\"per_kind\":{{{}}}}}",
            self.rate,
            self.seed,
            outcomes(&self.totals),
            kinds.join(",")
        )
    }
}

/// A multiset of recovered records, keyed by kind-prefixed debug
/// rendering (records derive `Debug` and `PartialEq`; the rendering is
/// a faithful identity for multiset comparison).
fn record_multiset(doc: &RawDocument) -> (BTreeMap<String, i64>, usize) {
    let n = normalize_document(doc);
    let mut set: BTreeMap<String, i64> = BTreeMap::new();
    for r in &n.disengagements {
        *set.entry(format!("D{r:?}")).or_insert(0) += 1;
    }
    for r in &n.accidents {
        *set.entry(format!("A{r:?}")).or_insert(0) += 1;
    }
    for r in &n.mileage {
        *set.entry(format!("M{r:?}")).or_insert(0) += 1;
    }
    (set, n.failures.len())
}

/// Classifies every fault in `log` by comparing each faulted document
/// against its clean twin. `clean` and `faulted` must be the same batch
/// the log was produced from (same order).
pub fn audit(plan: &FaultPlan, log: &FaultLog, clean: &[RawDocument], faulted: &[RawDocument]) -> ChaosAudit {
    audit_at(plan, log, clean, faulted, 0)
}

/// Like [`audit`], but for a log whose document indices are global
/// while `clean`/`faulted` hold only the slice starting at corpus index
/// `base` — the sharded-execution pairing of
/// [`crate::inject::inject_documents_at`]. Per-shard audits fold into
/// the corpus-wide ledger via [`ChaosAudit::absorb`].
pub fn audit_at(
    plan: &FaultPlan,
    log: &FaultLog,
    clean: &[RawDocument],
    faulted: &[RawDocument],
    base: usize,
) -> ChaosAudit {
    let mut out = ChaosAudit {
        rate: plan.rate,
        seed: plan.seed,
        ..ChaosAudit::default()
    };
    for kind in FaultKind::ALL {
        out.per_kind.insert(kind.name(), KindOutcomes::default());
    }
    for (d, faults) in log.by_document() {
        debug_assert!(d >= base && d - base < clean.len() && d - base < faulted.len());
        let (clean_set, clean_failures) = record_multiset(&clean[d - base]);
        let (chaos_set, chaos_failures) = record_multiset(&faulted[d - base]);

        let failure_delta = chaos_failures.saturating_sub(clean_failures) as u64;
        let mut missing = 0u64;
        let mut extra = 0u64;
        for (key, &c) in &clean_set {
            let f = chaos_set.get(key).copied().unwrap_or(0);
            missing += (c - f).max(0) as u64;
        }
        for (key, &f) in &chaos_set {
            let c = clean_set.get(key).copied().unwrap_or(0);
            extra += (f - c).max(0) as u64;
        }

        let k = faults.len() as u64;
        let quarantined = failure_delta.min(k);
        // Records lost to quarantined lines are explained; everything
        // else that changed is silent damage.
        let unexplained = extra + missing.saturating_sub(quarantined);
        let absorbed = (k - quarantined).min(unexplained);
        let corrected = k - quarantined - absorbed;

        // Attach outcomes to faults in line order: quarantined first,
        // then absorbed, then corrected.
        let (mut q, mut a) = (quarantined, absorbed);
        for f in faults {
            let slot = out
                .per_kind
                .get_mut(f.kind.name())
                .expect("all kinds pre-seeded");
            slot.injected += 1;
            let fate = if q > 0 {
                q -= 1;
                slot.quarantined += 1;
                FaultFate::Quarantined
            } else if a > 0 {
                a -= 1;
                slot.absorbed += 1;
                FaultFate::Absorbed
            } else {
                slot.corrected += 1;
                FaultFate::Corrected
            };
            out.faults.push(AuditedFault {
                fault: f,
                outcome: fate,
            });
        }
        out.totals.add(KindOutcomes {
            injected: k,
            corrected,
            quarantined,
            absorbed,
        });
    }
    debug_assert!(out.totals.reconciles());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inject::inject_documents;
    use disengage_reports::formats::disengagement::{NissanFormat, ReportFormat};
    use disengage_reports::formats::{DocumentKind, RawDocument};
    use disengage_reports::record::{CarId, DisengagementRecord};
    use disengage_reports::types::{Modality, RoadType, Weather};
    use disengage_reports::{Date, Manufacturer, ReportYear};

    fn sample_doc(lines: usize) -> RawDocument {
        let f = NissanFormat;
        let mut text = String::new();
        for i in 0..lines {
            let record = DisengagementRecord {
                manufacturer: Manufacturer::Nissan,
                car: CarId::Known(i as u32),
                date: Date::new(2016, 1, 4).unwrap(),
                modality: Modality::Manual,
                road_type: Some(RoadType::Street),
                weather: Some(Weather::Clear),
                reaction_time_s: Some(0.8),
                description: "software module froze, driver safely disengaged".to_owned(),
            };
            text.push_str(&f.render(&record));
            text.push('\n');
        }
        RawDocument::new(
            Manufacturer::Nissan,
            ReportYear::R2016,
            DocumentKind::Disengagements,
            text,
        )
    }

    #[test]
    fn no_faults_audits_empty() {
        let docs = vec![sample_doc(3)];
        let plan = FaultPlan::new(0.0, 1);
        let (faulted, log) = inject_documents(&plan, &docs);
        let a = audit(&plan, &log, &docs, &faulted);
        assert_eq!(a.totals, KindOutcomes::default());
        assert!(a.totals.reconciles());
    }

    #[test]
    fn every_fault_gets_exactly_one_outcome() {
        for seed in 0..24u64 {
            let docs = vec![sample_doc(6), sample_doc(4), sample_doc(1)];
            let plan = FaultPlan::new(0.4, seed);
            let (faulted, log) = inject_documents(&plan, &docs);
            let a = audit(&plan, &log, &docs, &faulted);
            assert_eq!(a.totals.injected, log.total(), "seed {seed}");
            assert!(a.totals.reconciles(), "seed {seed}: {a:?}");
            let kind_sum: u64 = a.per_kind.values().map(|o| o.injected).sum();
            assert_eq!(kind_sum, a.totals.injected, "seed {seed}");
            for (k, o) in &a.per_kind {
                assert!(o.reconciles(), "seed {seed} kind {k}: {o:?}");
            }
            // The per-fault ledger partitions exactly like the totals.
            assert_eq!(a.faults.len() as u64, a.totals.injected, "seed {seed}");
            let count = |fate: FaultFate| {
                a.faults.iter().filter(|f| f.outcome == fate).count() as u64
            };
            assert_eq!(count(FaultFate::Corrected), a.totals.corrected);
            assert_eq!(count(FaultFate::Quarantined), a.totals.quarantined);
            assert_eq!(count(FaultFate::Absorbed), a.totals.absorbed);
        }
    }

    #[test]
    fn dropped_row_is_absorbed_not_corrected() {
        // Construct a pure RowDrop by hand: clean doc has 3 lines,
        // faulted has 2, no parse failures either side.
        let clean = sample_doc(3);
        let faulted = RawDocument::new(
            clean.manufacturer,
            clean.report_year,
            clean.kind,
            clean.text.lines().take(2).collect::<Vec<_>>().join("\n") + "\n",
        );
        let log = FaultLog {
            faults: vec![crate::inject::InjectedFault {
                kind: FaultKind::RowDrop,
                doc: 0,
                line: 3,
            }],
        };
        let plan = FaultPlan::new(0.1, 0);
        let a = audit(&plan, &log, &[clean], &[faulted]);
        assert_eq!(a.totals.absorbed, 1);
        assert_eq!(a.totals.quarantined, 0);
        assert_eq!(a.totals.corrected, 0);
    }

    #[test]
    fn garbled_row_is_quarantined() {
        let clean = sample_doc(2);
        let mut lines: Vec<String> = clean.text.lines().map(str::to_owned).collect();
        lines[1] = "@@@@ total garbage @@@@".to_owned();
        let faulted = RawDocument::new(
            clean.manufacturer,
            clean.report_year,
            clean.kind,
            lines.join("\n") + "\n",
        );
        let log = FaultLog {
            faults: vec![crate::inject::InjectedFault {
                kind: FaultKind::CharNoise,
                doc: 0,
                line: 2,
            }],
        };
        let plan = FaultPlan::new(0.1, 0);
        let a = audit(&plan, &log, &[clean], &[faulted]);
        assert_eq!(a.totals.quarantined, 1);
        assert_eq!(a.totals.absorbed, 0);
    }

    #[test]
    fn benign_reorder_is_corrected() {
        let clean = sample_doc(3);
        let mut lines: Vec<String> = clean.text.lines().map(str::to_owned).collect();
        lines.swap(0, 1);
        let faulted = RawDocument::new(
            clean.manufacturer,
            clean.report_year,
            clean.kind,
            lines.join("\n") + "\n",
        );
        let log = FaultLog {
            faults: vec![crate::inject::InjectedFault {
                kind: FaultKind::RowSwap,
                doc: 0,
                line: 1,
            }],
        };
        let plan = FaultPlan::new(0.1, 0);
        let a = audit(&plan, &log, &[clean], &[faulted]);
        assert_eq!(a.totals.corrected, 1, "{a:?}");
    }

    #[test]
    fn sharded_audit_folds_to_the_monolithic_ledger() {
        use crate::inject::inject_documents_at;
        let docs = vec![sample_doc(6), sample_doc(4), sample_doc(3), sample_doc(5)];
        let plan = FaultPlan::new(0.5, 0x5EED);
        let (faulted, log) = inject_documents(&plan, &docs);
        let whole = audit(&plan, &log, &docs, &faulted);
        assert!(whole.totals.injected > 0, "plan too quiet for the test");

        // Re-run as two shards at their global bases and fold.
        let mut folded = ChaosAudit::default();
        for (lo, hi) in [(0usize, 2usize), (2, 4)] {
            let (shard_faulted, shard_log) = inject_documents_at(&plan, &docs[lo..hi], lo);
            let shard = audit_at(&plan, &shard_log, &docs[lo..hi], &shard_faulted, lo);
            folded.absorb(&shard);
        }
        assert_eq!(folded, whole);
        assert!(folded.totals.reconciles());
    }

    #[test]
    fn absorb_is_order_invariant_on_counts() {
        let docs = vec![sample_doc(5), sample_doc(2), sample_doc(4)];
        let plan = FaultPlan::new(0.7, 42);
        let parts: Vec<ChaosAudit> = (0..3)
            .map(|i| {
                let slice = &docs[i..=i];
                let (faulted, log) = crate::inject::inject_documents_at(&plan, slice, i);
                audit_at(&plan, &log, slice, &faulted, i)
            })
            .collect();
        let mut fwd = ChaosAudit::default();
        let mut rev = ChaosAudit::default();
        for p in &parts {
            fwd.absorb(p);
        }
        for p in parts.iter().rev() {
            rev.absorb(p);
        }
        assert_eq!(fwd.totals, rev.totals);
        assert_eq!(fwd.per_kind, rev.per_kind);
        // The ledger itself is the same multiset, ordered differently.
        assert_eq!(fwd.faults.len(), rev.faults.len());
    }

    #[test]
    fn json_shape() {
        let plan = FaultPlan::new(0.05, 7);
        let docs = vec![sample_doc(4)];
        let (faulted, log) = inject_documents(&plan, &docs);
        let a = audit(&plan, &log, &docs, &faulted);
        let json = a.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"totals\""));
        assert!(json.contains("\"row_drop\""));
        assert!(json.contains("\"reconciles\":true"));
    }
}
