//! Content-addressed artifact store for incremental pipeline re-runs.
//!
//! Three pieces, all dependency-free:
//!
//! * [`fp`] — a streaming FNV-1a 64-bit hasher with a stable,
//!   documented output. Stage fingerprints must survive process
//!   restarts and toolchain upgrades, which rules out
//!   `std::collections::hash_map::DefaultHasher` (its algorithm is
//!   explicitly unspecified and randomly keyed).
//! * [`codec`] — a fixed-layout little-endian byte codec
//!   ([`codec::Enc`]/[`codec::Dec`]) plus checksummed artifact framing.
//!   Decoding is total: truncated or bit-flipped input yields `None`,
//!   never a panic.
//! * [`store`] — [`store::ArtifactStore`], the on-disk layout
//!   `<root>/<stage>/<fingerprint>.art` with crash-safe atomic commits
//!   (unique tmp + fsync + rename), corruption detection, stale-litter
//!   reclamation, and per-stage LRU eviction.
//! * [`lock`] — advisory per-fingerprint lease locks giving
//!   single-flight across sessions sharing one cache directory, with
//!   stale-lock reclamation so crashed peers never wedge the cache.
//! * [`faults`] — the [`faults::IoFaults`] injection surface every
//!   store filesystem operation consults; the seeded implementation
//!   lives in `disengage-chaos::io` so this crate stays dependency-free.
//!
//! The crate knows nothing about the pipeline's domain types; callers
//! (see `disengage-core`'s `artifact` module) provide the payload
//! encoding on top of [`codec`].

pub mod codec;
pub mod faults;
pub mod fp;
pub mod lock;
pub mod store;

pub use codec::{Dec, Enc};
pub use faults::{IoFault, IoFaults, IoOp};
pub use fp::{Fingerprint, Fp};
pub use lock::LockGuard;
pub use store::{ArtifactStore, Flight, Lookup, StoreAudit, DEFAULT_PER_STAGE_CAP};
