//! Content-addressed artifact store for incremental pipeline re-runs.
//!
//! Three pieces, all dependency-free:
//!
//! * [`fp`] — a streaming FNV-1a 64-bit hasher with a stable,
//!   documented output. Stage fingerprints must survive process
//!   restarts and toolchain upgrades, which rules out
//!   `std::collections::hash_map::DefaultHasher` (its algorithm is
//!   explicitly unspecified and randomly keyed).
//! * [`codec`] — a fixed-layout little-endian byte codec
//!   ([`codec::Enc`]/[`codec::Dec`]) plus checksummed artifact framing.
//!   Decoding is total: truncated or bit-flipped input yields `None`,
//!   never a panic.
//! * [`store`] — [`store::ArtifactStore`], the on-disk layout
//!   `<root>/<stage>/<fingerprint>.art` with atomic writes, corruption
//!   detection, and per-stage LRU eviction.
//!
//! The crate knows nothing about the pipeline's domain types; callers
//! (see `disengage-core`'s `artifact` module) provide the payload
//! encoding on top of [`codec`].

pub mod codec;
pub mod fp;
pub mod store;

pub use codec::{Dec, Enc};
pub use fp::{Fingerprint, Fp};
pub use store::{ArtifactStore, Lookup};
