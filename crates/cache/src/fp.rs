//! Stable 64-bit fingerprints via streaming FNV-1a.
//!
//! FNV-1a is not collision-resistant against adversaries, but cache
//! keys here hash trusted configuration (a few dozen fields), not
//! attacker-controlled bulk data, and what matters is *stability*: the
//! same inputs must produce the same fingerprint in every process, on
//! every platform, forever. The algorithm is frozen by its two
//! published constants, so golden fingerprints can be pinned in tests.

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// A finished fingerprint: a stable 64-bit digest, displayed as 16
/// lowercase hex digits (the on-disk artifact file name).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Fingerprint(pub u64);

impl Fingerprint {
    /// The 16-digit lowercase hex form used for file names.
    pub fn to_hex(self) -> String {
        format!("{:016x}", self.0)
    }

    /// Parses the 16-digit hex form back into a fingerprint.
    pub fn from_hex(s: &str) -> Option<Fingerprint> {
        if s.len() != 16 {
            return None;
        }
        u64::from_str_radix(s, 16).ok().map(Fingerprint)
    }
}

impl core::fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// Streaming FNV-1a hasher. Every `write_*` method is
/// self-delimiting (strings and byte slices are length-prefixed), so
/// distinct field sequences cannot collide by concatenation — e.g.
/// `("ab", "c")` and `("a", "bc")` hash differently.
#[derive(Debug, Clone)]
pub struct Fp {
    state: u64,
}

impl Fp {
    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Fp {
        Fp { state: FNV_OFFSET }
    }

    fn byte(&mut self, b: u8) {
        self.state ^= b as u64;
        self.state = self.state.wrapping_mul(FNV_PRIME);
    }

    /// Hashes raw bytes without a length prefix. Prefer the typed
    /// writers; this exists for checksumming whole payloads.
    pub fn write_raw(&mut self, bytes: &[u8]) -> &mut Fp {
        for &b in bytes {
            self.byte(b);
        }
        self
    }

    /// Hashes a `u8`.
    pub fn write_u8(&mut self, v: u8) -> &mut Fp {
        self.byte(v);
        self
    }

    /// Hashes a `bool` as one byte.
    pub fn write_bool(&mut self, v: bool) -> &mut Fp {
        self.byte(v as u8);
        self
    }

    /// Hashes a `u32` little-endian.
    pub fn write_u32(&mut self, v: u32) -> &mut Fp {
        self.write_raw(&v.to_le_bytes())
    }

    /// Hashes a `u64` little-endian.
    pub fn write_u64(&mut self, v: u64) -> &mut Fp {
        self.write_raw(&v.to_le_bytes())
    }

    /// Hashes an `f64` by exact bit pattern (no rounding, `-0.0` and
    /// `0.0` are distinct — a config that flips the sign bit is a
    /// different config).
    pub fn write_f64(&mut self, v: f64) -> &mut Fp {
        self.write_u64(v.to_bits())
    }

    /// Hashes a string, length-prefixed.
    pub fn write_str(&mut self, s: &str) -> &mut Fp {
        self.write_u64(s.len() as u64);
        self.write_raw(s.as_bytes())
    }

    /// Folds a finished sub-fingerprint in (used to chain upstream
    /// artifact fingerprints into downstream stage keys).
    pub fn write_fp(&mut self, fp: Fingerprint) -> &mut Fp {
        self.write_u64(fp.0)
    }

    /// Finishes the digest.
    pub fn finish(&self) -> Fingerprint {
        Fingerprint(self.state)
    }
}

impl Default for Fp {
    fn default() -> Fp {
        Fp::new()
    }
}

/// One-shot checksum of a byte payload (used by the artifact framing).
pub fn checksum(bytes: &[u8]) -> u64 {
    let mut fp = Fp::new();
    fp.write_raw(bytes);
    fp.finish().0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_published_fnv1a_vectors() {
        // Reference digests for the frozen FNV-1a 64 parameters.
        assert_eq!(checksum(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(checksum(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(checksum(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn length_prefix_prevents_concatenation_collisions() {
        let mut a = Fp::new();
        a.write_str("ab").write_str("c");
        let mut b = Fp::new();
        b.write_str("a").write_str("bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn hex_round_trip() {
        let fp = Fingerprint(0x0123_4567_89ab_cdef);
        assert_eq!(fp.to_hex(), "0123456789abcdef");
        assert_eq!(Fingerprint::from_hex(&fp.to_hex()), Some(fp));
        assert_eq!(Fingerprint::from_hex("xyz"), None);
        assert_eq!(Fingerprint::from_hex("0123"), None);
    }

    #[test]
    fn f64_uses_exact_bits() {
        let mut a = Fp::new();
        a.write_f64(0.0);
        let mut b = Fp::new();
        b.write_f64(-0.0);
        assert_ne!(a.finish(), b.finish());
    }
}
