//! On-disk content-addressed artifact store.
//!
//! Layout: `<root>/<stage>/<fingerprint>.art`, one file per artifact,
//! each wrapped in the checksummed frame from [`crate::codec`]. The
//! store is a cache, not a database: every failure mode (unreadable
//! directory, corrupt frame, full disk, a crashed or racing peer)
//! degrades to "recompute", never to an error the pipeline has to
//! handle.
//!
//! # Crash safety
//!
//! A save is a two-phase atomic commit: the frame is written to a
//! uniquely named dot-prefixed `*.tmp` sibling (`.<fp>.<pid>.<seq>.tmp`),
//! fsynced, then renamed into place (and the directory fsynced,
//! best-effort). Readers therefore only ever observe either no entry
//! or a complete frame — a crash at any instant leaves at worst a tmp
//! file, which [`ArtifactStore::reclaim`] (run at session start) and
//! the per-save sweep remove once its owner is provably dead or aged
//! out. Torn frames that do reach disk (e.g. planted by a fault
//! campaign) are caught by the frame checksum and recomputed.
//!
//! # Concurrency
//!
//! Multiple sessions — threads or processes — may share one root.
//! Per-fingerprint advisory lock files ([`crate::lock`]) give
//! single-flight: [`ArtifactStore::join_flight`] elects one leader to
//! compute while the rest back off exponentially, re-probing until the
//! artifact appears, a stale lock is reclaimed, or a watchdog timeout
//! fires — at which point the waiter falls back to computing locally.
//! Locks are an optimization, never a correctness dependency: commits
//! are atomic and deterministic, so duplicated work writes identical
//! bytes.
//!
//! # Fault injection
//!
//! Every filesystem touch first consults the optional
//! [`IoFaults`](crate::faults::IoFaults) surface. Transient faults are
//! absorbed by bounded retry with backoff; persistent ones degrade to
//! recompute. Every degraded path is counted (see
//! [`ArtifactStore::take_counters`]) under `cache.io.*` / `cache.tmp.*` /
//! `lock.*`, with the invariant that every injected fault resolves as
//! exactly one of `cache.io.retried` or `cache.io.absorbed`.

use std::collections::BTreeMap;
use std::fs::{self, File};
use std::io::{ErrorKind, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::codec::{frame, unframe};
use crate::faults::{IoFault, IoFaults, IoOp};
use crate::fp::Fingerprint;
use crate::lock::{self, LockGuard};

/// Default artifacts kept per stage directory before the least-recently
/// modified entries are evicted. Each stage has a handful of live
/// configurations in practice; the cap bounds disk usage for sweeps.
/// Override per store with [`ArtifactStore::with_cap`] (0 = unbounded).
pub const DEFAULT_PER_STAGE_CAP: usize = 8;

/// Total write/rename/read attempts before a fault stops being
/// "transient" and the operation degrades.
const IO_ATTEMPTS: u32 = 3;

/// Process-wide tmp-name uniquifier (pid alone is not enough: threads
/// of one session may save concurrently).
static TMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// Result of a cache probe.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Lookup {
    /// Entry present and frame-valid; the decoded payload bytes.
    Hit(Vec<u8>),
    /// No entry under this fingerprint.
    Miss,
    /// An entry exists but is truncated, bit-flipped, or from another
    /// format version. The caller recomputes; the bad file has been
    /// removed so the recomputed artifact can take its place.
    Corrupt,
}

/// The role a session plays for one in-flight fingerprint.
#[derive(Debug)]
pub enum Flight {
    /// This session holds the lock and must compute (then save, then
    /// drop the guard).
    Leader(LockGuard),
    /// Another session computed it first; here are the bytes.
    Ready(Vec<u8>),
    /// The watchdog fired before the artifact appeared — compute
    /// locally, without the lock (correct, merely duplicated work).
    TimedOut,
}

/// What [`ArtifactStore::audit_files`] found on disk.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct StoreAudit {
    /// `.art` files whose frame fails to validate (torn commits).
    pub torn: Vec<PathBuf>,
    /// Leftover `*.tmp` write intermediates.
    pub tmp: Vec<PathBuf>,
    /// Leftover `*.lock` files.
    pub locks: Vec<PathBuf>,
    /// Frame-valid `.art` entries.
    pub intact: usize,
}

impl StoreAudit {
    /// Whether the store is clean: no torn frames, no tmp/lock litter.
    pub fn is_clean(&self) -> bool {
        self.torn.is_empty() && self.tmp.is_empty() && self.locks.is_empty()
    }
}

/// A content-addressed artifact store rooted at one directory, or a
/// disabled store that never hits and never writes. Clones share the
/// fault surface and the counter ledger.
#[derive(Clone)]
pub struct ArtifactStore {
    root: Option<PathBuf>,
    version: u32,
    cap: usize,
    lock_ttl: Duration,
    faults: Option<Arc<dyn IoFaults>>,
    counters: Arc<Mutex<BTreeMap<&'static str, u64>>>,
    events: Arc<Mutex<Vec<(&'static str, String)>>>,
}

impl std::fmt::Debug for ArtifactStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ArtifactStore")
            .field("root", &self.root)
            .field("version", &self.version)
            .field("cap", &self.cap)
            .field("lock_ttl", &self.lock_ttl)
            .field("faults", &self.faults.as_ref().map(|_| "armed"))
            .finish()
    }
}

impl ArtifactStore {
    /// A store rooted at `dir` (created lazily on first save).
    /// `version` is the artifact format version baked into every
    /// frame; bumping it invalidates all prior entries.
    pub fn at(dir: impl Into<PathBuf>, version: u32) -> ArtifactStore {
        ArtifactStore {
            root: Some(dir.into()),
            version,
            cap: DEFAULT_PER_STAGE_CAP,
            lock_ttl: lock::DEFAULT_LOCK_TTL,
            faults: None,
            counters: Arc::new(Mutex::new(BTreeMap::new())),
            events: Arc::new(Mutex::new(Vec::new())),
        }
    }

    /// A store that never hits and never writes — the default when no
    /// `--cache-dir` is configured.
    pub fn disabled() -> ArtifactStore {
        ArtifactStore {
            root: None,
            version: 0,
            cap: DEFAULT_PER_STAGE_CAP,
            lock_ttl: lock::DEFAULT_LOCK_TTL,
            faults: None,
            counters: Arc::new(Mutex::new(BTreeMap::new())),
            events: Arc::new(Mutex::new(Vec::new())),
        }
    }

    /// Sets the per-stage entry cap (0 = unbounded).
    #[must_use]
    pub fn with_cap(mut self, cap: usize) -> ArtifactStore {
        self.cap = cap;
        self
    }

    /// Sets the lock lease TTL (staleness threshold for reclaiming
    /// crashed peers' locks and tmp files).
    #[must_use]
    pub fn with_lock_ttl(mut self, ttl: Duration) -> ArtifactStore {
        self.lock_ttl = ttl;
        self
    }

    /// Arms a deterministic I/O fault surface; every filesystem
    /// operation consults it first.
    #[must_use]
    pub fn with_faults(mut self, faults: Arc<dyn IoFaults>) -> ArtifactStore {
        self.faults = Some(faults);
        self
    }

    /// Whether this store can hold artifacts.
    pub fn is_enabled(&self) -> bool {
        self.root.is_some()
    }

    /// The root directory, when enabled.
    pub fn root(&self) -> Option<&Path> {
        self.root.as_deref()
    }

    /// The per-stage entry cap (0 = unbounded).
    pub fn cap(&self) -> usize {
        self.cap
    }

    /// Drains the counter ledger accumulated since the last drain:
    /// `cache.io.fault.*` (faults fired, by site), `cache.io.retried` /
    /// `cache.io.absorbed` (how each resolved), `cache.tmp.reclaimed`,
    /// `lock.acquired` / `lock.contended` / `lock.wait_hit` /
    /// `lock.timeout` / `lock.reclaimed`. Callers feed these into
    /// their own telemetry; all land under prefixes the canonical
    /// report strips, so byte-identity contracts are untouched.
    pub fn take_counters(&self) -> Vec<(&'static str, u64)> {
        let mut map = self.counters.lock().unwrap_or_else(|e| e.into_inner());
        let drained: Vec<_> = map.iter().map(|(&k, &v)| (k, v)).collect();
        map.clear();
        drained
    }

    fn bump(&self, name: &'static str, delta: u64) {
        let mut map = self.counters.lock().unwrap_or_else(|e| e.into_inner());
        *map.entry(name).or_insert(0) += delta;
    }

    /// Drains the named-event ledger: one `(event, file)` entry per
    /// reclaimed torn frame, reclaimed tmp/lock litter file, and
    /// evicted entry, in occurrence order. Like the counters, these
    /// are environment facts (a warm store reclaims, a cold one
    /// doesn't), so consumers must keep them out of canonical output.
    pub fn take_events(&self) -> Vec<(&'static str, String)> {
        let mut ledger = self.events.lock().unwrap_or_else(|e| e.into_inner());
        std::mem::take(&mut *ledger)
    }

    fn note(&self, name: &'static str, path: &Path) {
        let file = path
            .file_name()
            .map(|f| f.to_string_lossy().into_owned())
            .unwrap_or_default();
        let mut ledger = self.events.lock().unwrap_or_else(|e| e.into_inner());
        ledger.push((name, file));
    }

    /// Consults the fault surface; counts a fired fault and how it
    /// will resolve (`retries_left` ⇒ retried, otherwise absorbed —
    /// except reads of flipped bytes, which always degrade).
    fn inject(&self, op: IoOp, retries_left: bool) -> Option<IoFault> {
        let fault = self.faults.as_ref()?.inject(op)?;
        self.bump("cache.io.fault.total", 1);
        self.bump(
            match op {
                IoOp::ReadArtifact => "cache.io.fault.read",
                IoOp::WriteTmp => "cache.io.fault.write",
                IoOp::RenameCommit => "cache.io.fault.rename",
                IoOp::RemoveEvict => "cache.io.fault.evict",
            },
            1,
        );
        let retryable = fault == IoFault::Error || fault == IoFault::ShortWrite;
        if retryable && retries_left {
            self.bump("cache.io.retried", 1);
        } else {
            self.bump("cache.io.absorbed", 1);
        }
        Some(fault)
    }

    fn stage_dir(&self, stage: &str) -> Option<PathBuf> {
        Some(self.root.as_ref()?.join(stage))
    }

    fn entry_path(&self, stage: &str, key: Fingerprint) -> Option<PathBuf> {
        Some(self.stage_dir(stage)?.join(format!("{}.art", key.to_hex())))
    }

    fn lock_path(&self, stage: &str, key: Fingerprint) -> Option<PathBuf> {
        Some(self.stage_dir(stage)?.join(format!("{}.lock", key.to_hex())))
    }

    /// Reads an artifact file through the fault surface with bounded
    /// retry. `None` means "treat as absent".
    fn read_artifact(&self, path: &Path) -> Option<Vec<u8>> {
        for attempt in 0..IO_ATTEMPTS {
            let bytes = match fs::read(path) {
                Ok(b) => b,
                Err(e) if e.kind() == ErrorKind::NotFound => return None,
                // A real read error: retry, then degrade to a miss.
                Err(_) if attempt + 1 < IO_ATTEMPTS => {
                    backoff(attempt);
                    continue;
                }
                Err(_) => return None,
            };
            match self.inject(IoOp::ReadArtifact, attempt + 1 < IO_ATTEMPTS) {
                None => return Some(bytes),
                Some(IoFault::Error) if attempt + 1 < IO_ATTEMPTS => {
                    backoff(attempt);
                    continue;
                }
                Some(IoFault::Error) => return None,
                // Silent corruption: hand back flipped bytes; the
                // frame checksum downstream turns this into Corrupt.
                Some(IoFault::BitFlip | IoFault::ShortWrite) => {
                    let mut bad = bytes;
                    if !bad.is_empty() {
                        let mid = bad.len() / 2;
                        bad[mid] ^= 0x10;
                    }
                    return Some(bad);
                }
            }
        }
        None
    }

    /// Probes the store for `<stage>/<key>`.
    pub fn load(&self, stage: &str, key: Fingerprint) -> Lookup {
        let Some(path) = self.entry_path(stage, key) else {
            return Lookup::Miss;
        };
        let Some(bytes) = self.read_artifact(&path) else {
            return Lookup::Miss;
        };
        match unframe(self.version, &bytes) {
            Some(payload) => Lookup::Hit(payload.to_vec()),
            None => {
                // Drop the damaged entry so the recompute can replace
                // it; ignore failures (read-only cache is still a
                // cache).
                let _ = fs::remove_file(&path);
                Lookup::Corrupt
            }
        }
    }

    /// Writes `bytes` to `tmp` and fsyncs, through the fault surface.
    fn write_tmp(&self, tmp: &Path, bytes: &[u8], retries_left: bool) -> bool {
        match self.inject(IoOp::WriteTmp, retries_left) {
            Some(IoFault::Error) => return false,
            Some(IoFault::ShortWrite) => {
                // A torn write: persist a prefix, then report failure
                // (ENOSPC mid-frame). The retry path must clean up.
                let _ = fs::write(tmp, &bytes[..bytes.len() / 2]);
                return false;
            }
            Some(IoFault::BitFlip) | None => {}
        }
        let Ok(mut file) = File::create(tmp) else {
            return false;
        };
        if file.write_all(bytes).is_err() {
            return false;
        }
        // The commit protocol requires the data durable before the
        // rename publishes it; a failed fsync means the frame may be
        // torn after a crash, so treat it as a failed write.
        file.sync_all().is_ok()
    }

    /// Renames `tmp` into `path`, through the fault surface.
    fn rename_commit(&self, tmp: &Path, path: &Path, retries_left: bool) -> bool {
        if let Some(IoFault::Error | IoFault::ShortWrite | IoFault::BitFlip) =
            self.inject(IoOp::RenameCommit, retries_left)
        {
            return false;
        }
        fs::rename(tmp, path).is_ok()
    }

    /// Stores `payload` under `<stage>/<key>` via the atomic commit
    /// protocol: unique tmp sibling, write + fsync, rename into place,
    /// directory fsync (best-effort). Transient I/O faults are retried
    /// with backoff; a persistent failure degrades to "not cached"
    /// (the next run recomputes) and leaves no tmp litter. Returns the
    /// number of older entries evicted to stay under the per-stage cap.
    pub fn save(&self, stage: &str, key: Fingerprint, payload: &[u8]) -> usize {
        let Some(path) = self.entry_path(stage, key) else {
            return 0;
        };
        let Some(dir) = path.parent().map(Path::to_path_buf) else {
            return 0;
        };
        if fs::create_dir_all(&dir).is_err() {
            return 0;
        }
        let framed = frame(self.version, payload);
        let tmp = dir.join(format!(
            ".{}.{}.{}.tmp",
            key.to_hex(),
            std::process::id(),
            TMP_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let mut committed = false;
        for attempt in 0..IO_ATTEMPTS {
            let retries_left = attempt + 1 < IO_ATTEMPTS;
            if attempt > 0 {
                backoff(attempt - 1);
            }
            if !self.write_tmp(&tmp, &framed, retries_left) {
                let _ = fs::remove_file(&tmp);
                continue;
            }
            if self.rename_commit(&tmp, &path, retries_left) {
                committed = true;
                break;
            }
            let _ = fs::remove_file(&tmp);
        }
        if !committed {
            // Degraded cleanly: no artifact, but also no litter.
            let _ = fs::remove_file(&tmp);
            return 0;
        }
        // Publish the rename itself (best-effort: not all platforms
        // let a directory be fsynced).
        if let Ok(d) = File::open(&dir) {
            let _ = d.sync_all();
        }
        self.sweep(&dir, &path)
    }

    /// Takes the per-fingerprint advisory lock without waiting,
    /// breaking a stale holder if needed.
    pub fn try_lock(&self, stage: &str, key: Fingerprint) -> Option<LockGuard> {
        let path = self.lock_path(stage, key)?;
        let dir = path.parent()?;
        if fs::create_dir_all(dir).is_err() {
            return None;
        }
        let acquired = lock::try_acquire(&path, self.lock_ttl);
        if acquired.reclaimed > 0 {
            self.bump("lock.reclaimed", acquired.reclaimed);
        }
        if acquired.guard.is_some() {
            self.bump("lock.acquired", 1);
        }
        acquired.guard
    }

    /// Joins the single-flight for `<stage>/<key>` after a missed
    /// probe: returns [`Flight::Leader`] holding the lock (compute,
    /// save, then drop the guard), [`Flight::Ready`] when a peer's
    /// artifact appeared while waiting, or [`Flight::TimedOut`] when
    /// the watchdog fired — the caller then recomputes locally so a
    /// wedged peer can never deadlock the pipeline.
    pub fn join_flight(&self, stage: &str, key: Fingerprint, watchdog: Duration) -> Flight {
        if !self.is_enabled() {
            return Flight::TimedOut;
        }
        let deadline = Instant::now() + watchdog;
        let mut wait = Duration::from_millis(1);
        let mut contended = false;
        loop {
            if let Some(guard) = self.try_lock(stage, key) {
                // Double-check under the lock: the previous holder may
                // have committed between our probe and this acquire.
                return match self.load(stage, key) {
                    Lookup::Hit(bytes) => {
                        self.bump("lock.wait_hit", 1);
                        Flight::Ready(bytes)
                    }
                    _ => Flight::Leader(guard),
                };
            }
            if !contended {
                contended = true;
                self.bump("lock.contended", 1);
            }
            let now = Instant::now();
            if now >= deadline {
                self.bump("lock.timeout", 1);
                return Flight::TimedOut;
            }
            // Bounded exponential backoff, capped so reclaim of a
            // crashed leader is noticed promptly.
            std::thread::sleep(wait.min(deadline - now));
            wait = (wait * 2).min(Duration::from_millis(50));
            if let Lookup::Hit(bytes) = self.load(stage, key) {
                self.bump("lock.wait_hit", 1);
                return Flight::Ready(bytes);
            }
        }
    }

    /// Reclaims stale litter (crashed peers' `*.tmp` intermediates,
    /// expired `*.lock` files, and torn `.art` frames) across every
    /// stage directory. Run at session start; the per-save sweep keeps
    /// the tmp/lock part incremental afterwards. Returns how many
    /// files were removed.
    pub fn reclaim(&self) -> u64 {
        let Some(root) = self.root.as_ref() else {
            return 0;
        };
        let Ok(stages) = fs::read_dir(root) else {
            return 0;
        };
        let mut removed = 0;
        for stage in stages.flatten() {
            let dir = stage.path();
            if dir.is_dir() {
                removed += self.reclaim_litter(&dir);
                removed += self.reclaim_torn(&dir);
            }
        }
        removed
    }

    /// Removes `.art` entries whose frame fails to validate — garbage
    /// from external corruption or a foreign format version; the
    /// atomic commit protocol never publishes one itself. Startup-only
    /// (frame-validating every entry is too heavy for the per-save
    /// sweep) and deliberately outside the fault surface: an injected
    /// read fault must never delete a good artifact.
    fn reclaim_torn(&self, dir: &Path) -> u64 {
        let Ok(entries) = fs::read_dir(dir) else {
            return 0;
        };
        let mut removed = 0;
        for entry in entries.flatten() {
            let path = entry.path();
            if !has_ext(&path, "art") {
                continue;
            }
            let valid = fs::read(&path)
                .ok()
                .and_then(|b| unframe(self.version, &b).map(|_| ()))
                .is_some();
            if !valid && fs::remove_file(&path).is_ok() {
                self.bump("cache.torn.reclaimed", 1);
                self.note("cache.reclaim.torn", &path);
                removed += 1;
            }
        }
        removed
    }

    /// Removes stale tmp/lock files in one stage directory.
    fn reclaim_litter(&self, dir: &Path) -> u64 {
        let Ok(entries) = fs::read_dir(dir) else {
            return 0;
        };
        let mut removed = 0;
        for entry in entries.flatten() {
            let path = entry.path();
            if is_tmp(&path) {
                if tmp_is_stale(&path, self.lock_ttl) && fs::remove_file(&path).is_ok() {
                    self.bump("cache.tmp.reclaimed", 1);
                    self.note("cache.reclaim.tmp", &path);
                    removed += 1;
                }
            } else if has_ext(&path, "lock")
                && lock::is_stale(&path, self.lock_ttl)
                && fs::remove_file(&path).is_ok()
            {
                self.bump("lock.reclaimed", 1);
                self.note("lock.reclaim", &path);
                removed += 1;
            }
        }
        removed
    }

    /// Post-commit sweep of one stage directory: reclaim stale litter,
    /// then evict the least-recently-modified `.art` entries beyond
    /// the cap — never `keep` (the entry just committed) and never an
    /// entry whose fingerprint holds a live lock (a peer is reading or
    /// just committed it). A racing `remove_file` losing to a peer
    /// (NotFound) is not an error and not counted. Returns how many
    /// entries this call evicted.
    fn sweep(&self, dir: &Path, keep: &Path) -> usize {
        self.reclaim_litter(dir);
        if self.cap == 0 {
            return 0;
        }
        let Ok(entries) = fs::read_dir(dir) else {
            return 0;
        };
        let mut arts: Vec<(std::time::SystemTime, PathBuf)> = Vec::new();
        for entry in entries.flatten() {
            let path = entry.path();
            if !has_ext(&path, "art") || path == *keep {
                continue;
            }
            let modified = entry
                .metadata()
                .and_then(|m| m.modified())
                .unwrap_or(std::time::SystemTime::UNIX_EPOCH);
            arts.push((modified, path));
        }
        // +1 for `keep`, which always survives.
        if arts.len() + 1 <= self.cap {
            return 0;
        }
        arts.sort();
        let excess = arts.len() + 1 - self.cap;
        let mut evicted = 0;
        for (_, path) in arts.into_iter().take(excess) {
            let lock_sibling = path.with_extension("lock");
            if lock_sibling.exists() && !lock::is_stale(&lock_sibling, self.lock_ttl) {
                // In flight for a concurrent session — not evictable.
                self.bump("cache.evict.skipped_locked", 1);
                continue;
            }
            if let Some(IoFault::Error | IoFault::ShortWrite | IoFault::BitFlip) =
                self.inject(IoOp::RemoveEvict, false)
            {
                continue; // absorbed: the entry outlives its welcome
            }
            match fs::remove_file(&path) {
                Ok(()) => {
                    self.note("cache.evict", &path);
                    evicted += 1;
                }
                // A peer evicted (or recomputed over) it first.
                Err(e) if e.kind() == ErrorKind::NotFound => {}
                Err(_) => {}
            }
        }
        evicted
    }

    /// Audits every file under the root: frame-validates each `.art`
    /// and lists tmp/lock litter. Campaign runners assert
    /// [`StoreAudit::is_clean`] after recovery.
    pub fn audit_files(&self) -> StoreAudit {
        let mut audit = StoreAudit::default();
        let Some(root) = self.root.as_ref() else {
            return audit;
        };
        let Ok(stages) = fs::read_dir(root) else {
            return audit;
        };
        for stage in stages.flatten() {
            let dir = stage.path();
            let Ok(entries) = fs::read_dir(&dir) else {
                continue;
            };
            for entry in entries.flatten() {
                let path = entry.path();
                if is_tmp(&path) {
                    audit.tmp.push(path);
                } else if has_ext(&path, "lock") {
                    audit.locks.push(path);
                } else if has_ext(&path, "art") {
                    let valid = fs::read(&path)
                        .ok()
                        .and_then(|b| unframe(self.version, &b).map(|_| ()))
                        .is_some();
                    if valid {
                        audit.intact += 1;
                    } else {
                        audit.torn.push(path);
                    }
                }
            }
        }
        audit
    }
}

/// Short, bounded backoff between I/O retry attempts.
fn backoff(attempt: u32) {
    std::thread::sleep(Duration::from_millis(1 << attempt.min(4)));
}

fn has_ext(path: &Path, ext: &str) -> bool {
    path.extension().and_then(|e| e.to_str()) == Some(ext)
}

/// Whether `path` is a store write intermediate (`.<fp>.<pid>.<seq>.tmp`).
fn is_tmp(path: &Path) -> bool {
    has_ext(path, "tmp")
        && path
            .file_name()
            .and_then(|n| n.to_str())
            .is_some_and(|n| n.starts_with('.'))
}

/// A tmp file is stale when its writer is provably dead (the pid baked
/// into its name has no `/proc` entry) or it has aged past `ttl` (a
/// live writer renames within milliseconds).
fn tmp_is_stale(path: &Path, ttl: Duration) -> bool {
    let pid: Option<u32> = path
        .file_name()
        .and_then(|n| n.to_str())
        .and_then(|n| n.split('.').nth(2))
        .and_then(|p| p.parse().ok());
    if let Some(pid) = pid {
        if Path::new("/proc").is_dir() && !Path::new(&format!("/proc/{pid}")).exists() {
            return true;
        }
    }
    fs::metadata(path)
        .and_then(|m| m.modified())
        .ok()
        .and_then(|m| std::time::SystemTime::now().duration_since(m).ok())
        .is_some_and(|age| age > ttl)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "disengage-cache-store-{}-{}",
            tag,
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn save_load_round_trip() {
        let root = scratch("roundtrip");
        let store = ArtifactStore::at(&root, 1);
        let key = Fingerprint(0xdead_beef);
        assert_eq!(store.load("corpus", key), Lookup::Miss);
        store.save("corpus", key, b"payload");
        assert_eq!(store.load("corpus", key), Lookup::Hit(b"payload".to_vec()));
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn corrupt_entry_detected_and_removed() {
        let root = scratch("corrupt");
        let store = ArtifactStore::at(&root, 1);
        let key = Fingerprint(42);
        store.save("tag", key, b"the artifact");
        let path = root.join("tag").join(format!("{}.art", key.to_hex()));
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        fs::write(&path, &bytes).unwrap();
        assert_eq!(store.load("tag", key), Lookup::Corrupt);
        // The damaged file was removed, so the next probe is a miss.
        assert_eq!(store.load("tag", key), Lookup::Miss);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn version_bump_invalidates() {
        let root = scratch("version");
        let key = Fingerprint(7);
        ArtifactStore::at(&root, 1).save("norm", key, b"old format");
        assert_eq!(ArtifactStore::at(&root, 2).load("norm", key), Lookup::Corrupt);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn disabled_store_is_inert() {
        let store = ArtifactStore::disabled();
        assert!(!store.is_enabled());
        assert_eq!(store.save("corpus", Fingerprint(1), b"x"), 0);
        assert_eq!(store.load("corpus", Fingerprint(1)), Lookup::Miss);
        assert!(matches!(
            store.join_flight("corpus", Fingerprint(1), Duration::from_millis(1)),
            Flight::TimedOut
        ));
    }

    #[test]
    fn lru_eviction_keeps_newest() {
        let root = scratch("evict");
        let store = ArtifactStore::at(&root, 1);
        let mut evicted_total = 0;
        for i in 0..(DEFAULT_PER_STAGE_CAP as u64 + 3) {
            evicted_total += store.save("digitize", Fingerprint(i), b"x");
        }
        assert_eq!(evicted_total, 3);
        let live = fs::read_dir(root.join("digitize"))
            .unwrap()
            .flatten()
            .filter(|e| has_ext(&e.path(), "art"))
            .count();
        assert_eq!(live, DEFAULT_PER_STAGE_CAP);
        // The most recent write always survives.
        assert!(matches!(
            store.load("digitize", Fingerprint(DEFAULT_PER_STAGE_CAP as u64 + 2)),
            Lookup::Hit(_)
        ));
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn zero_cap_is_unbounded() {
        let root = scratch("uncapped");
        let store = ArtifactStore::at(&root, 1).with_cap(0);
        for i in 0..40u64 {
            assert_eq!(store.save("digitize", Fingerprint(i), b"x"), 0);
        }
        let live = fs::read_dir(root.join("digitize")).unwrap().count();
        assert_eq!(live, 40);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn eviction_skips_locked_entries() {
        let root = scratch("evict-locked");
        let store = ArtifactStore::at(&root, 1).with_cap(2);
        store.save("tag", Fingerprint(1), b"oldest");
        // A live peer holds fingerprint 1 (fresh lease, our pid).
        let guard = store.try_lock("tag", Fingerprint(1)).expect("lock");
        store.save("tag", Fingerprint(2), b"mid");
        store.save("tag", Fingerprint(3), b"new");
        // Cap 2 with three entries: the oldest would go, but it is
        // locked — the unlocked middle entry goes instead.
        assert!(matches!(store.load("tag", Fingerprint(1)), Lookup::Hit(_)));
        drop(guard);
        let counters: BTreeMap<_, _> = store.take_counters().into_iter().collect();
        assert!(counters.get("cache.evict.skipped_locked").copied().unwrap_or(0) >= 1);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn save_leaves_no_tmp_behind() {
        let root = scratch("no-tmp");
        let store = ArtifactStore::at(&root, 1);
        for i in 0..5u64 {
            store.save("corpus", Fingerprint(i), b"bytes");
        }
        let audit = store.audit_files();
        assert!(audit.is_clean(), "{audit:?}");
        assert_eq!(audit.intact, 5);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn dead_writer_tmp_is_reclaimed() {
        let root = scratch("reclaim-tmp");
        let store = ArtifactStore::at(&root, 1);
        store.save("corpus", Fingerprint(1), b"x");
        // A crashed peer's torn intermediate: dead pid in the name.
        let litter = root.join("corpus").join(".aaaa.3999999999.0.tmp");
        fs::write(&litter, b"torn").unwrap();
        if Path::new("/proc").is_dir() {
            assert_eq!(store.reclaim(), 1);
            assert!(!litter.exists());
            let counters: BTreeMap<_, _> = store.take_counters().into_iter().collect();
            assert_eq!(counters.get("cache.tmp.reclaimed"), Some(&1));
        }
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn torn_artifact_is_reclaimed_at_startup() {
        let root = scratch("reclaim-torn");
        let store = ArtifactStore::at(&root, 1);
        store.save("corpus", Fingerprint(1), b"good");
        let torn = root.join("corpus").join("aaaaaaaaaaaaaaaa.art");
        fs::write(&torn, b"DART").unwrap();
        assert_eq!(store.reclaim(), 1);
        assert!(!torn.exists());
        // The frame-valid entry survives.
        assert!(matches!(store.load("corpus", Fingerprint(1)), Lookup::Hit(_)));
        let counters: BTreeMap<_, _> = store.take_counters().into_iter().collect();
        assert_eq!(counters.get("cache.torn.reclaimed"), Some(&1));
        let events = store.take_events();
        assert_eq!(
            events,
            vec![("cache.reclaim.torn", "aaaaaaaaaaaaaaaa.art".to_owned())]
        );
        assert!(store.take_events().is_empty(), "take_events drains");
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn our_own_fresh_tmp_survives_reclaim() {
        let root = scratch("fresh-tmp");
        let store = ArtifactStore::at(&root, 1);
        fs::create_dir_all(root.join("corpus")).unwrap();
        let mine = root
            .join("corpus")
            .join(format!(".bbbb.{}.7.tmp", std::process::id()));
        fs::write(&mine, b"in flight").unwrap();
        assert_eq!(store.reclaim(), 0, "live writer's tmp must survive");
        assert!(mine.exists());
        let _ = fs::remove_dir_all(&root);
    }
}
