//! On-disk content-addressed artifact store.
//!
//! Layout: `<root>/<stage>/<fingerprint>.art`, one file per artifact,
//! each wrapped in the checksummed frame from [`crate::codec`]. The
//! store is a cache, not a database: every failure mode (unreadable
//! directory, corrupt frame, full disk) degrades to "recompute", never
//! to an error the pipeline has to handle.

use std::fs;
use std::path::{Path, PathBuf};

use crate::codec::{frame, unframe};
use crate::fp::Fingerprint;

/// Artifacts kept per stage directory before the least-recently
/// modified entries are evicted. Each stage has a handful of live
/// configurations in practice; the cap bounds disk usage for sweeps.
const PER_STAGE_CAP: usize = 8;

/// Result of a cache probe.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Lookup {
    /// Entry present and frame-valid; the decoded payload bytes.
    Hit(Vec<u8>),
    /// No entry under this fingerprint.
    Miss,
    /// An entry exists but is truncated, bit-flipped, or from another
    /// format version. The caller recomputes; the bad file has been
    /// removed so the recomputed artifact can take its place.
    Corrupt,
}

/// A content-addressed artifact store rooted at one directory, or a
/// disabled store that never hits and never writes.
#[derive(Debug, Clone)]
pub struct ArtifactStore {
    root: Option<PathBuf>,
    version: u32,
}

impl ArtifactStore {
    /// A store rooted at `dir` (created lazily on first save).
    /// `version` is the artifact format version baked into every
    /// frame; bumping it invalidates all prior entries.
    pub fn at(dir: impl Into<PathBuf>, version: u32) -> ArtifactStore {
        ArtifactStore {
            root: Some(dir.into()),
            version,
        }
    }

    /// A store that never hits and never writes — the default when no
    /// `--cache-dir` is configured.
    pub fn disabled() -> ArtifactStore {
        ArtifactStore {
            root: None,
            version: 0,
        }
    }

    /// Whether this store can hold artifacts.
    pub fn is_enabled(&self) -> bool {
        self.root.is_some()
    }

    /// The root directory, when enabled.
    pub fn root(&self) -> Option<&Path> {
        self.root.as_deref()
    }

    fn entry_path(&self, stage: &str, key: Fingerprint) -> Option<PathBuf> {
        let root = self.root.as_ref()?;
        Some(root.join(stage).join(format!("{}.art", key.to_hex())))
    }

    /// Probes the store for `<stage>/<key>`.
    pub fn load(&self, stage: &str, key: Fingerprint) -> Lookup {
        let Some(path) = self.entry_path(stage, key) else {
            return Lookup::Miss;
        };
        let bytes = match fs::read(&path) {
            Ok(b) => b,
            Err(_) => return Lookup::Miss,
        };
        match unframe(self.version, &bytes) {
            Some(payload) => Lookup::Hit(payload.to_vec()),
            None => {
                // Drop the damaged entry so the recompute can replace
                // it; ignore failures (read-only cache is still a
                // cache).
                let _ = fs::remove_file(&path);
                Lookup::Corrupt
            }
        }
    }

    /// Stores `payload` under `<stage>/<key>`, framing and writing
    /// atomically (temp file + rename) so readers never observe a
    /// partial artifact. Returns the number of older entries evicted
    /// to stay under the per-stage cap. I/O errors are swallowed — a
    /// failed save just means the next run recomputes.
    pub fn save(&self, stage: &str, key: Fingerprint, payload: &[u8]) -> usize {
        let Some(path) = self.entry_path(stage, key) else {
            return 0;
        };
        let Some(dir) = path.parent() else {
            return 0;
        };
        if fs::create_dir_all(dir).is_err() {
            return 0;
        }
        let tmp = dir.join(format!(".{}.tmp.{}", key.to_hex(), std::process::id()));
        if fs::write(&tmp, frame(self.version, payload)).is_err() {
            let _ = fs::remove_file(&tmp);
            return 0;
        }
        if fs::rename(&tmp, &path).is_err() {
            let _ = fs::remove_file(&tmp);
            return 0;
        }
        evict_lru(dir, &path)
    }
}

/// Removes the least-recently-modified `.art` entries beyond the cap,
/// never touching `keep` (the entry just written). Returns how many
/// files were evicted.
fn evict_lru(dir: &Path, keep: &Path) -> usize {
    let Ok(entries) = fs::read_dir(dir) else {
        return 0;
    };
    let mut arts: Vec<(std::time::SystemTime, PathBuf)> = Vec::new();
    for entry in entries.flatten() {
        let path = entry.path();
        if path.extension().and_then(|e| e.to_str()) != Some("art") || path == *keep {
            continue;
        }
        let modified = entry
            .metadata()
            .and_then(|m| m.modified())
            .unwrap_or(std::time::SystemTime::UNIX_EPOCH);
        arts.push((modified, path));
    }
    // +1 for `keep`, which always survives.
    if arts.len() + 1 <= PER_STAGE_CAP {
        return 0;
    }
    arts.sort();
    let excess = arts.len() + 1 - PER_STAGE_CAP;
    let mut evicted = 0;
    for (_, path) in arts.into_iter().take(excess) {
        if fs::remove_file(&path).is_ok() {
            evicted += 1;
        }
    }
    evicted
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "disengage-cache-store-{}-{}",
            tag,
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn save_load_round_trip() {
        let root = scratch("roundtrip");
        let store = ArtifactStore::at(&root, 1);
        let key = Fingerprint(0xdead_beef);
        assert_eq!(store.load("corpus", key), Lookup::Miss);
        store.save("corpus", key, b"payload");
        assert_eq!(store.load("corpus", key), Lookup::Hit(b"payload".to_vec()));
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn corrupt_entry_detected_and_removed() {
        let root = scratch("corrupt");
        let store = ArtifactStore::at(&root, 1);
        let key = Fingerprint(42);
        store.save("tag", key, b"the artifact");
        let path = root.join("tag").join(format!("{}.art", key.to_hex()));
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        fs::write(&path, &bytes).unwrap();
        assert_eq!(store.load("tag", key), Lookup::Corrupt);
        // The damaged file was removed, so the next probe is a miss.
        assert_eq!(store.load("tag", key), Lookup::Miss);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn version_bump_invalidates() {
        let root = scratch("version");
        let key = Fingerprint(7);
        ArtifactStore::at(&root, 1).save("norm", key, b"old format");
        assert_eq!(ArtifactStore::at(&root, 2).load("norm", key), Lookup::Corrupt);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn disabled_store_is_inert() {
        let store = ArtifactStore::disabled();
        assert!(!store.is_enabled());
        assert_eq!(store.save("corpus", Fingerprint(1), b"x"), 0);
        assert_eq!(store.load("corpus", Fingerprint(1)), Lookup::Miss);
    }

    #[test]
    fn lru_eviction_keeps_newest() {
        let root = scratch("evict");
        let store = ArtifactStore::at(&root, 1);
        let mut evicted_total = 0;
        for i in 0..(PER_STAGE_CAP as u64 + 3) {
            evicted_total += store.save("digitize", Fingerprint(i), b"x");
        }
        assert_eq!(evicted_total, 3);
        let live = fs::read_dir(root.join("digitize")).unwrap().count();
        assert_eq!(live, PER_STAGE_CAP);
        // The most recent write always survives.
        assert!(matches!(
            store.load("digitize", Fingerprint(PER_STAGE_CAP as u64 + 2)),
            Lookup::Hit(_)
        ));
        let _ = fs::remove_dir_all(&root);
    }
}
