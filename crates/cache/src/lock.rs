//! Advisory per-fingerprint lock files with lease timestamps.
//!
//! A lock is a sibling file `<fingerprint>.lock` created with
//! `O_CREAT|O_EXCL` (atomic on every filesystem std targets), holding
//! the owner's pid and a lease timestamp. Locks are *advisory* and
//! exist purely to deduplicate work: correctness never depends on
//! them, because artifact commits are atomic renames of checksummed
//! frames and every computation is deterministic — two sessions that
//! both compute a key write identical bytes. What the lock buys is
//! single-flight: under contention one session computes and the rest
//! wait (bounded), then read the committed artifact.
//!
//! Crashed owners must not wedge the cache, so a lock is reclaimable
//! ("stale") when its owner process is provably gone (`/proc/<pid>`
//! on Linux) or its lease has outlived the TTL. A lease that expires
//! under a still-running owner merely lets a second session duplicate
//! the computation — wasted work, never wrong bytes.

use std::fs::{self, OpenOptions};
use std::io::{ErrorKind, Write};
use std::path::{Path, PathBuf};
use std::time::{Duration, SystemTime, UNIX_EPOCH};

/// Default lease TTL: generous enough for any stage computation at
/// full scale, small enough that a crashed peer's lock clears within
/// one coffee-less minute.
pub const DEFAULT_LOCK_TTL: Duration = Duration::from_secs(60);

/// Milliseconds since the Unix epoch (the lease clock).
pub fn now_millis() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

/// The lock-file body: owner pid and lease timestamp, both needed by
/// strangers deciding staleness. Exposed so fault-injection campaigns
/// can fabricate crashed-peer litter.
pub fn compose(pid: u32, lease_millis: u64) -> String {
    format!("pid {pid} lease {lease_millis}\n")
}

/// Parses a lock-file body written by [`compose`].
pub fn parse(body: &str) -> Option<(u32, u64)> {
    let mut words = body.split_whitespace();
    if words.next()? != "pid" {
        return None;
    }
    let pid = words.next()?.parse().ok()?;
    if words.next()? != "lease" {
        return None;
    }
    let lease = words.next()?.parse().ok()?;
    Some((pid, lease))
}

/// Whether `pid` is a running process — `Some(false)` only when the
/// platform can prove the owner is gone (`/proc` exists but the entry
/// does not), `None` when it cannot tell.
fn pid_alive(pid: u32) -> Option<bool> {
    if !Path::new("/proc").is_dir() {
        return None;
    }
    Some(Path::new(&format!("/proc/{pid}")).exists())
}

/// Whether the lock at `path` may be broken: its owner is provably
/// dead, its lease has outlived `ttl`, or its body is unreadable *and*
/// older than `ttl` (a freshly created lock can be observed mid-write,
/// so unparseable-but-young is given the benefit of the doubt).
pub fn is_stale(path: &Path, ttl: Duration) -> bool {
    let age_exceeded = || {
        fs::metadata(path)
            .and_then(|m| m.modified())
            .ok()
            .and_then(|m| SystemTime::now().duration_since(m).ok())
            .is_some_and(|age| age > ttl)
    };
    match fs::read_to_string(path).ok().as_deref().and_then(parse) {
        Some((pid, lease)) => {
            if pid_alive(pid) == Some(false) {
                return true;
            }
            now_millis().saturating_sub(lease) > ttl.as_millis() as u64
        }
        None => age_exceeded(),
    }
}

/// A held advisory lock; dropping it releases (removes) the file.
#[derive(Debug)]
pub struct LockGuard {
    path: PathBuf,
}

impl LockGuard {
    /// The lock file's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for LockGuard {
    fn drop(&mut self) {
        // NotFound is fine — a peer may have reclaimed an expired
        // lease out from under us; the commit was atomic either way.
        let _ = fs::remove_file(&self.path);
    }
}

/// The result of one acquisition attempt.
#[derive(Debug)]
pub struct Acquire {
    /// The guard, when the lock was taken.
    pub guard: Option<LockGuard>,
    /// How many stale lock files were broken along the way.
    pub reclaimed: u64,
}

/// Tries to take the lock at `path` without waiting. A stale holder
/// (dead pid or expired lease, per [`is_stale`]) is broken and the
/// acquisition retried once. Unwritable directories degrade to "not
/// acquired" — the caller computes without the lock.
pub fn try_acquire(path: &Path, ttl: Duration) -> Acquire {
    let mut reclaimed = 0;
    // Two rounds: the first may break a stale lock, the second takes it.
    for _ in 0..2 {
        match OpenOptions::new().write(true).create_new(true).open(path) {
            Ok(mut file) => {
                // Best-effort body: an empty lock is still a lock (it
                // ages out via mtime if we crash mid-write).
                let _ = file.write_all(compose(std::process::id(), now_millis()).as_bytes());
                return Acquire {
                    guard: Some(LockGuard {
                        path: path.to_path_buf(),
                    }),
                    reclaimed,
                };
            }
            Err(e) if e.kind() == ErrorKind::AlreadyExists => {
                if !is_stale(path, ttl) {
                    return Acquire {
                        guard: None,
                        reclaimed,
                    };
                }
                // Break the stale lock; racing breakers are fine
                // (NotFound just means someone else got there first).
                if fs::remove_file(path).is_ok() {
                    reclaimed += 1;
                }
            }
            Err(_) => {
                return Acquire {
                    guard: None,
                    reclaimed,
                };
            }
        }
    }
    Acquire {
        guard: None,
        reclaimed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "disengage-cache-lock-{tag}-{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn body_round_trips() {
        assert_eq!(parse(&compose(42, 1234)), Some((42, 1234)));
        assert_eq!(parse("garbage"), None);
        assert_eq!(parse("pid x lease 3"), None);
    }

    #[test]
    fn acquire_release_reacquire() {
        let dir = scratch("basic");
        let path = dir.join("k.lock");
        let a = try_acquire(&path, DEFAULT_LOCK_TTL);
        assert!(a.guard.is_some());
        // Held: a second attempt must fail without breaking anything.
        let b = try_acquire(&path, DEFAULT_LOCK_TTL);
        assert!(b.guard.is_none());
        assert_eq!(b.reclaimed, 0);
        drop(a);
        assert!(!path.exists(), "drop must release the lock file");
        assert!(try_acquire(&path, DEFAULT_LOCK_TTL).guard.is_some());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn dead_owner_is_reclaimed() {
        if !Path::new("/proc").is_dir() {
            return; // liveness is unknowable here; covered by the TTL test
        }
        let dir = scratch("dead");
        let path = dir.join("k.lock");
        // A pid far above any real pid_max, with a fresh lease: only
        // the liveness check can (and must) break this.
        fs::write(&path, compose(3_999_999_999, now_millis())).unwrap();
        let a = try_acquire(&path, DEFAULT_LOCK_TTL);
        assert!(a.guard.is_some(), "dead-owner lock must be reclaimed");
        assert_eq!(a.reclaimed, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn expired_lease_is_reclaimed_live_lease_is_not() {
        let dir = scratch("lease");
        let path = dir.join("k.lock");
        // Our own (live) pid, but a lease from the distant past.
        fs::write(&path, compose(std::process::id(), 1)).unwrap();
        assert!(is_stale(&path, Duration::from_millis(10)));
        let a = try_acquire(&path, Duration::from_millis(10));
        assert!(a.guard.is_some());
        assert_eq!(a.reclaimed, 1);
        drop(a);
        // A fresh lease under a live pid holds.
        fs::write(&path, compose(std::process::id(), now_millis())).unwrap();
        assert!(!is_stale(&path, DEFAULT_LOCK_TTL));
        assert!(try_acquire(&path, DEFAULT_LOCK_TTL).guard.is_none());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn unparseable_young_lock_holds_old_one_breaks() {
        let dir = scratch("garbage");
        let path = dir.join("k.lock");
        fs::write(&path, "???").unwrap();
        // Young garbage: might be a peer mid-write — hold off.
        assert!(!is_stale(&path, Duration::from_secs(60)));
        // Old garbage (mtime-aged out under a zero TTL): break it.
        std::thread::sleep(Duration::from_millis(15));
        assert!(is_stale(&path, Duration::from_millis(1)));
        let _ = fs::remove_dir_all(&dir);
    }
}
