//! Fixed-layout byte codec and checksummed artifact framing.
//!
//! The encoding is deliberately boring: little-endian fixed-width
//! integers, length-prefixed strings and sequences, one tag byte per
//! enum/option. There is no schema negotiation — the frame carries a
//! format version, and any mismatch (or any truncation or bit flip,
//! caught by the FNV checksum) makes decoding fail cleanly so the
//! caller recomputes instead of trusting a stale or damaged artifact.

use crate::fp::checksum;

/// Magic prefix of every artifact file: "DART" (disengage artifact).
const MAGIC: [u8; 4] = *b"DART";

/// Append-only byte encoder.
#[derive(Debug, Default)]
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    /// An empty encoder.
    pub fn new() -> Enc {
        Enc { buf: Vec::new() }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the encoder, returning the raw payload.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Writes a `u8`.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a `bool` as one byte.
    pub fn bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    /// Writes a `u16` little-endian.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u32` little-endian.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u64` little-endian.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `usize` as `u64` (the cast is lossless on all
    /// supported targets).
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Writes an `f64` by exact bit pattern — decoding reproduces the
    /// value bit for bit, which the byte-identity contract requires.
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Writes a length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.usize(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Writes an `Option` as a tag byte plus the payload.
    pub fn opt<T>(&mut self, v: &Option<T>, mut f: impl FnMut(&mut Enc, &T)) {
        match v {
            None => self.u8(0),
            Some(x) => {
                self.u8(1);
                f(self, x);
            }
        }
    }

    /// Writes a length-prefixed sequence.
    pub fn seq<T>(&mut self, items: &[T], mut f: impl FnMut(&mut Enc, &T)) {
        self.usize(items.len());
        for item in items {
            f(self, item);
        }
    }
}

/// Cursor-based decoder over a borrowed payload. Every method returns
/// `Option`: running off the end, an invalid tag, or malformed UTF-8
/// yields `None` and the caller treats the artifact as corrupt.
#[derive(Debug)]
pub struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

/// Upper bound accepted for any length prefix, so a corrupted length
/// fails fast instead of attempting a multi-gigabyte allocation.
const MAX_LEN: u64 = 1 << 32;

impl<'a> Dec<'a> {
    /// A decoder at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Dec<'a> {
        Dec { buf, pos: 0 }
    }

    /// Whether the cursor consumed the whole payload (trailing bytes
    /// mean the artifact does not match the expected layout).
    pub fn at_end(&self) -> bool {
        self.pos == self.buf.len()
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        let slice = self.buf.get(self.pos..end)?;
        self.pos = end;
        Some(slice)
    }

    /// Reads a `u8`.
    pub fn u8(&mut self) -> Option<u8> {
        Some(self.take(1)?[0])
    }

    /// Reads a `bool`, rejecting tags other than 0/1.
    pub fn bool(&mut self) -> Option<bool> {
        match self.u8()? {
            0 => Some(false),
            1 => Some(true),
            _ => None,
        }
    }

    /// Reads a `u16`.
    pub fn u16(&mut self) -> Option<u16> {
        Some(u16::from_le_bytes(self.take(2)?.try_into().ok()?))
    }

    /// Reads a `u32`.
    pub fn u32(&mut self) -> Option<u32> {
        Some(u32::from_le_bytes(self.take(4)?.try_into().ok()?))
    }

    /// Reads a `u64`.
    pub fn u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }

    /// Reads a `usize`, bounding the value so corrupted lengths cannot
    /// trigger runaway allocations.
    pub fn usize(&mut self) -> Option<usize> {
        let v = self.u64()?;
        if v > MAX_LEN {
            return None;
        }
        Some(v as usize)
    }

    /// Reads an `f64` by exact bit pattern.
    pub fn f64(&mut self) -> Option<f64> {
        Some(f64::from_bits(self.u64()?))
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Option<String> {
        let len = self.usize()?;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).ok()
    }

    /// Reads an `Option` written by [`Enc::opt`].
    pub fn opt<T>(&mut self, mut f: impl FnMut(&mut Dec<'a>) -> Option<T>) -> Option<Option<T>> {
        match self.u8()? {
            0 => Some(None),
            1 => Some(Some(f(self)?)),
            _ => None,
        }
    }

    /// Reads a length-prefixed sequence written by [`Enc::seq`].
    pub fn seq<T>(&mut self, mut f: impl FnMut(&mut Dec<'a>) -> Option<T>) -> Option<Vec<T>> {
        let len = self.usize()?;
        // Cap the pre-allocation by what the buffer could possibly
        // hold (each element is at least one byte).
        let mut out = Vec::with_capacity(len.min(self.buf.len() - self.pos));
        for _ in 0..len {
            out.push(f(self)?);
        }
        Some(out)
    }
}

/// Wraps an encoded payload in the on-disk frame:
/// `MAGIC ∥ version ∥ payload_len ∥ fnv64(payload) ∥ payload`.
pub fn frame(version: u32, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + 24);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&version.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&checksum(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Validates a frame and returns the payload slice. `None` on any
/// mismatch: wrong magic, wrong version, truncated or over-long body,
/// or checksum failure.
pub fn unframe(version: u32, bytes: &[u8]) -> Option<&[u8]> {
    let mut dec = Dec::new(bytes);
    if dec.take(4)? != MAGIC {
        return None;
    }
    if dec.u32()? != version {
        return None;
    }
    let len = dec.usize()?;
    let sum = dec.u64()?;
    let payload = dec.take(len)?;
    if !dec.at_end() {
        return None;
    }
    if checksum(payload) != sum {
        return None;
    }
    Some(payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_round_trip() {
        let mut enc = Enc::new();
        enc.u8(7);
        enc.bool(true);
        enc.u16(512);
        enc.u32(70_000);
        enc.u64(1 << 40);
        enc.f64(-0.125);
        enc.str("héllo");
        enc.opt(&Some(3u8), |e, v| e.u8(*v));
        enc.opt(&None::<u8>, |e, v| e.u8(*v));
        enc.seq(&[1u64, 2, 3], |e, v| e.u64(*v));
        let bytes = enc.into_bytes();

        let mut dec = Dec::new(&bytes);
        assert_eq!(dec.u8(), Some(7));
        assert_eq!(dec.bool(), Some(true));
        assert_eq!(dec.u16(), Some(512));
        assert_eq!(dec.u32(), Some(70_000));
        assert_eq!(dec.u64(), Some(1 << 40));
        assert_eq!(dec.f64(), Some(-0.125));
        assert_eq!(dec.str().as_deref(), Some("héllo"));
        assert_eq!(dec.opt(|d| d.u8()), Some(Some(3)));
        assert_eq!(dec.opt(|d| d.u8()), Some(None));
        assert_eq!(dec.seq(|d| d.u64()), Some(vec![1, 2, 3]));
        assert!(dec.at_end());
    }

    #[test]
    fn truncation_yields_none_not_panic() {
        let mut enc = Enc::new();
        enc.str("a longer payload string");
        let bytes = enc.into_bytes();
        for cut in 0..bytes.len() {
            let mut dec = Dec::new(&bytes[..cut]);
            assert!(dec.str().is_none(), "cut at {cut} must fail cleanly");
        }
    }

    #[test]
    fn corrupted_length_is_bounded() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&u64::MAX.to_le_bytes());
        let mut dec = Dec::new(&bytes);
        assert_eq!(dec.usize(), None);
    }

    #[test]
    fn frame_round_trip_and_checksum() {
        let payload = b"stage artifact bytes".to_vec();
        let framed = frame(3, &payload);
        assert_eq!(unframe(3, &framed), Some(payload.as_slice()));

        // Version mismatch.
        assert_eq!(unframe(4, &framed), None);

        // Any single bit flip in the body is detected.
        for i in 0..framed.len() {
            let mut bad = framed.clone();
            bad[i] ^= 0x01;
            assert_eq!(unframe(3, &bad), None, "flip at byte {i} undetected");
        }

        // Truncation at every length is detected.
        for cut in 0..framed.len() {
            assert_eq!(unframe(3, &framed[..cut]), None);
        }

        // Trailing garbage is detected.
        let mut long = framed.clone();
        long.push(0);
        assert_eq!(unframe(3, &long), None);
    }
}
