//! The store's I/O fault surface.
//!
//! Crash-safety claims are only as good as the faults they have been
//! tested against, so every filesystem operation the store performs
//! first consults an optional [`IoFaults`] injector. The injector
//! decides — deterministically, from its own seed — whether the
//! operation fails (an `EIO`/`ENOSPC` analogue), persists only a
//! prefix of its bytes, or returns bit-flipped data. The store's job
//! is to absorb every one of those outcomes: transient faults with
//! bounded retry/backoff, persistent ones by degrading to
//! "recompute", never by panicking or serving wrong bytes.
//!
//! The crate defines only the *surface*; the seeded implementation
//! lives in `disengage-chaos::io` so the cache stays dependency-free.

/// A store filesystem operation about to run, as seen by an injector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoOp {
    /// Reading an artifact frame from disk.
    ReadArtifact,
    /// Writing the temporary sibling of an artifact (pre-commit).
    WriteTmp,
    /// Renaming the temporary file into place (the commit point).
    RenameCommit,
    /// Removing an entry during LRU eviction.
    RemoveEvict,
}

impl IoOp {
    /// Stable snake_case name (a telemetry key segment).
    pub fn name(self) -> &'static str {
        match self {
            IoOp::ReadArtifact => "read",
            IoOp::WriteTmp => "write",
            IoOp::RenameCommit => "rename",
            IoOp::RemoveEvict => "evict",
        }
    }
}

/// The fault an injector asks the store to simulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoFault {
    /// The operation fails outright (`EIO`, `ENOSPC`, permission …).
    Error,
    /// A write persists only a prefix of its bytes before failing —
    /// the classic torn write of a crash or a full disk.
    ShortWrite,
    /// A read returns the frame with one bit flipped (silent media
    /// corruption; the frame checksum must catch it).
    BitFlip,
}

impl IoFault {
    /// Stable snake_case name (a telemetry key segment).
    pub fn name(self) -> &'static str {
        match self {
            IoFault::Error => "error",
            IoFault::ShortWrite => "short_write",
            IoFault::BitFlip => "bit_flip",
        }
    }
}

/// A deterministic source of injected I/O faults. Implementations must
/// be `Send + Sync`: one injector is shared across every clone of the
/// store, including clones running on worker threads.
pub trait IoFaults: Send + Sync {
    /// Consulted immediately before the store performs `op`; `Some`
    /// makes the store simulate that fault for this one invocation.
    fn inject(&self, op: IoOp) -> Option<IoFault>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_stable() {
        assert_eq!(IoOp::ReadArtifact.name(), "read");
        assert_eq!(IoOp::WriteTmp.name(), "write");
        assert_eq!(IoOp::RenameCommit.name(), "rename");
        assert_eq!(IoOp::RemoveEvict.name(), "evict");
        assert_eq!(IoFault::Error.name(), "error");
        assert_eq!(IoFault::ShortWrite.name(), "short_write");
        assert_eq!(IoFault::BitFlip.name(), "bit_flip");
    }
}
