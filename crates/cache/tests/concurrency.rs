//! Concurrency contracts of the artifact store: many workers on one
//! cache directory, with single-flight leases, crashed-peer litter,
//! and injected I/O faults — each artifact computed once, every reader
//! seeing identical bytes, never a torn frame, never a deadlock.

use disengage_cache::{lock, ArtifactStore, Fingerprint, Flight, Fp, IoFault, IoFaults, IoOp, Lookup};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Barrier};
use std::time::Duration;

/// A unique, self-cleaning store directory per test.
struct TempStore(PathBuf);

impl TempStore {
    fn new(name: &str) -> TempStore {
        let dir = std::env::temp_dir().join(format!(
            "disengage-cache-concurrency-{}-{name}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        TempStore(dir)
    }

    fn store(&self) -> ArtifactStore {
        ArtifactStore::at(self.0.clone(), 1)
    }
}

impl Drop for TempStore {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn key(i: u64) -> Fingerprint {
    let mut f = Fp::new();
    f.write_str("concurrency").write_u64(i);
    f.finish()
}

/// The deterministic "expensive computation" for `key(i)` — big enough
/// to span several write chunks.
fn payload(i: u64) -> Vec<u8> {
    (0..4096u64).flat_map(|j| (i ^ j).to_le_bytes()).collect()
}

/// One session's probe-or-compute cycle for a key, through the same
/// load → single-flight → compute → commit discipline the pipeline's
/// `cached_stage` uses. Returns the bytes this worker ended up with.
fn probe_or_compute(store: &ArtifactStore, i: u64, computes: &AtomicUsize) -> Vec<u8> {
    loop {
        match store.load("stage", key(i)) {
            Lookup::Hit(bytes) => return bytes,
            Lookup::Miss | Lookup::Corrupt => {}
        }
        match store.join_flight("stage", key(i), Duration::from_secs(30)) {
            Flight::Ready(bytes) => return bytes,
            Flight::Leader(guard) => {
                // Double-check under the lock: a peer may have
                // committed between our probe and the acquisition.
                if let Lookup::Hit(bytes) = store.load("stage", key(i)) {
                    drop(guard);
                    return bytes;
                }
                computes.fetch_add(1, Ordering::SeqCst);
                let bytes = payload(i);
                store.save("stage", key(i), &bytes);
                drop(guard);
                return bytes;
            }
            Flight::TimedOut => {}
        }
    }
}

#[test]
fn eight_workers_compute_each_artifact_exactly_once() {
    const WORKERS: usize = 8;
    const KEYS: u64 = 4;
    let tmp = TempStore::new("stress");
    // Unbounded: 4 keys would fit the default cap, but the point here
    // is single-flight, not eviction.
    let store = tmp.store().with_cap(0);

    // Mixed traffic: key 0 starts as a torn frame on disk (the first
    // prober takes the Corrupt path), key 1 is pre-committed (pure
    // warm hits), keys 2–3 are cold.
    let dir = tmp.0.join("stage");
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(dir.join(format!("{}.art", key(0).to_hex())), b"not a frame").unwrap();
    store.save("stage", key(1), &payload(1));

    let computes = Arc::new(AtomicUsize::new(0));
    let barrier = Arc::new(Barrier::new(WORKERS));
    let results: Vec<Vec<Vec<u8>>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..WORKERS)
            .map(|w| {
                let store = store.clone();
                let computes = Arc::clone(&computes);
                let barrier = Arc::clone(&barrier);
                scope.spawn(move || {
                    barrier.wait();
                    // Each worker walks the keys in a different
                    // rotation, so leaders and waiters interleave.
                    (0..KEYS)
                        .map(|k| probe_or_compute(&store, (k + w as u64) % KEYS, &computes))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    // Every worker got byte-identical results for every key.
    for (w, worker) in results.iter().enumerate() {
        for (j, bytes) in worker.iter().enumerate() {
            let i = (j as u64 + w as u64) % KEYS;
            assert_eq!(bytes, &payload(i), "worker {w} got wrong bytes for key {i}");
        }
    }
    // Key 1 was pre-committed; the other three were computed by
    // exactly one worker each, however the race went.
    assert_eq!(computes.load(Ordering::SeqCst), KEYS as usize - 1);
    // The directory holds only intact committed frames — no torn
    // files, no tmp, no locks.
    let audit = store.audit_files();
    assert!(
        audit.is_clean(),
        "torn {:?} tmp {:?} locks {:?}",
        audit.torn,
        audit.tmp,
        audit.locks
    );
    assert_eq!(audit.intact, KEYS as usize);
}

#[test]
fn wedged_peer_times_out_instead_of_deadlocking() {
    let tmp = TempStore::new("wedged");
    let store = tmp.store();
    // A live peer (our own pid, fresh lease) holds the lock and never
    // finishes. The watchdog must hand the flight back, not hang.
    let dir = tmp.0.join("stage");
    std::fs::create_dir_all(&dir).unwrap();
    let lock_path = dir.join(format!("{}.lock", key(9).to_hex()));
    std::fs::write(
        &lock_path,
        lock::compose(std::process::id(), lock::now_millis()),
    )
    .unwrap();

    let started = std::time::Instant::now();
    match store.join_flight("stage", key(9), Duration::from_millis(200)) {
        Flight::TimedOut => {}
        other => panic!("expected a watchdog timeout, got {other:?}"),
    }
    assert!(
        started.elapsed() < Duration::from_secs(10),
        "watchdog failed to bound the wait"
    );
    // The caller recovers by computing locally; the wedged peer's lock
    // never blocks the commit (the rename is atomic regardless).
    store.save("stage", key(9), &payload(9));
    assert!(matches!(store.load("stage", key(9)), Lookup::Hit(b) if b == payload(9)));
}

#[test]
fn dead_peers_stale_lock_is_reclaimed() {
    let tmp = TempStore::new("stale-lock");
    let store = tmp.store();
    // A provably-dead pid far beyond Linux's pid_max: the lease is
    // unexpired but the holder cannot be alive.
    let dir = tmp.0.join("stage");
    std::fs::create_dir_all(&dir).unwrap();
    let lock_path = dir.join(format!("{}.lock", key(5).to_hex()));
    std::fs::write(&lock_path, lock::compose(3_999_999_999, lock::now_millis())).unwrap();

    // The flight breaks the stale lock and leads immediately.
    match store.join_flight("stage", key(5), Duration::from_secs(5)) {
        Flight::Leader(guard) => {
            store.save("stage", key(5), &payload(5));
            drop(guard);
        }
        other => panic!("expected leadership after stale-lock reclaim, got {other:?}"),
    }
    assert!(!lock_path.exists(), "stale lock must be gone");
    assert!(matches!(store.load("stage", key(5)), Lookup::Hit(b) if b == payload(5)));
}

/// Fails every rename for the first `n` consultations — the commit
/// step dying over and over, as on a full or flaky disk.
struct RenameStorm {
    left: AtomicU64,
}

impl IoFaults for RenameStorm {
    fn inject(&self, op: IoOp) -> Option<IoFault> {
        if op == IoOp::RenameCommit
            && self
                .left
                .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1))
                .is_ok()
        {
            return Some(IoFault::Error);
        }
        None
    }
}

#[test]
fn failed_commits_never_leave_tmp_files_or_torn_frames() {
    let tmp = TempStore::new("rename-storm");
    // Exactly one save's retry budget of rename failures: the save
    // gives up (the run degrades to recompute-next-time), but the
    // directory stays clean and the next save commits normally.
    let store = tmp
        .store()
        .with_faults(Arc::new(RenameStorm { left: AtomicU64::new(3) }));
    store.save("stage", key(7), &payload(7));
    assert!(
        matches!(store.load("stage", key(7)), Lookup::Miss),
        "commit was supposed to fail under the storm"
    );
    let audit = store.audit_files();
    assert!(audit.is_clean(), "failed save left debris: {audit:?}");
    assert_eq!(audit.intact, 0);

    // The storm has blown over (fault budget exhausted): the same save
    // now commits, and the counters account for every fired fault.
    store.save("stage", key(7), &payload(7));
    assert!(matches!(store.load("stage", key(7)), Lookup::Hit(b) if b == payload(7)));
    let counters: std::collections::BTreeMap<_, _> =
        store.take_counters().into_iter().collect();
    let fired = counters.get("cache.io.fault.total").copied().unwrap_or(0);
    let retried = counters.get("cache.io.retried").copied().unwrap_or(0);
    let absorbed = counters.get("cache.io.absorbed").copied().unwrap_or(0);
    assert!(fired > 0, "storm never fired");
    assert_eq!(fired, retried + absorbed, "a fired fault went unaccounted");
}
