//! Chrome trace-event export: the run's span tree plus per-worker pool
//! tasks as a `trace.json` loadable in `chrome://tracing` / Perfetto.
//!
//! The exporter emits the simplest widely-supported subset of the
//! trace-event format: a JSON array of complete duration events
//! (`"ph":"X"`), each carrying exactly the required keys `name`, `ph`,
//! `ts`, `dur`, `pid`, `tid`. Span-tree events render on `tid` 0;
//! pool tasks render on `tid` worker+1 so every worker gets its own
//! timeline row. Timestamps are microseconds since the collector's
//! epoch — this artifact is wall-clock by nature and therefore *not*
//! part of the byte-identity determinism contract (the lineage JSONL
//! is; see [`crate::provenance`]).

use crate::json::Value;
use crate::report::{SpanNode, TelemetryReport};

/// One pool task interval, as reported by the executor's timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceTask {
    /// Display label (stage + chunk).
    pub label: String,
    /// Worker index that ran the task (0-based).
    pub worker: usize,
    /// Start, seconds since the collector epoch.
    pub start_s: f64,
    /// End, seconds since the collector epoch.
    pub end_s: f64,
}

fn micros(seconds: f64) -> u64 {
    (seconds.max(0.0) * 1e6).round() as u64
}

fn duration_event(name: &str, ts: u64, dur: u64, tid: u64) -> Value {
    Value::Obj(vec![
        ("name".to_owned(), Value::Str(name.to_owned())),
        ("ph".to_owned(), Value::Str("X".to_owned())),
        ("ts".to_owned(), Value::Num(ts as f64)),
        ("dur".to_owned(), Value::Num(dur as f64)),
        ("pid".to_owned(), Value::Num(1.0)),
        ("tid".to_owned(), Value::Num(tid as f64)),
    ])
}

fn walk(span: &SpanNode, events: &mut Vec<(u64, u64, Value)>) {
    let ts = micros(span.start_s);
    let dur = micros(span.duration_s);
    events.push((0, ts, duration_event(&span.name, ts, dur, 0)));
    for child in &span.children {
        walk(child, events);
    }
}

/// Builds the trace-event array: the report's span forest on `tid` 0
/// plus one `ph:"X"` event per pool task on `tid` worker+1, sorted by
/// (`tid`, `ts`) so each timeline row is monotone.
pub fn chrome_trace(report: &TelemetryReport, tasks: &[TraceTask]) -> Value {
    let mut events: Vec<(u64, u64, Value)> = Vec::new();
    for span in &report.spans {
        walk(span, &mut events);
    }
    for task in tasks {
        let tid = task.worker as u64 + 1;
        let ts = micros(task.start_s);
        let dur = micros((task.end_s - task.start_s).max(0.0));
        events.push((tid, ts, duration_event(&task.label, ts, dur, tid)));
    }
    events.sort_by(|a, b| (a.0, a.1).cmp(&(b.0, b.1)));
    Value::Arr(events.into_iter().map(|(_, _, v)| v).collect())
}

/// [`chrome_trace`] rendered to the `trace.json` string.
pub fn render_chrome_trace(report: &TelemetryReport, tasks: &[TraceTask]) -> String {
    chrome_trace(report, tasks).render()
}

/// Validates a `trace.json` document: a JSON array of objects, each
/// with the six required keys, `ph:"X"`, and non-negative `ts`/`dur`
/// monotone in `ts` per `tid`. Returns the event count.
pub fn validate_chrome_trace(text: &str) -> Result<usize, String> {
    let value = Value::parse(text).map_err(|e| format!("invalid JSON: {e}"))?;
    let Value::Arr(events) = value else {
        return Err("trace must be a JSON array".to_owned());
    };
    let mut last_ts: std::collections::BTreeMap<u64, f64> = std::collections::BTreeMap::new();
    for (i, event) in events.iter().enumerate() {
        let Value::Obj(fields) = event else {
            return Err(format!("event {i}: not an object"));
        };
        let get = |key: &str| fields.iter().find(|(k, _)| k == key).map(|(_, v)| v);
        for key in ["name", "ph", "ts", "dur", "pid", "tid"] {
            if get(key).is_none() {
                return Err(format!("event {i}: missing required key `{key}`"));
            }
        }
        match get("ph") {
            Some(Value::Str(ph)) if ph == "X" => {}
            _ => return Err(format!("event {i}: ph must be \"X\"")),
        }
        let num = |key: &str| match get(key) {
            Some(Value::Num(n)) => Ok(*n),
            _ => Err(format!("event {i}: `{key}` must be a number")),
        };
        let (ts, dur, tid) = (num("ts")?, num("dur")?, num("tid")?);
        if ts < 0.0 || dur < 0.0 {
            return Err(format!("event {i}: negative ts/dur"));
        }
        let prev = last_ts.entry(tid as u64).or_insert(0.0);
        if ts < *prev {
            return Err(format!("event {i}: ts regresses on tid {tid}"));
        }
        *prev = ts;
    }
    Ok(events.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Collector;

    fn sample() -> (TelemetryReport, Vec<TraceTask>) {
        let obs = Collector::new();
        {
            let _root = obs.span("pipeline");
            let _child = obs.span("stage_ii_parse");
        }
        let tasks = vec![
            TraceTask {
                label: "stage_iii_tag#1".into(),
                worker: 1,
                start_s: 0.002,
                end_s: 0.003,
            },
            TraceTask {
                label: "stage_iii_tag#0".into(),
                worker: 0,
                start_s: 0.001,
                end_s: 0.004,
            },
        ];
        (obs.report(), tasks)
    }

    #[test]
    fn events_carry_required_keys_and_validate() {
        let (report, tasks) = sample();
        let rendered = render_chrome_trace(&report, &tasks);
        let n = validate_chrome_trace(&rendered).expect("exporter output is valid");
        assert_eq!(n, 4); // 2 spans + 2 tasks
        let Value::Arr(events) = Value::parse(&rendered).unwrap() else {
            panic!("array")
        };
        for event in &events {
            let Value::Obj(fields) = event else { panic!("object") };
            let keys: Vec<&str> = fields.iter().map(|(k, _)| k.as_str()).collect();
            assert_eq!(keys, ["name", "ph", "ts", "dur", "pid", "tid"]);
        }
    }

    #[test]
    fn tasks_land_on_per_worker_tids_sorted_monotone() {
        let (report, tasks) = sample();
        let Value::Arr(events) = chrome_trace(&report, &tasks) else {
            panic!("array")
        };
        let tid_ts: Vec<(f64, f64)> = events
            .iter()
            .map(|e| {
                let Value::Obj(fields) = e else { panic!("object") };
                let num = |key: &str| match fields.iter().find(|(k, _)| k == key) {
                    Some((_, Value::Num(n))) => *n,
                    _ => panic!("missing {key}"),
                };
                (num("tid"), num("ts"))
            })
            .collect();
        // Workers 0 and 1 map to tids 1 and 2; spans sit on tid 0.
        let tids: Vec<f64> = tid_ts.iter().map(|(t, _)| *t).collect();
        assert_eq!(tids, [0.0, 0.0, 1.0, 2.0]);
        for pair in tid_ts.windows(2) {
            if pair[0].0 == pair[1].0 {
                assert!(pair[0].1 <= pair[1].1, "ts monotone within a tid");
            }
        }
    }

    #[test]
    fn validator_rejects_malformed_traces() {
        assert!(validate_chrome_trace("{}").is_err());
        assert!(validate_chrome_trace("[{\"name\":\"x\"}]").is_err());
        assert!(validate_chrome_trace(
            "[{\"name\":\"x\",\"ph\":\"B\",\"ts\":0,\"dur\":0,\"pid\":1,\"tid\":0}]"
        )
        .is_err());
        assert!(validate_chrome_trace(
            "[{\"name\":\"x\",\"ph\":\"X\",\"ts\":-1,\"dur\":0,\"pid\":1,\"tid\":0}]"
        )
        .is_err());
        assert_eq!(
            validate_chrome_trace(
                "[{\"name\":\"x\",\"ph\":\"X\",\"ts\":0,\"dur\":5,\"pid\":1,\"tid\":0}]"
            ),
            Ok(1)
        );
    }
}
