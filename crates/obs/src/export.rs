//! Exporters: plaintext span tree and JSON.

use crate::json::Value;
use crate::report::{FieldValue, SpanNode, TelemetryReport};
use std::fmt::Write as _;

impl TelemetryReport {
    /// Renders the human-readable telemetry view: the span tree with
    /// durations and fields, followed by counters, gauges, and
    /// histogram summaries.
    pub fn render_tree(&self) -> String {
        let mut out = String::new();
        out.push_str("== telemetry ==\n");
        for span in &self.spans {
            render_span(span, 0, &mut out);
        }
        if !self.counters.is_empty() {
            out.push_str("counters:\n");
            for (name, value) in &self.counters {
                let _ = writeln!(out, "  {name:<40} {value}");
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("gauges:\n");
            for (name, value) in &self.gauges {
                let _ = writeln!(out, "  {name:<40} {value:.6}");
            }
        }
        if !self.histograms.is_empty() {
            out.push_str("histograms:\n");
            for (name, h) in &self.histograms {
                let _ = writeln!(
                    out,
                    "  {name:<40} n={} mean={:.6} min={:.6} max={:.6}",
                    h.count, h.mean, h.min, h.max
                );
                let _ = writeln!(
                    out,
                    "  {blank:<40} p50={:.6} p95={:.6} p99={:.6}",
                    h.p50,
                    h.p95,
                    h.p99,
                    blank = ""
                );
            }
        }
        out
    }

    /// Renders the machine-readable JSON document (the
    /// `repro_metrics.json` format).
    pub fn to_json(&self) -> String {
        self.to_value().render()
    }

    /// The JSON document model behind [`TelemetryReport::to_json`].
    pub fn to_value(&self) -> Value {
        Value::Obj(vec![
            (
                "spans".to_owned(),
                Value::Arr(self.spans.iter().map(span_value).collect()),
            ),
            (
                "counters".to_owned(),
                Value::Obj(
                    self.counters
                        .iter()
                        .map(|(k, &v)| (k.clone(), Value::Num(v as f64)))
                        .collect(),
                ),
            ),
            (
                "gauges".to_owned(),
                Value::Obj(
                    self.gauges
                        .iter()
                        .map(|(k, &v)| (k.clone(), Value::num(v)))
                        .collect(),
                ),
            ),
            (
                "histograms".to_owned(),
                Value::Obj(
                    self.histograms
                        .iter()
                        .map(|(k, h)| {
                            (
                                k.clone(),
                                Value::Obj(vec![
                                    ("count".to_owned(), Value::Num(h.count as f64)),
                                    ("sum".to_owned(), Value::num(h.sum)),
                                    ("mean".to_owned(), Value::num(h.mean)),
                                    ("min".to_owned(), Value::num(h.min)),
                                    ("max".to_owned(), Value::num(h.max)),
                                    ("p50".to_owned(), Value::num(h.p50)),
                                    ("p95".to_owned(), Value::num(h.p95)),
                                    ("p99".to_owned(), Value::num(h.p99)),
                                    (
                                        "buckets".to_owned(),
                                        Value::Arr(
                                            h.buckets
                                                .iter()
                                                .map(|&(bound, count)| {
                                                    Value::Arr(vec![
                                                        Value::num(bound),
                                                        Value::Num(count as f64),
                                                    ])
                                                })
                                                .collect(),
                                        ),
                                    ),
                                ]),
                            )
                        })
                        .collect(),
                ),
            ),
            (
                "logs".to_owned(),
                Value::Arr(
                    self.logs
                        .iter()
                        .map(|l| {
                            Value::Obj(vec![
                                ("t_s".to_owned(), Value::num(l.t_s)),
                                (
                                    "level".to_owned(),
                                    Value::Str(
                                        match l.level {
                                            crate::report::LogLevel::Warn => "warn",
                                            crate::report::LogLevel::Info => "info",
                                            crate::report::LogLevel::Debug => "debug",
                                        }
                                        .to_owned(),
                                    ),
                                ),
                                ("message".to_owned(), Value::Str(l.message.clone())),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Renders the self-profiler's phase histograms as a folded-stack
    /// document (`frame;frame microseconds` lines) for speedscope or
    /// inferno — the profiling sibling of the Chrome-trace exporter.
    /// Empty when no phase was recorded.
    pub fn to_folded(&self) -> String {
        crate::profile::folded_stacks(self)
    }
}

fn span_value(span: &SpanNode) -> Value {
    let mut pairs = vec![
        ("name".to_owned(), Value::Str(span.name.clone())),
        ("start_s".to_owned(), Value::num(span.start_s)),
        ("duration_s".to_owned(), Value::num(span.duration_s)),
        ("closed".to_owned(), Value::Bool(span.closed)),
    ];
    if !span.fields.is_empty() {
        pairs.push((
            "fields".to_owned(),
            Value::Obj(
                span.fields
                    .iter()
                    .map(|(k, v)| (k.clone(), field_value(v)))
                    .collect(),
            ),
        ));
    }
    if !span.children.is_empty() {
        pairs.push((
            "children".to_owned(),
            Value::Arr(span.children.iter().map(span_value).collect()),
        ));
    }
    Value::Obj(pairs)
}

fn field_value(v: &FieldValue) -> Value {
    match v {
        FieldValue::U64(x) => Value::Num(*x as f64),
        FieldValue::I64(x) => Value::Num(*x as f64),
        FieldValue::F64(x) => Value::num(*x),
        FieldValue::Str(s) => Value::Str(s.clone()),
        FieldValue::Bool(b) => Value::Bool(*b),
    }
}

fn render_span(span: &SpanNode, depth: usize, out: &mut String) {
    let indent = "  ".repeat(depth);
    let _ = write!(
        out,
        "{indent}{name} {ms:.3} ms",
        name = span.name,
        ms = span.duration_s * 1e3
    );
    if !span.closed {
        out.push_str(" (open)");
    }
    for (key, value) in &span.fields {
        let _ = write!(out, " {key}={value}");
    }
    out.push('\n');
    for child in &span.children {
        render_span(child, depth + 1, out);
    }
}

#[cfg(test)]
mod tests {
    use crate::Collector;
    use crate::json::Value;

    fn sample_report() -> crate::TelemetryReport {
        let c = Collector::new();
        {
            let mut pipeline = c.span("pipeline");
            pipeline.field("scale", 1.0f64);
            {
                let mut s1 = c.span("stage_i_corpus");
                s1.field("records", 5328u64);
                c.add("corpus.disengagements", 5328);
            }
            {
                let _s2 = c.span("stage_ii_parse");
                c.add("parse.dis.parsed", 5320);
                c.add("parse.dis.failed", 8);
            }
            c.gauge("nlp.unknown_t_rate", 0.31);
            c.record("ocr.cer", 0.002);
            c.record("ocr.cer", 0.004);
            c.log("pipeline done");
        }
        c.report()
    }

    #[test]
    fn tree_renders_hierarchy_and_metrics() {
        let text = sample_report().render_tree();
        assert!(text.contains("pipeline"));
        assert!(text.contains("  stage_i_corpus"), "{text}");
        assert!(text.contains("records=5328"));
        assert!(text.contains("parse.dis.parsed"));
        assert!(text.contains("nlp.unknown_t_rate"));
        assert!(text.contains("ocr.cer"));
        // Each histogram surfaces its quantile triple on its own line.
        assert!(text.contains("p50="), "{text}");
        assert!(text.contains("p95="), "{text}");
        assert!(text.contains("p99="), "{text}");
    }

    #[test]
    fn json_parses_back_with_identical_structure() {
        let report = sample_report();
        let v = Value::parse(&report.to_json()).expect("exporter emits valid JSON");
        // Round-trip: the parsed document equals the document model.
        assert_eq!(v, report.to_value());
        // And the key navigation paths machine consumers rely on work.
        let spans = v.get("spans").unwrap().as_arr().unwrap();
        assert_eq!(spans[0].get("name").unwrap().as_str(), Some("pipeline"));
        let children = spans[0].get("children").unwrap().as_arr().unwrap();
        assert_eq!(children.len(), 2);
        assert_eq!(
            v.get("counters")
                .unwrap()
                .get("corpus.disengagements")
                .unwrap()
                .as_f64(),
            Some(5328.0)
        );
        let cer = v.get("histograms").unwrap().get("ocr.cer").unwrap();
        assert_eq!(cer.get("count").unwrap().as_f64(), Some(2.0));
        let logs = v.get("logs").unwrap().as_arr().unwrap();
        assert_eq!(
            logs[0].get("message").unwrap().as_str(),
            Some("pipeline done")
        );
    }

    #[test]
    fn json_handles_non_finite_gauges() {
        let c = Collector::new();
        c.gauge("bad", f64::INFINITY);
        let text = c.report().to_json();
        let v = Value::parse(&text).unwrap();
        assert_eq!(
            v.get("gauges").unwrap().get("bad").unwrap().as_str(),
            Some("inf")
        );
    }
}
