//! `disengage-obs` — the toolkit's observability substrate.
//!
//! The paper's contribution is a measurement *pipeline* (OCR → parse →
//! NLP tag → statistics); this crate makes the reproduction measurable
//! in the same spirit. It is dependency-free (std only) and built
//! around an explicit [`Collector`] — no global state, no macros:
//!
//! * **Spans** — named, hierarchical wall-clock timings with key/value
//!   fields ([`Collector::span`] returns a guard that closes the span
//!   on drop).
//! * **Counters / gauges** — monotonically accumulated `u64` counts
//!   ([`Collector::add`]) and last-write-wins `f64` values
//!   ([`Collector::gauge`]).
//! * **Histograms** — log-bucketed (1–2–5 per decade) distributions for
//!   durations, error rates, and vote margins
//!   ([`Collector::record`]).
//! * **Logs** — timestamped progress events ([`Collector::log`]),
//!   optionally echoed to stderr for CLI progress lines.
//!
//! A [`Collector::report`] snapshot ([`TelemetryReport`]) renders as a
//! plaintext span tree ([`TelemetryReport::render_tree`]) or as JSON
//! ([`TelemetryReport::to_json`]); [`json::Value::parse`] reads the
//! JSON back for machine consumers (the `repro` harness emits
//! `repro_metrics.json` this way).
//!
//! # Examples
//!
//! ```
//! use disengage_obs::Collector;
//!
//! let obs = Collector::new();
//! {
//!     let mut stage = obs.span("stage_i_corpus");
//!     stage.field("records", 5328u64);
//!     obs.add("corpus.disengagements", 5328);
//!     obs.record("ocr.cer", 0.004);
//! }
//! let report = obs.report();
//! assert_eq!(report.counter("corpus.disengagements"), 5328);
//! assert!(report.render_tree().contains("stage_i_corpus"));
//! ```

pub mod collector;
pub mod export;
pub mod flight;
pub mod health;
pub mod hist;
pub mod json;
pub mod profile;
pub mod prom;
pub mod provenance;
pub mod report;
pub mod trace;

pub use collector::{Collector, CollectorState, SpanGuard, SpanState};
pub use flight::{FlightDump, FlightEvent, FlightKind, FlightRing, FlightSnapshot, TaskLog};
pub use health::{HealthReport, HealthRule};
pub use hist::{Histogram, HistogramState, HistogramSummary};
pub use profile::{
    folded_stacks, validate_folded, CountingAlloc, PhaseRow, PoolRow, ProfileReport, StageRow,
};
pub use prom::{render_prometheus, validate_prometheus};
pub use provenance::{ProvenanceEntry, ProvenanceEvent, ProvenanceLog, RecordId, Subject};
pub use report::{FieldValue, LogEvent, LogLevel, SpanNode, TelemetryReport};
pub use trace::{chrome_trace, render_chrome_trace, validate_chrome_trace, TraceTask};

/// Normalizes a display name into a metric-key segment: lowercase,
/// with every non-alphanumeric run collapsed to one underscore
/// (`"Mercedes-Benz"` → `"mercedes_benz"`).
///
/// # Examples
///
/// ```
/// assert_eq!(disengage_obs::key_segment("Mercedes-Benz"), "mercedes_benz");
/// assert_eq!(disengage_obs::key_segment("Computer System"), "computer_system");
/// ```
pub fn key_segment(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for c in name.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c.to_ascii_lowercase());
        } else if !out.ends_with('_') && !out.is_empty() {
            out.push('_');
        }
    }
    out.trim_end_matches('_').to_owned()
}

#[cfg(test)]
mod key_tests {
    #[test]
    fn segments_normalize() {
        assert_eq!(super::key_segment("GM Cruise"), "gm_cruise");
        assert_eq!(super::key_segment("Unknown-T"), "unknown_t");
        assert_eq!(super::key_segment("--x--"), "x");
        assert_eq!(super::key_segment(""), "");
    }
}
