//! Per-record provenance: the causal chain behind every pipeline
//! decision.
//!
//! The aggregate telemetry in [`crate::collector`] answers *how many*
//! records were corrected, quarantined, or tagged; this module answers
//! *why this record* landed where it did. Every stage appends typed
//! [`ProvenanceEvent`]s about a [`Subject`] (a record, a document, a
//! document line, or the run as a whole) to a shared [`ProvenanceLog`].
//!
//! Determinism is the core contract: no event carries wall-clock data,
//! entry order is causal order, and parallel stages record into
//! per-task shards ([`ProvenanceLog::shard`]) folded back in task-index
//! order ([`ProvenanceLog::absorb`]) — the same discipline as
//! `Collector::shard`/`absorb` — so the serialized log
//! ([`ProvenanceLog::to_jsonl`]) is byte-identical at any `--jobs`
//! count, clean or under chaos.
//!
//! Records are addressed by a stable [`RecordId`] derived from report
//! content (manufacturer, report year, car, per-car ordinal), never
//! from a position in some intermediate vector.

use crate::json::Value;
use crate::key_segment;
use std::fmt;
use std::sync::Mutex;

/// Stable, content-derived identity of one disengagement record.
///
/// Rendered as `manufacturer/year/car/seq` (for example
/// `nissan/2016/car-3/0`): the corpus emits exactly one disengagement
/// document per (manufacturer, report year), so the per-car ordinal
/// `seq` within that document pins the record uniquely without
/// referencing any positional index that could shift under resharding.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RecordId {
    /// Manufacturer key segment (`"Mercedes-Benz"` → `"mercedes_benz"`).
    pub manufacturer: String,
    /// Report year of the filing (the paper's 2016/2017 releases).
    pub year: u16,
    /// Vehicle identity as reported (`car-3`, or `redacted`).
    pub car: String,
    /// Ordinal of this record among the car's records in the document.
    pub seq: u32,
}

impl RecordId {
    /// Builds an id, normalizing the manufacturer via [`key_segment`]
    /// and the car label to `[a-z0-9-]` (so `"[redacted]"` becomes
    /// `"redacted"`).
    pub fn new(manufacturer: &str, year: u16, car: &str, seq: u32) -> RecordId {
        let car: String = car
            .chars()
            .filter(|c| c.is_ascii_alphanumeric() || *c == '-')
            .map(|c| c.to_ascii_lowercase())
            .collect();
        RecordId {
            manufacturer: key_segment(manufacturer),
            year,
            car,
            seq,
        }
    }

    /// Parses the `manufacturer/year/car/seq` rendering back.
    pub fn parse(text: &str) -> Option<RecordId> {
        let parts: Vec<&str> = text.split('/').collect();
        let [manufacturer, year, car, seq] = parts.as_slice() else {
            return None;
        };
        Some(RecordId {
            manufacturer: (*manufacturer).to_owned(),
            year: year.parse().ok()?,
            car: (*car).to_owned(),
            seq: seq.parse().ok()?,
        })
    }
}

impl fmt::Display for RecordId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}/{}/{}", self.manufacturer, self.year, self.car, self.seq)
    }
}

/// What a provenance event is about.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Subject {
    /// The run as a whole (Stage IV degrade decisions).
    Run,
    /// A whole raw document, by corpus index.
    Document(usize),
    /// One line of a raw document (1-based, as parsers count).
    Line {
        /// Corpus index of the document.
        doc: usize,
        /// 1-based line number within the document.
        line: usize,
    },
    /// A normalized disengagement record.
    Record(RecordId),
}

impl Subject {
    /// Parses the [`Display`](fmt::Display) rendering back.
    pub fn parse(text: &str) -> Option<Subject> {
        if text == "run" {
            return Some(Subject::Run);
        }
        if let Some(rest) = text.strip_prefix("doc:") {
            if let Some((doc, line)) = rest.split_once("/line:") {
                return Some(Subject::Line {
                    doc: doc.parse().ok()?,
                    line: line.parse().ok()?,
                });
            }
            return Some(Subject::Document(rest.parse().ok()?));
        }
        RecordId::parse(text).map(Subject::Record)
    }
}

impl fmt::Display for Subject {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Subject::Run => write!(f, "run"),
            Subject::Document(doc) => write!(f, "doc:{doc}"),
            Subject::Line { doc, line } => write!(f, "doc:{doc}/line:{line}"),
            Subject::Record(id) => write!(f, "{id}"),
        }
    }
}

/// One typed decision made by a pipeline stage.
#[derive(Debug, Clone, PartialEq)]
pub enum ProvenanceEvent {
    /// The OCR repair ladder rewrote one token.
    OcrRepair {
        /// 1-based line the token sits on.
        line: usize,
        /// Token as digitized.
        before: String,
        /// Token after dictionary correction.
        after: String,
        /// Ladder attempt that fixed it (1 = distance 1, 2+ = distance 2).
        attempt: u32,
    },
    /// The chaos layer injected a fault into a line.
    FaultInjected {
        /// Fault kind name (for example `char_noise`).
        kind: String,
        /// 1-based line the fault landed on.
        line: usize,
    },
    /// The chaos audit classified an injected fault's fate.
    FaultOutcome {
        /// Fault kind name.
        kind: String,
        /// 1-based line the fault landed on.
        line: usize,
        /// `corrected`, `quarantined`, or `absorbed`.
        outcome: String,
    },
    /// Stage II accepted a line as a normalized record.
    Normalized {
        /// Corpus index of the source document.
        doc: usize,
        /// 1-based source line.
        line: usize,
        /// Short record summary (car, date, modality).
        summary: String,
    },
    /// A stage rejected its input.
    Quarantined {
        /// Stage that rejected (for example `stage_ii_parse`).
        stage: String,
        /// Human-readable reason.
        reason: String,
    },
    /// One dictionary tag's vote tally in Stage III (score > 0 only).
    DictVote {
        /// Candidate fault tag.
        tag: String,
        /// STPA failure category of the tag.
        category: String,
        /// Keyword + phrase score.
        score: f64,
        /// Keywords that hit.
        keywords: Vec<String>,
    },
    /// Stage III's final tag decision for a record.
    Tagged {
        /// Winning fault tag.
        tag: String,
        /// STPA failure category.
        category: String,
        /// Winning score.
        score: f64,
        /// Margin over the runner-up.
        margin: f64,
        /// Whether another tag tied the winning score.
        ambiguous: bool,
    },
    /// Stage IV degraded an analysis artifact instead of failing.
    Degraded {
        /// Artifact name (for example `table4`).
        artifact: String,
        /// Why the full computation was unavailable.
        reason: String,
    },
}

impl ProvenanceEvent {
    /// Snake-case event name used in the JSONL export.
    pub fn kind(&self) -> &'static str {
        match self {
            ProvenanceEvent::OcrRepair { .. } => "ocr_repair",
            ProvenanceEvent::FaultInjected { .. } => "fault_injected",
            ProvenanceEvent::FaultOutcome { .. } => "fault_outcome",
            ProvenanceEvent::Normalized { .. } => "normalized",
            ProvenanceEvent::Quarantined { .. } => "quarantined",
            ProvenanceEvent::DictVote { .. } => "dict_vote",
            ProvenanceEvent::Tagged { .. } => "tagged",
            ProvenanceEvent::Degraded { .. } => "degraded",
        }
    }

    /// The Fig. 1 pipeline stage that emitted this event.
    pub fn stage(&self) -> &str {
        match self {
            ProvenanceEvent::OcrRepair { .. } => "stage_i_ocr",
            ProvenanceEvent::FaultInjected { .. } | ProvenanceEvent::FaultOutcome { .. } => {
                "chaos"
            }
            ProvenanceEvent::Normalized { .. } => "stage_ii_parse",
            ProvenanceEvent::Quarantined { stage, .. } => stage,
            ProvenanceEvent::DictVote { .. } | ProvenanceEvent::Tagged { .. } => "stage_iii_tag",
            ProvenanceEvent::Degraded { .. } => "stage_iv",
        }
    }

    /// One-line human rendering for `disengage explain`.
    pub fn describe(&self) -> String {
        match self {
            ProvenanceEvent::OcrRepair {
                line,
                before,
                after,
                attempt,
            } => format!("repaired \"{before}\" -> \"{after}\" (line {line}, attempt {attempt})"),
            ProvenanceEvent::FaultInjected { kind, line } => {
                format!("injected {kind} (line {line})")
            }
            ProvenanceEvent::FaultOutcome {
                kind,
                line,
                outcome,
            } => format!("{kind} (line {line}) -> {outcome}"),
            ProvenanceEvent::Normalized { doc, line, summary } => {
                format!("normalized from doc {doc} line {line}: {summary}")
            }
            ProvenanceEvent::Quarantined { stage, reason } => {
                format!("quarantined by {stage}: {reason}")
            }
            ProvenanceEvent::DictVote {
                tag,
                category,
                score,
                keywords,
            } => format!("vote {tag} ({category}) score {score}: {}", keywords.join(", ")),
            ProvenanceEvent::Tagged {
                tag,
                category,
                score,
                margin,
                ambiguous,
            } => {
                let note = if *ambiguous { " [ambiguous]" } else { "" };
                format!("tagged {tag} ({category}) score {score} margin {margin}{note}")
            }
            ProvenanceEvent::Degraded { artifact, reason } => {
                format!("degraded {artifact}: {reason}")
            }
        }
    }

    fn push_fields(&self, obj: &mut Vec<(String, Value)>) {
        let s = |v: &str| Value::Str(v.to_owned());
        let n = |v: usize| Value::Num(v as f64);
        match self {
            ProvenanceEvent::OcrRepair {
                line,
                before,
                after,
                attempt,
            } => {
                obj.push(("line".into(), n(*line)));
                obj.push(("before".into(), s(before)));
                obj.push(("after".into(), s(after)));
                obj.push(("attempt".into(), Value::Num(f64::from(*attempt))));
            }
            ProvenanceEvent::FaultInjected { kind, line } => {
                obj.push(("kind".into(), s(kind)));
                obj.push(("line".into(), n(*line)));
            }
            ProvenanceEvent::FaultOutcome {
                kind,
                line,
                outcome,
            } => {
                obj.push(("kind".into(), s(kind)));
                obj.push(("line".into(), n(*line)));
                obj.push(("outcome".into(), s(outcome)));
            }
            ProvenanceEvent::Normalized { doc, line, summary } => {
                obj.push(("doc".into(), n(*doc)));
                obj.push(("line".into(), n(*line)));
                obj.push(("summary".into(), s(summary)));
            }
            ProvenanceEvent::Quarantined { reason, .. } => {
                obj.push(("reason".into(), s(reason)));
            }
            ProvenanceEvent::DictVote {
                tag,
                category,
                score,
                keywords,
            } => {
                obj.push(("tag".into(), s(tag)));
                obj.push(("category".into(), s(category)));
                obj.push(("score".into(), Value::num(*score)));
                obj.push((
                    "keywords".into(),
                    Value::Arr(keywords.iter().map(|k| s(k)).collect()),
                ));
            }
            ProvenanceEvent::Tagged {
                tag,
                category,
                score,
                margin,
                ambiguous,
            } => {
                obj.push(("tag".into(), s(tag)));
                obj.push(("category".into(), s(category)));
                obj.push(("score".into(), Value::num(*score)));
                obj.push(("margin".into(), Value::num(*margin)));
                obj.push(("ambiguous".into(), Value::Bool(*ambiguous)));
            }
            ProvenanceEvent::Degraded { artifact, reason } => {
                obj.push(("artifact".into(), s(artifact)));
                obj.push(("reason".into(), s(reason)));
            }
        }
    }
}

/// One log entry: an event about a subject.
#[derive(Debug, Clone, PartialEq)]
pub struct ProvenanceEntry {
    /// What the event is about.
    pub subject: Subject,
    /// What happened.
    pub event: ProvenanceEvent,
}

impl ProvenanceEntry {
    /// Order-stable JSON object: `subject`, `stage`, `event`, then the
    /// event's own fields. Deliberately wall-clock-free.
    pub fn to_value(&self) -> Value {
        let mut obj = vec![
            ("subject".to_owned(), Value::Str(self.subject.to_string())),
            ("stage".to_owned(), Value::Str(self.event.stage().to_owned())),
            ("event".to_owned(), Value::Str(self.event.kind().to_owned())),
        ];
        self.event.push_fields(&mut obj);
        Value::Obj(obj)
    }
}

/// Append-only, thread-safe provenance log.
///
/// Sequential stages push directly; parallel stages record into
/// per-task [`ProvenanceLog::shard`]s absorbed in task-index order so
/// the final entry sequence is independent of the worker count.
#[derive(Debug)]
pub struct ProvenanceLog {
    enabled: bool,
    inner: Mutex<Vec<ProvenanceEntry>>,
}

impl Default for ProvenanceLog {
    fn default() -> Self {
        ProvenanceLog::new()
    }
}

impl ProvenanceLog {
    /// An empty, recording log.
    pub fn new() -> ProvenanceLog {
        ProvenanceLog {
            enabled: true,
            inner: Mutex::new(Vec::new()),
        }
    }

    /// A log that ignores every push — the zero-overhead default for
    /// runs that did not ask for lineage.
    pub fn disabled() -> ProvenanceLog {
        ProvenanceLog {
            enabled: false,
            inner: Mutex::new(Vec::new()),
        }
    }

    /// Whether pushes are recorded. Stages may use this to skip
    /// building event payloads entirely.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Vec<ProvenanceEntry>> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Appends one event (no-op when disabled).
    pub fn push(&self, subject: Subject, event: ProvenanceEvent) {
        if self.enabled {
            self.lock().push(ProvenanceEntry { subject, event });
        }
    }

    /// An empty shard with this log's enablement — what a parallel
    /// worker records into. Fold back with [`ProvenanceLog::absorb`]
    /// in task-index order.
    pub fn shard(&self) -> ProvenanceLog {
        if self.enabled {
            ProvenanceLog::new()
        } else {
            ProvenanceLog::disabled()
        }
    }

    /// Appends a shard's entries in their recorded order.
    pub fn absorb(&self, shard: ProvenanceLog) {
        if !self.enabled {
            return;
        }
        let entries = shard.inner.into_inner().unwrap_or_else(|e| e.into_inner());
        self.lock().extend(entries);
    }

    /// Snapshot of every entry in causal order.
    pub fn entries(&self) -> Vec<ProvenanceEntry> {
        self.lock().clone()
    }

    /// Number of entries recorded so far.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }

    /// Serializes the log as JSON Lines: one stable-field-order object
    /// per entry, no timestamps — byte-identical at any worker count.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for entry in self.lock().iter() {
            out.push_str(&entry.to_value().render());
            out.push('\n');
        }
        out
    }

    /// Every distinct record id, in first-appearance order.
    pub fn record_ids(&self) -> Vec<RecordId> {
        let mut seen = std::collections::BTreeSet::new();
        let mut out = Vec::new();
        for entry in self.lock().iter() {
            if let Subject::Record(id) = &entry.subject {
                if seen.insert(id.clone()) {
                    out.push(id.clone());
                }
            }
        }
        out
    }

    /// Exemplar subjects for the CLI's no-target `explain` listing:
    /// `(label, subject)` pairs covering a corrected record, a
    /// quarantined line, and a cleanly tagged record when present.
    pub fn exemplars(&self) -> Vec<(&'static str, String)> {
        let entries = self.lock();
        // Map each (doc, line) to whether the line saw a repair/fault.
        let mut touched = std::collections::BTreeSet::new();
        for e in entries.iter() {
            if let Subject::Line { doc, line } = e.subject {
                if matches!(
                    e.event,
                    ProvenanceEvent::OcrRepair { .. }
                        | ProvenanceEvent::FaultInjected { .. }
                        | ProvenanceEvent::FaultOutcome { .. }
                ) {
                    touched.insert((doc, line));
                }
            }
        }
        let mut corrected = None;
        let mut clean = None;
        let mut quarantined = None;
        for e in entries.iter() {
            match (&e.subject, &e.event) {
                (Subject::Record(id), ProvenanceEvent::Normalized { doc, line, .. }) => {
                    let slot = if touched.contains(&(*doc, *line)) {
                        &mut corrected
                    } else {
                        &mut clean
                    };
                    if slot.is_none() {
                        *slot = Some(id.to_string());
                    }
                }
                (subject @ Subject::Line { .. }, ProvenanceEvent::Quarantined { .. }) => {
                    if quarantined.is_none() {
                        quarantined = Some(subject.to_string());
                    }
                }
                _ => {}
            }
        }
        let mut out = Vec::new();
        if let Some(s) = corrected {
            out.push(("corrected", s));
        }
        if let Some(s) = quarantined {
            out.push(("quarantined", s));
        }
        if let Some(s) = clean {
            out.push(("clean", s));
        }
        out
    }

    /// Renders the causal chain for a subject as a stage-grouped tree,
    /// or `None` when the subject has no lineage.
    ///
    /// For a record, the chain also pulls in the events of its source
    /// line and document (OCR repairs, injected faults) discovered via
    /// the record's `normalized` event; for a line, the owning
    /// document's events are included.
    pub fn explain(&self, target: &str) -> Option<String> {
        let target = target.trim();
        let entries = self.lock();
        let mut keys: Vec<String> = vec![target.to_owned()];
        // Expand record -> source line/document, line -> document.
        for e in entries.iter() {
            if e.subject.to_string() == target {
                if let ProvenanceEvent::Normalized { doc, line, .. } = e.event {
                    keys.push(Subject::Line { doc, line }.to_string());
                    keys.push(Subject::Document(doc).to_string());
                }
            }
        }
        if let Some(Subject::Line { doc, .. }) = Subject::parse(target) {
            keys.push(Subject::Document(doc).to_string());
        }
        let selected: Vec<&ProvenanceEntry> = entries
            .iter()
            .filter(|e| keys.contains(&e.subject.to_string()))
            .collect();
        if selected.is_empty() || !selected.iter().any(|e| e.subject.to_string() == target) {
            return None;
        }
        // Group by stage in pipeline order; entry order within a stage
        // is preserved.
        const STAGE_ORDER: [&str; 5] = [
            "stage_i_ocr",
            "chaos",
            "stage_ii_parse",
            "stage_iii_tag",
            "stage_iv",
        ];
        let mut groups: Vec<(&str, Vec<&ProvenanceEntry>)> = Vec::new();
        for stage in STAGE_ORDER {
            let in_stage: Vec<&ProvenanceEntry> = selected
                .iter()
                .filter(|e| e.event.stage() == stage)
                .copied()
                .collect();
            if !in_stage.is_empty() {
                groups.push((stage, in_stage));
            }
        }
        // Any stage outside the canonical five (future extensions).
        let extra: Vec<&ProvenanceEntry> = selected
            .iter()
            .filter(|e| !STAGE_ORDER.contains(&e.event.stage()))
            .copied()
            .collect();
        if !extra.is_empty() {
            groups.push(("other", extra));
        }
        let mut out = String::new();
        out.push_str(target);
        out.push('\n');
        for (gi, (stage, events)) in groups.iter().enumerate() {
            let last_group = gi + 1 == groups.len();
            let (elbow, bar) = if last_group {
                ("└─ ", "   ")
            } else {
                ("├─ ", "│  ")
            };
            out.push_str(elbow);
            out.push_str(stage);
            out.push('\n');
            for (ei, entry) in events.iter().enumerate() {
                let leaf = if ei + 1 == events.len() {
                    "└─ "
                } else {
                    "├─ "
                };
                out.push_str(bar);
                out.push_str(leaf);
                out.push_str(&entry.event.describe());
                out.push('\n');
            }
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id() -> RecordId {
        RecordId::new("Mercedes-Benz", 2016, "car-3", 7)
    }

    #[test]
    fn record_id_round_trips() {
        let id = id();
        assert_eq!(id.to_string(), "mercedes_benz/2016/car-3/7");
        assert_eq!(RecordId::parse(&id.to_string()), Some(id));
        assert_eq!(
            RecordId::new("Nissan", 2015, "[redacted]", 0).to_string(),
            "nissan/2015/redacted/0"
        );
        assert_eq!(RecordId::parse("no-slashes"), None);
    }

    #[test]
    fn subject_round_trips() {
        for subject in [
            Subject::Run,
            Subject::Document(4),
            Subject::Line { doc: 4, line: 17 },
            Subject::Record(id()),
        ] {
            assert_eq!(Subject::parse(&subject.to_string()), Some(subject));
        }
        assert_eq!(Subject::parse("doc:x"), None);
    }

    #[test]
    fn disabled_log_records_nothing() {
        let log = ProvenanceLog::disabled();
        log.push(
            Subject::Run,
            ProvenanceEvent::Degraded {
                artifact: "table4".into(),
                reason: "empty".into(),
            },
        );
        let shard = log.shard();
        assert!(!shard.is_enabled());
        shard.push(Subject::Document(0), quarantine("x"));
        log.absorb(shard);
        assert!(log.is_empty());
        assert_eq!(log.to_jsonl(), "");
    }

    fn quarantine(reason: &str) -> ProvenanceEvent {
        ProvenanceEvent::Quarantined {
            stage: "stage_ii_parse".into(),
            reason: reason.into(),
        }
    }

    #[test]
    fn shard_absorb_in_order_matches_direct() {
        let direct = ProvenanceLog::new();
        let sharded = ProvenanceLog::new();
        let mut shards = Vec::new();
        for i in 0..10 {
            let e = quarantine(&format!("reason {i}"));
            direct.push(Subject::Document(i), e.clone());
            let shard = sharded.shard();
            shard.push(Subject::Document(i), e);
            shards.push(shard);
        }
        for shard in shards {
            sharded.absorb(shard);
        }
        assert_eq!(direct.entries(), sharded.entries());
        assert_eq!(direct.to_jsonl(), sharded.to_jsonl());
    }

    #[test]
    fn jsonl_is_stable_order_and_parseable() {
        let log = ProvenanceLog::new();
        log.push(
            Subject::Record(id()),
            ProvenanceEvent::Tagged {
                tag: "planner".into(),
                category: "ml_design".into(),
                score: 4.0,
                margin: 3.0,
                ambiguous: false,
            },
        );
        log.push(
            Subject::Line { doc: 2, line: 9 },
            ProvenanceEvent::OcrRepair {
                line: 9,
                before: "disengag3".into(),
                after: "disengage".into(),
                attempt: 1,
            },
        );
        let jsonl = log.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in &lines {
            let value = Value::parse(line).expect("valid JSON");
            let Value::Obj(fields) = value else {
                panic!("entry must be an object")
            };
            assert_eq!(fields[0].0, "subject");
            assert_eq!(fields[1].0, "stage");
            assert_eq!(fields[2].0, "event");
        }
        assert!(lines[0].contains("\"event\":\"tagged\""));
        assert!(lines[1].contains("\"before\":\"disengag3\""));
        assert!(!jsonl.contains("\"ts\""), "lineage must be wall-clock-free");
    }

    #[test]
    fn explain_groups_stages_and_joins_record_to_line() {
        let log = ProvenanceLog::new();
        let rid = id();
        log.push(
            Subject::Line { doc: 4, line: 17 },
            ProvenanceEvent::OcrRepair {
                line: 17,
                before: "str3et".into(),
                after: "street".into(),
                attempt: 1,
            },
        );
        log.push(
            Subject::Line { doc: 4, line: 17 },
            ProvenanceEvent::FaultInjected {
                kind: "char_noise".into(),
                line: 17,
            },
        );
        log.push(
            Subject::Record(rid.clone()),
            ProvenanceEvent::Normalized {
                doc: 4,
                line: 17,
                summary: "car-3 2016-03-14 auto".into(),
            },
        );
        log.push(
            Subject::Record(rid.clone()),
            ProvenanceEvent::Tagged {
                tag: "planner".into(),
                category: "ml_design".into(),
                score: 4.0,
                margin: 3.0,
                ambiguous: false,
            },
        );
        let tree = log.explain(&rid.to_string()).expect("record has lineage");
        // Stage groups appear in pipeline order and include the source
        // line's events discovered through the normalized event.
        let i_ocr = tree.find("stage_i_ocr").unwrap();
        let i_chaos = tree.find("chaos").unwrap();
        let i_parse = tree.find("stage_ii_parse").unwrap();
        let i_tag = tree.find("stage_iii_tag").unwrap();
        assert!(i_ocr < i_chaos && i_chaos < i_parse && i_parse < i_tag);
        assert!(tree.contains("repaired \"str3et\" -> \"street\""));
        assert!(tree.contains("tagged planner (ml_design)"));
        assert!(log.explain("nobody/2000/car-0/0").is_none());
    }

    #[test]
    fn exemplars_cover_corrected_quarantined_clean() {
        let log = ProvenanceLog::new();
        log.push(
            Subject::Line { doc: 0, line: 3 },
            ProvenanceEvent::OcrRepair {
                line: 3,
                before: "a".into(),
                after: "b".into(),
                attempt: 1,
            },
        );
        let fixed = RecordId::new("Nissan", 2015, "car-0", 0);
        log.push(
            Subject::Record(fixed.clone()),
            ProvenanceEvent::Normalized {
                doc: 0,
                line: 3,
                summary: "x".into(),
            },
        );
        log.push(Subject::Line { doc: 0, line: 9 }, quarantine("bad row"));
        let clean = RecordId::new("Waymo", 2015, "car-1", 0);
        log.push(
            Subject::Record(clean.clone()),
            ProvenanceEvent::Normalized {
                doc: 0,
                line: 4,
                summary: "y".into(),
            },
        );
        let exemplars = log.exemplars();
        assert_eq!(
            exemplars,
            vec![
                ("corrected", fixed.to_string()),
                ("quarantined", "doc:0/line:9".to_owned()),
                ("clean", clean.to_string()),
            ]
        );
    }
}
