//! Telemetry snapshots: the immutable view a [`crate::Collector`]
//! exports.

use crate::hist::HistogramSummary;
use std::collections::BTreeMap;
use std::fmt;

/// A span field value.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// An unsigned count.
    U64(u64),
    /// A signed value.
    I64(i64),
    /// A float.
    F64(f64),
    /// Free text.
    Str(String),
    /// A flag.
    Bool(bool),
}

impl fmt::Display for FieldValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FieldValue::U64(x) => write!(f, "{x}"),
            FieldValue::I64(x) => write!(f, "{x}"),
            FieldValue::F64(x) => write!(f, "{x}"),
            FieldValue::Str(s) => write!(f, "{s}"),
            FieldValue::Bool(b) => write!(f, "{b}"),
        }
    }
}

macro_rules! impl_from_field {
    ($($t:ty => $variant:ident via $conv:ty),*) => {$(
        impl From<$t> for FieldValue {
            fn from(x: $t) -> FieldValue {
                FieldValue::$variant(x as $conv)
            }
        }
    )*};
}

impl_from_field!(u64 => U64 via u64, u32 => U64 via u64, usize => U64 via u64,
                 i64 => I64 via i64, i32 => I64 via i64,
                 f64 => F64 via f64, f32 => F64 via f64);

impl From<bool> for FieldValue {
    fn from(b: bool) -> FieldValue {
        FieldValue::Bool(b)
    }
}

impl From<&str> for FieldValue {
    fn from(s: &str) -> FieldValue {
        FieldValue::Str(s.to_owned())
    }
}

impl From<String> for FieldValue {
    fn from(s: String) -> FieldValue {
        FieldValue::Str(s)
    }
}

/// One closed (or still-open) span in the exported tree.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanNode {
    /// Span name.
    pub name: String,
    /// Start offset from the collector's epoch, in seconds.
    pub start_s: f64,
    /// Wall-clock duration in seconds (time-to-snapshot for spans still
    /// open when the report was taken).
    pub duration_s: f64,
    /// Whether the span had closed by snapshot time.
    pub closed: bool,
    /// Key/value annotations, in insertion order.
    pub fields: Vec<(String, FieldValue)>,
    /// Child spans, in start order.
    pub children: Vec<SpanNode>,
}

/// Log severity, most severe first. The `DISENGAGE_LOG` env filter
/// (see [`crate::Collector::log`]) gates only the stderr echo;
/// recording is unconditional so reports and flight dumps never
/// depend on the environment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LogLevel {
    /// Something degraded or was recovered from.
    Warn,
    /// Normal progress (the default echo level).
    Info,
    /// Chatty diagnostics, off by default.
    Debug,
}

/// A timestamped log event.
#[derive(Debug, Clone, PartialEq)]
pub struct LogEvent {
    /// Offset from the collector's epoch, in seconds.
    pub t_s: f64,
    /// Severity.
    pub level: LogLevel,
    /// Message text.
    pub message: String,
}

/// An immutable telemetry snapshot: the span forest plus all
/// accumulated metrics.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TelemetryReport {
    /// Root spans in start order.
    pub spans: Vec<SpanNode>,
    /// Monotonic counters.
    pub counters: BTreeMap<String, u64>,
    /// Last-write-wins gauges.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram summaries.
    pub histograms: BTreeMap<String, HistogramSummary>,
    /// Log events in time order.
    pub logs: Vec<LogEvent>,
}

impl TelemetryReport {
    /// A counter's value (0 when never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// A gauge's value, if set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// A histogram's summary, if any sample was recorded.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSummary> {
        self.histograms.get(name)
    }

    /// Sum of all counters whose name starts with `prefix` — the
    /// reconciliation primitive (`tagged == Σ nlp.tag.*`).
    pub fn counter_prefix_sum(&self, prefix: &str) -> u64 {
        self.counters
            .iter()
            .filter(|(k, _)| k.starts_with(prefix))
            .map(|(_, &v)| v)
            .sum()
    }

    /// The canonical form for byte-for-byte comparison: every
    /// wall-clock field (span start/duration) zeroed, log events
    /// dropped, every `cache.*` and `lock.*` counter dropped, and the
    /// `profile.*` and `obs.overhead.*` namespaces (counters, gauges,
    /// histograms) dropped, all other structure and metrics kept.
    ///
    /// Two runs of the same deterministic workload differ only in
    /// timing and in where their inputs came from — a cold run counts
    /// `cache.miss`, a warm run `cache.hit`, for identical results.
    /// Both are environment facts, not workload facts, so the
    /// canonical report excludes them; the `repro
    /// --telemetry=stable-json` / `scripts/verify.sh` contract is that
    /// warm, cold, and any `--jobs` all serialize identically. The
    /// self-profiler's `profile.*` metrics (phase timers, throughput,
    /// memory gauges — see [`crate::profile`]) are wall-clock-derived
    /// by construction, so the whole namespace goes the same way. The
    /// store's `lock.*` contention/reclaim ledger depends on which
    /// peers happened to be racing — the textbook environment fact —
    /// and is dropped with `cache.*`. Log events go entirely: their
    /// timestamps are wall clock and their *presence* can be
    /// environment-dependent (a warm run logs different progress than
    /// a cold one), so the canonical report keeps none. The
    /// `obs.overhead.*` gauges measure recording time itself —
    /// wall-clock-derived by definition — and are dropped with
    /// `profile.*`.
    #[must_use]
    pub fn canonical(mut self) -> TelemetryReport {
        fn strip(node: &mut SpanNode) {
            node.start_s = 0.0;
            node.duration_s = 0.0;
            for child in &mut node.children {
                strip(child);
            }
        }
        for span in &mut self.spans {
            strip(span);
        }
        self.logs.clear();
        let keep = |k: &String| {
            !k.starts_with(crate::profile::PROFILE_PREFIX) && !k.starts_with("obs.overhead.")
        };
        self.counters
            .retain(|k, _| !k.starts_with("cache.") && !k.starts_with("lock.") && keep(k));
        self.gauges.retain(|k, _| keep(k));
        self.histograms.retain(|k, _| keep(k));
        self
    }

    /// Depth-first search for a span by name anywhere in the forest.
    pub fn find_span(&self, name: &str) -> Option<&SpanNode> {
        fn walk<'a>(nodes: &'a [SpanNode], name: &str) -> Option<&'a SpanNode> {
            for n in nodes {
                if n.name == name {
                    return Some(n);
                }
                if let Some(hit) = walk(&n.children, name) {
                    return Some(hit);
                }
            }
            None
        }
        walk(&self.spans, name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaf(name: &str) -> SpanNode {
        SpanNode {
            name: name.to_owned(),
            start_s: 0.0,
            duration_s: 0.1,
            closed: true,
            fields: Vec::new(),
            children: Vec::new(),
        }
    }

    #[test]
    fn counter_defaults_to_zero() {
        let r = TelemetryReport::default();
        assert_eq!(r.counter("nope"), 0);
        assert_eq!(r.gauge("nope"), None);
    }

    #[test]
    fn prefix_sum() {
        let mut r = TelemetryReport::default();
        r.counters.insert("nlp.tag.planner".to_owned(), 3);
        r.counters.insert("nlp.tag.software".to_owned(), 2);
        r.counters.insert("nlp.tagged".to_owned(), 5);
        assert_eq!(r.counter_prefix_sum("nlp.tag."), 5);
    }

    #[test]
    fn find_span_recurses() {
        let mut root = leaf("pipeline");
        root.children.push(leaf("stage_ii_parse"));
        let r = TelemetryReport {
            spans: vec![root],
            ..Default::default()
        };
        assert!(r.find_span("stage_ii_parse").is_some());
        assert!(r.find_span("missing").is_none());
    }

    #[test]
    fn canonical_zeroes_wall_clock_only() {
        let mut root = leaf("pipeline");
        root.start_s = 0.5;
        root.children.push(leaf("stage_ii_parse"));
        let mut r = TelemetryReport {
            spans: vec![root],
            ..Default::default()
        };
        r.counters.insert("parse.dis.parsed".to_owned(), 9);
        r.counters.insert("cache.hit.corpus".to_owned(), 1);
        r.counters.insert("lock.contended".to_owned(), 2);
        r.logs.push(LogEvent {
            t_s: 1.25,
            level: LogLevel::Info,
            message: "done".to_owned(),
        });
        let c = r.clone().canonical();
        // Cache and lock traffic are environment facts, not workload
        // facts.
        assert_eq!(c.counter("cache.hit.corpus"), 0);
        assert_eq!(c.counter("lock.contended"), 0);
        assert_eq!(c.spans[0].start_s, 0.0);
        assert_eq!(c.spans[0].duration_s, 0.0);
        assert_eq!(c.spans[0].children[0].duration_s, 0.0);
        // Log events are wall clock through and through: gone.
        assert!(c.logs.is_empty());
        // Structure and metrics survive.
        assert_eq!(c.spans[0].children[0].name, "stage_ii_parse");
        assert_eq!(c.counter("parse.dis.parsed"), 9);
        // Idempotent.
        assert_eq!(c.clone().canonical(), c);
    }

    #[test]
    fn canonical_drops_the_profile_namespace() {
        use crate::hist::Histogram;
        let mut r = TelemetryReport::default();
        r.counters.insert("profile.anything".to_owned(), 1);
        r.counters.insert("ocr.documents".to_owned(), 4);
        r.gauges.insert("profile.mem.peak_rss_bytes".to_owned(), 1e6);
        r.gauges.insert("obs.overhead.frac".to_owned(), 0.003);
        r.gauges.insert("ocr.mean_cer".to_owned(), 0.01);
        let mut h = Histogram::new();
        h.record(0.25);
        r.histograms
            .insert("profile.wall;digitize".to_owned(), h.summary());
        r.histograms.insert("ocr.cer".to_owned(), h.summary());
        let c = r.canonical();
        assert!(c.counters.keys().all(|k| !k.starts_with("profile.")));
        assert!(c.gauges.keys().all(|k| !k.starts_with("profile.")));
        assert!(c.histograms.keys().all(|k| !k.starts_with("profile.")));
        // Recording-overhead gauges are wall-clock-derived too.
        assert_eq!(c.gauge("obs.overhead.frac"), None);
        // Non-profile metrics survive untouched.
        assert_eq!(c.counter("ocr.documents"), 4);
        assert_eq!(c.gauge("ocr.mean_cer"), Some(0.01));
        assert!(c.histogram("ocr.cer").is_some());
    }

    #[test]
    fn field_value_display_and_from() {
        assert_eq!(FieldValue::from(3u64).to_string(), "3");
        assert_eq!(FieldValue::from(2.5f64).to_string(), "2.5");
        assert_eq!(FieldValue::from("x").to_string(), "x");
        assert_eq!(FieldValue::from(true).to_string(), "true");
        assert_eq!(FieldValue::from(7usize), FieldValue::U64(7));
    }
}
