//! Log-bucketed histograms.
//!
//! The bucketing mirrors the 1–2–5-per-decade scheme measurement tools
//! conventionally use (and `disengage-stats` uses for its plot
//! histograms): upper bounds 1·10ᵏ, 2·10ᵏ, 5·10ᵏ for k in −9..=9, with
//! an overflow bucket above. That covers nanosecond-scale durations
//! through ~10⁹-scale mile counts in 58 fixed buckets, so recording is
//! allocation-free after construction.

/// Smallest decade exponent covered by the fixed buckets.
const MIN_EXP: i32 = -9;
/// Largest decade exponent covered by the fixed buckets.
const MAX_EXP: i32 = 9;
/// Mantissa steps per decade.
const STEPS: [f64; 3] = [1.0, 2.0, 5.0];
/// Total bucket count: 3 per decade plus the overflow bucket.
const N_BUCKETS: usize = ((MAX_EXP - MIN_EXP + 1) as usize) * STEPS.len() + 1;

/// The upper bound of bucket `i` (`f64::INFINITY` for the overflow
/// bucket).
fn bucket_bound(i: usize) -> f64 {
    if i + 1 >= N_BUCKETS {
        return f64::INFINITY;
    }
    let exp = MIN_EXP + (i / STEPS.len()) as i32;
    STEPS[i % STEPS.len()] * 10f64.powi(exp)
}

/// Index of the first bucket whose upper bound is ≥ `x`.
fn bucket_index(x: f64) -> usize {
    if !x.is_finite() {
        return N_BUCKETS - 1;
    }
    for i in 0..N_BUCKETS - 1 {
        if x <= bucket_bound(i) {
            return i;
        }
    }
    N_BUCKETS - 1
}

/// An accumulating log-bucketed histogram over non-negative-ish `f64`
/// samples (negative samples land in the smallest bucket; the pipeline
/// records durations, rates, and scores, all non-negative).
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    counts: Vec<u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            counts: vec![0; N_BUCKETS],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, x: f64) {
        self.counts[bucket_index(x)] += 1;
        self.count += 1;
        self.sum += x;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Folds another histogram into this one, as if `other`'s samples
    /// had been recorded here after this histogram's own.
    ///
    /// Bucket counts and totals add; extremes take the elementwise
    /// min/max. The `sum` accumulates left-to-right (`self.sum +
    /// other.sum`), so merging per-item shards in item order reproduces
    /// the sequential accumulation bit for bit — the property the
    /// parallel pipeline's deterministic shard merge relies on.
    pub fn merge(&mut self, other: &Histogram) {
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean of recorded samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Bucket-resolution quantile estimate: the upper bound of the
    /// bucket containing the q-th sample (`None` when empty). Exact to
    /// within one 1–2–5 step, which is all a perf snapshot needs.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(if i + 1 >= N_BUCKETS {
                    self.max
                } else {
                    bucket_bound(i).min(self.max)
                });
            }
        }
        Some(self.max)
    }

    /// Snapshots the raw internal state (for lossless serialization by
    /// the artifact cache; the exportable form is [`Histogram::summary`]).
    pub fn state(&self) -> HistogramState {
        HistogramState {
            counts: self.counts.clone(),
            count: self.count,
            sum: self.sum,
            min: self.min,
            max: self.max,
        }
    }

    /// Rebuilds a histogram from [`Histogram::state`]. A snapshot with
    /// the wrong bucket count (e.g. decoded from an artifact written
    /// by a different bucketing scheme) is rejected by padding or
    /// truncating into the overflow bucket-free prefix — callers that
    /// need strict validation should compare `counts.len()` against
    /// [`HistogramState::expected_buckets`] first.
    pub fn from_state(state: &HistogramState) -> Histogram {
        let mut counts = state.counts.clone();
        counts.resize(N_BUCKETS, 0);
        Histogram {
            counts,
            count: state.count,
            sum: state.sum,
            min: state.min,
            max: state.max,
        }
    }

    /// Condenses into the exportable summary.
    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count,
            sum: self.sum,
            mean: self.mean(),
            min: if self.count == 0 { 0.0 } else { self.min },
            max: if self.count == 0 { 0.0 } else { self.max },
            p50: self.quantile(0.5).unwrap_or(0.0),
            p95: self.quantile(0.95).unwrap_or(0.0),
            p99: self.quantile(0.99).unwrap_or(0.0),
            buckets: self
                .counts
                .iter()
                .enumerate()
                .filter(|(_, &c)| c > 0)
                .map(|(i, &c)| (bucket_bound(i), c))
                .collect(),
        }
    }
}

/// The raw, lossless state of a [`Histogram`]: per-bucket counts and
/// exact float accumulators. Serializing this and rebuilding with
/// [`Histogram::from_state`] reproduces the histogram bit for bit,
/// which the warm-vs-cold byte-identity contract depends on.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramState {
    /// Per-bucket sample counts, in bucket order.
    pub counts: Vec<u64>,
    /// Total samples recorded.
    pub count: u64,
    /// Exact left-to-right sum of samples.
    pub sum: f64,
    /// Smallest sample (`+∞` when empty).
    pub min: f64,
    /// Largest sample (`−∞` when empty).
    pub max: f64,
}

impl HistogramState {
    /// The bucket count this build of the bucketing scheme produces.
    pub fn expected_buckets() -> usize {
        N_BUCKETS
    }
}

/// The exportable condensation of a [`Histogram`]: moments, extremes,
/// bucket-resolution quantiles, and the non-empty `(upper bound, count)`
/// buckets.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSummary {
    /// Samples recorded.
    pub count: u64,
    /// Sum of samples.
    pub sum: f64,
    /// Mean sample.
    pub mean: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
    /// Median estimate (bucket upper bound).
    pub p50: f64,
    /// 95th-percentile estimate (bucket upper bound).
    pub p95: f64,
    /// 99th-percentile estimate (bucket upper bound).
    pub p99: f64,
    /// Non-empty buckets as `(upper bound, count)`.
    pub buckets: Vec<(f64, u64)>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile(0.5), None);
        assert!(h.summary().buckets.is_empty());
    }

    #[test]
    fn accumulates_count_sum_extremes() {
        let mut h = Histogram::new();
        for x in [0.5, 1.5, 2.5, 100.0] {
            h.record(x);
        }
        assert_eq!(h.count(), 4);
        assert!((h.sum() - 104.5).abs() < 1e-12);
        let s = h.summary();
        assert_eq!(s.min, 0.5);
        assert_eq!(s.max, 100.0);
        assert!((s.mean - 26.125).abs() < 1e-12);
    }

    #[test]
    fn buckets_use_one_two_five_bounds() {
        let mut h = Histogram::new();
        h.record(0.3); // → bound 0.5
        h.record(3.0); // → bound 5.0
        let s = h.summary();
        assert_eq!(s.buckets, vec![(0.5, 1), (5.0, 1)]);
    }

    #[test]
    fn quantiles_monotone_and_bounded() {
        let mut h = Histogram::new();
        for i in 1..=1000 {
            h.record(i as f64 / 100.0); // 0.01 ..= 10.0
        }
        let mut prev = 0.0;
        for q in [0.1, 0.25, 0.5, 0.9, 0.99, 1.0] {
            let v = h.quantile(q).unwrap();
            assert!(v >= prev, "q={q}: {v} < {prev}");
            assert!(v <= h.summary().max);
            prev = v;
        }
        // The median of 0.01..10 is ~5; bucket resolution gives 5.0.
        assert_eq!(h.quantile(0.5), Some(5.0));
        // The summary surfaces an ordered p50 ≤ p95 ≤ p99 triple.
        let s = h.summary();
        assert!(s.p50 <= s.p95 && s.p95 <= s.p99);
        assert_eq!(s.p95, h.quantile(0.95).unwrap());
    }

    #[test]
    fn merge_equals_sequential_recording() {
        // Record 0..n sequentially; record the same samples into
        // per-item shards and merge in item order. Every field —
        // including the order-sensitive f64 sum — must match exactly.
        let samples: Vec<f64> = (0..100).map(|i| 0.013 * i as f64 + 1e-4).collect();
        let mut sequential = Histogram::new();
        for &s in &samples {
            sequential.record(s);
        }
        let mut merged = Histogram::new();
        for &s in &samples {
            let mut shard = Histogram::new();
            shard.record(s);
            merged.merge(&shard);
        }
        assert_eq!(merged, sequential);
        assert_eq!(merged.sum().to_bits(), sequential.sum().to_bits());
    }

    #[test]
    fn merging_empty_is_identity() {
        let mut h = Histogram::new();
        h.record(2.0);
        let before = h.clone();
        h.merge(&Histogram::new());
        assert_eq!(h, before);
        let mut empty = Histogram::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn quantile_edge_cases_pinned() {
        // Empty: no quantile at any q, and the summary reads zeros.
        let empty = Histogram::new();
        for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(empty.quantile(q), None);
        }
        let s = empty.summary();
        assert_eq!((s.p50, s.p95, s.p99), (0.0, 0.0, 0.0));

        // Single sample: every quantile is that sample exactly (the
        // bucket bound is clamped to the recorded max).
        let mut one = Histogram::new();
        one.record(0.037);
        for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(one.quantile(q), Some(0.037), "q={q}");
        }

        // Heavily skewed: 999 samples in one low bucket, one huge
        // outlier. p50 and p99 stay in the low bucket (999/1000 ≥
        // rank 990); only p99.95+ reaches the outlier.
        let mut skew = Histogram::new();
        for _ in 0..999 {
            skew.record(0.001);
        }
        skew.record(1000.0);
        assert_eq!(skew.quantile(0.5), Some(0.001));
        assert_eq!(skew.quantile(0.99), Some(0.001));
        assert_eq!(skew.quantile(0.9995), Some(1000.0));
        assert_eq!(skew.quantile(1.0), Some(1000.0));
        // The profiler's p50/p95/p99 triple must not let the outlier
        // leak into the median.
        let s = skew.summary();
        assert_eq!(s.p50, 0.001);
        assert!(s.p50 <= s.p95 && s.p95 <= s.p99);
    }

    #[test]
    fn merge_is_shard_order_independent() {
        // Three shards with disjoint ranges, merged in every
        // permutation: bucket counts, count, min, and max are exactly
        // associative; the f64 sum may differ across orders only by
        // rounding (and the profiler compares sums, not bits, across
        // orders). The in-order left fold stays the bit-exact contract
        // pinned by `merge_equals_sequential_recording`.
        let mut shards = Vec::new();
        for (lo, n) in [(0.001, 40), (0.7, 17), (120.0, 9)] {
            let mut h = Histogram::new();
            for i in 0..n {
                h.record(lo * (1.0 + i as f64));
            }
            shards.push(h);
        }
        let orders: [[usize; 3]; 6] = [
            [0, 1, 2],
            [0, 2, 1],
            [1, 0, 2],
            [1, 2, 0],
            [2, 0, 1],
            [2, 1, 0],
        ];
        let reference = {
            let mut m = Histogram::new();
            for s in &shards {
                m.merge(s);
            }
            m
        };
        for order in orders {
            let mut m = Histogram::new();
            for &i in &order {
                m.merge(&shards[i]);
            }
            assert_eq!(m.count(), reference.count(), "{order:?}");
            assert_eq!(m.state().counts, reference.state().counts, "{order:?}");
            assert_eq!(m.summary().min, reference.summary().min, "{order:?}");
            assert_eq!(m.summary().max, reference.summary().max, "{order:?}");
            assert!(
                (m.sum() - reference.sum()).abs() <= 1e-9 * reference.sum().abs(),
                "{order:?}: {} vs {}",
                m.sum(),
                reference.sum()
            );
            // Quantiles depend only on bucket counts, so they are
            // exactly order-independent.
            for q in [0.5, 0.95, 0.99] {
                assert_eq!(m.quantile(q), reference.quantile(q), "{order:?} q={q}");
            }
        }
        // Associativity in the grouping sense: (a⊕b)⊕c == a⊕(b⊕c)
        // on the exact fields.
        let mut left = shards[0].clone();
        left.merge(&shards[1]);
        left.merge(&shards[2]);
        let mut right_tail = shards[1].clone();
        right_tail.merge(&shards[2]);
        let mut right = shards[0].clone();
        right.merge(&right_tail);
        assert_eq!(left.state().counts, right.state().counts);
        assert_eq!(left.count(), right.count());
    }

    #[test]
    fn overflow_and_tiny_samples_land_somewhere() {
        let mut h = Histogram::new();
        h.record(1e300);
        h.record(1e-300);
        h.record(f64::INFINITY);
        assert_eq!(h.count(), 3);
        let total: u64 = h.summary().buckets.iter().map(|&(_, c)| c).sum();
        assert_eq!(total, 3);
    }
}
