//! Flight recorder: an always-on, bounded ring of structured events
//! that survives failure.
//!
//! The paper's discipline is postmortem-first: when a fleet vehicle
//! disengages, the interesting data is the few seconds *before* the
//! event, which is why AV platforms keep a rolling recorder rather
//! than an unbounded log. The pipeline applies the same idea to
//! itself. Every [`crate::Collector`] carries a [`FlightRing`] that
//! captures span opens/closes, counter deltas on a small set of
//! watch prefixes, log lines, and explicit named events
//! ([`Collector::event`]); on a crash (`panic`, `Interrupted`, or a
//! reconcile failure) the session serializes the ring to
//! `flight.json` for `disengage doctor` to render.
//!
//! Determinism contract: events recorded on pool workers go through
//! the worker's shard collector and are folded back in task-index
//! order by [`crate::Collector::absorb`], exactly like counters, so
//! the merged event *sequence* is identical at any `--jobs`. The
//! only schedule-dependent stream — pool task completion stamps — is
//! kept in a separate [`TaskLog`] ring so its arrival order can
//! never change which main-ring events survive eviction. A
//! [canonical dump](dump_value) zeroes timestamps, omits the task
//! ring, and drops counter events in the environment-fact namespaces
//! (`cache.*` / `lock.*` / `profile.*`, mirroring
//! [`crate::TelemetryReport::canonical`]), and is byte-identical at
//! any worker count, clean or chaos.

use crate::collector::Collector;
use crate::json::Value;
use crate::provenance::ProvenanceLog;
use crate::report::LogLevel;
use std::collections::VecDeque;
use std::io;
use std::path::Path;
use std::sync::{Arc, Mutex};

/// Envelope `schema` field of a flight dump.
pub const FLIGHT_SCHEMA: &str = "disengage-flight";
/// Envelope schema version; bump on breaking envelope changes.
pub const FLIGHT_VERSION: u64 = 1;
/// Default main-ring capacity (events kept before oldest-first drop).
pub const DEFAULT_CAPACITY: usize = 2048;
/// Default task-ring capacity (pool task stamps kept).
pub const TASK_CAPACITY: usize = 256;
/// Counter surfaced in [`crate::TelemetryReport`] with the number of
/// events the ring evicted oldest-first.
pub const DROP_COUNTER: &str = "flight.dropped";
/// Default crash-dump path, relative to the working directory.
pub const DEFAULT_DUMP_PATH: &str = "flight.json";

/// Counter-name prefixes whose deltas are recorded as flight events.
///
/// The full counter set is far too chatty for a postmortem ring
/// (per-record `nlp.tag.*` deltas would evict everything else);
/// these prefixes cover the reliability lanes the paper cares
/// about — quarantine, injected chaos, cache/lock traffic, parser
/// panics and failures, and the recorder's own drop ledger.
pub const WATCH_PREFIXES: &[&str] = &[
    "quarantine.",
    "chaos.",
    "cache.",
    "lock.",
    "degrade.",
    "parse.docs.",
    "parse.dis.failed",
];

/// Counter-event prefixes excluded from canonical dumps — the same
/// environment-fact namespaces [`crate::TelemetryReport::canonical`]
/// strips (a warm run sees `cache.hit` events where a cold run saw
/// `cache.miss`, for identical results).
const VOLATILE_PREFIXES: &[&str] = &["cache.", "lock.", "profile."];

/// Returns true when counter deltas on `name` should be recorded as
/// flight events.
pub fn watched(name: &str) -> bool {
    WATCH_PREFIXES.iter().any(|p| name.starts_with(p))
}

/// What one flight event records.
#[derive(Debug, Clone, PartialEq)]
pub enum FlightKind {
    /// A span opened.
    SpanOpen {
        /// Span name.
        name: String,
    },
    /// A span closed.
    SpanClose {
        /// Span name.
        name: String,
    },
    /// A watched counter moved.
    Counter {
        /// Counter name.
        name: String,
        /// Delta added.
        delta: u64,
    },
    /// A log line.
    Log {
        /// Severity.
        level: LogLevel,
        /// Message text.
        message: String,
    },
    /// An explicit named event ([`Collector::event`]): quarantine,
    /// degrade, injected fault, cache reclaim, interrupt.
    Event {
        /// Event name (dot-namespaced like a counter).
        name: String,
        /// Free-text detail.
        detail: String,
    },
    /// A completed pool task (task-ring only; completion order is
    /// schedule-dependent and excluded from canonical dumps).
    Task {
        /// Pool call label.
        label: String,
        /// Worker index that ran the task.
        worker: usize,
        /// Chunk index within the call.
        chunk: usize,
        /// Items in the chunk.
        items: usize,
    },
}

/// One recorded event: an offset from the collector's epoch plus the
/// payload.
#[derive(Debug, Clone, PartialEq)]
pub struct FlightEvent {
    /// Seconds since the recording collector's epoch (0 for task
    /// stamps, whose ring has no clock).
    pub t_s: f64,
    /// Payload.
    pub kind: FlightKind,
}

/// A bounded ring of [`FlightEvent`]s: pushes past capacity evict the
/// oldest event and bump the drop counter.
#[derive(Debug, Clone)]
pub struct FlightRing {
    events: VecDeque<FlightEvent>,
    capacity: usize,
    dropped: u64,
}

impl Default for FlightRing {
    fn default() -> Self {
        FlightRing::new(DEFAULT_CAPACITY)
    }
}

impl FlightRing {
    /// An empty ring holding at most `capacity` events (min 1).
    pub fn new(capacity: usize) -> FlightRing {
        FlightRing {
            events: VecDeque::new(),
            capacity: capacity.max(1),
            dropped: 0,
        }
    }

    /// Appends an event, evicting the oldest when full.
    pub fn push(&mut self, event: FlightEvent) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(event);
    }

    /// Appends another ring's events in their recorded order (the
    /// shard-absorb fold); drop counts add.
    pub fn absorb(&mut self, other: FlightRing) {
        self.dropped += other.dropped;
        for event in other.events {
            self.push(event);
        }
    }

    /// Events oldest-first.
    pub fn events(&self) -> impl Iterator<Item = &FlightEvent> {
        self.events.iter()
    }

    /// Events currently held.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing has been recorded (or everything evicted).
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events evicted oldest-first so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

/// The events and drop count a collector's ring held at snapshot
/// time.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FlightSnapshot {
    /// Events oldest-first.
    pub events: Vec<FlightEvent>,
    /// Events evicted before the snapshot.
    pub dropped: u64,
}

/// A shared, cloneable ring of pool task stamps.
///
/// Task completion order is a property of the scheduler, not the
/// workload, so these stamps must not share a ring with the
/// deterministic event stream: a racing stamp would change *which
/// other events* get evicted. They live here instead, appear only in
/// full (non-canonical) dumps, and carry no timestamps.
#[derive(Debug, Clone)]
pub struct TaskLog {
    inner: Arc<Mutex<FlightRing>>,
}

impl Default for TaskLog {
    fn default() -> Self {
        TaskLog::new()
    }
}

impl TaskLog {
    /// An empty task log with the default capacity.
    pub fn new() -> TaskLog {
        TaskLog {
            inner: Arc::new(Mutex::new(FlightRing::new(TASK_CAPACITY))),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, FlightRing> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Records one completed pool task.
    pub fn push(&self, label: &str, worker: usize, chunk: usize, items: usize) {
        self.lock().push(FlightEvent {
            t_s: 0.0,
            kind: FlightKind::Task {
                label: label.to_owned(),
                worker,
                chunk,
                items,
            },
        });
    }

    /// Snapshot of the stamps recorded so far (oldest-first) and the
    /// drop count.
    pub fn snapshot(&self) -> FlightSnapshot {
        let ring = self.lock();
        FlightSnapshot {
            events: ring.events().cloned().collect(),
            dropped: ring.dropped(),
        }
    }
}

/// Suspect record ids for a postmortem: subjects of the most recent
/// quarantine/fault provenance events, most recent last, deduplicated.
pub fn suspects(log: &ProvenanceLog, limit: usize) -> Vec<String> {
    let mut seen: Vec<String> = Vec::new();
    for entry in log.entries() {
        let kind = entry.event.kind();
        if !(kind.contains("quarantin") || kind.contains("fault")) {
            continue;
        }
        let subject = entry.subject.to_string();
        seen.retain(|s| s != &subject);
        seen.push(subject);
    }
    let start = seen.len().saturating_sub(limit);
    seen.split_off(start)
}

fn level_name(level: LogLevel) -> &'static str {
    match level {
        LogLevel::Warn => "warn",
        LogLevel::Info => "info",
        LogLevel::Debug => "debug",
    }
}

fn event_value(event: &FlightEvent) -> Value {
    let mut obj = vec![("t_s".to_owned(), Value::num(event.t_s))];
    match &event.kind {
        FlightKind::SpanOpen { name } => {
            obj.push(("kind".to_owned(), Value::Str("span_open".to_owned())));
            obj.push(("name".to_owned(), Value::Str(name.clone())));
        }
        FlightKind::SpanClose { name } => {
            obj.push(("kind".to_owned(), Value::Str("span_close".to_owned())));
            obj.push(("name".to_owned(), Value::Str(name.clone())));
        }
        FlightKind::Counter { name, delta } => {
            obj.push(("kind".to_owned(), Value::Str("counter".to_owned())));
            obj.push(("name".to_owned(), Value::Str(name.clone())));
            obj.push(("delta".to_owned(), Value::num(*delta as f64)));
        }
        FlightKind::Log { level, message } => {
            obj.push(("kind".to_owned(), Value::Str("log".to_owned())));
            obj.push((
                "level".to_owned(),
                Value::Str(level_name(*level).to_owned()),
            ));
            obj.push(("message".to_owned(), Value::Str(message.clone())));
        }
        FlightKind::Event { name, detail } => {
            obj.push(("kind".to_owned(), Value::Str("event".to_owned())));
            obj.push(("name".to_owned(), Value::Str(name.clone())));
            obj.push(("detail".to_owned(), Value::Str(detail.clone())));
        }
        FlightKind::Task {
            label,
            worker,
            chunk,
            items,
        } => {
            obj.push(("kind".to_owned(), Value::Str("task".to_owned())));
            obj.push(("label".to_owned(), Value::Str(label.clone())));
            obj.push(("worker".to_owned(), Value::num(*worker as f64)));
            obj.push(("chunk".to_owned(), Value::num(*chunk as f64)));
            obj.push(("items".to_owned(), Value::num(*items as f64)));
        }
    }
    Value::Obj(obj)
}

fn open_span_names(nodes: &[crate::report::SpanNode], out: &mut Vec<String>) {
    for node in nodes {
        if !node.closed {
            out.push(node.name.clone());
        }
        open_span_names(&node.children, out);
    }
}

/// Builds the versioned dump envelope from a collector's current
/// state.
///
/// `canonical: false` is the postmortem form: real timestamps, the
/// task ring, and every counter event. `canonical: true` is the
/// byte-identity form used by `--flight=` and the determinism tests:
/// timestamps zeroed, task stamps omitted, counter events in the
/// volatile namespaces dropped, and the counter snapshot taken from
/// [`crate::TelemetryReport::canonical`].
pub fn dump_value(
    obs: &Collector,
    tasks: Option<&TaskLog>,
    reason: &str,
    suspects: &[String],
    canonical: bool,
) -> Value {
    let mut report = obs.report();
    if canonical {
        report = report.canonical();
    }
    let snapshot = obs.flight_snapshot();
    let mut events: Vec<Value> = Vec::new();
    for event in &snapshot.events {
        if canonical {
            // Counter deltas AND named events in the environment-fact
            // namespaces go: a warm run emits cache.* traffic a cold
            // run does not, for identical results.
            let volatile_name = match &event.kind {
                FlightKind::Counter { name, .. } | FlightKind::Event { name, .. } => {
                    VOLATILE_PREFIXES.iter().any(|p| name.starts_with(p))
                }
                _ => false,
            };
            if volatile_name {
                continue;
            }
            let mut event = event.clone();
            event.t_s = 0.0;
            events.push(event_value(&event));
        } else {
            events.push(event_value(event));
        }
    }
    let mut task_dropped = 0;
    if !canonical {
        if let Some(tasks) = tasks {
            let stamps = tasks.snapshot();
            task_dropped = stamps.dropped;
            events.extend(stamps.events.iter().map(event_value));
        }
    }
    let mut open = Vec::new();
    open_span_names(&report.spans, &mut open);
    let counters = Value::Obj(
        report
            .counters
            .iter()
            .map(|(k, v)| (k.clone(), Value::num(*v as f64)))
            .collect(),
    );
    Value::Obj(vec![
        ("schema".to_owned(), Value::Str(FLIGHT_SCHEMA.to_owned())),
        (
            "schema_version".to_owned(),
            Value::num(FLIGHT_VERSION as f64),
        ),
        ("canonical".to_owned(), Value::Bool(canonical)),
        ("reason".to_owned(), Value::Str(reason.to_owned())),
        (
            "dropped".to_owned(),
            Value::num((snapshot.dropped + task_dropped) as f64),
        ),
        ("events".to_owned(), Value::Arr(events)),
        (
            "open_spans".to_owned(),
            Value::Arr(open.into_iter().map(Value::Str).collect()),
        ),
        ("counters".to_owned(), counters),
        (
            "suspects".to_owned(),
            Value::Arr(suspects.iter().cloned().map(Value::Str).collect()),
        ),
    ])
}

/// Renders a dump envelope to its JSON text.
pub fn render_dump(
    obs: &Collector,
    tasks: Option<&TaskLog>,
    reason: &str,
    suspects: &[String],
    canonical: bool,
) -> String {
    let mut text = dump_value(obs, tasks, reason, suspects, canonical).render();
    text.push('\n');
    text
}

/// Writes a dump envelope to `path` (best-effort callers ignore the
/// error: a failing crash dump must never mask the crash itself).
pub fn write_dump(
    path: &Path,
    obs: &Collector,
    tasks: Option<&TaskLog>,
    reason: &str,
    suspects: &[String],
    canonical: bool,
) -> io::Result<()> {
    let text = render_dump(obs, tasks, reason, suspects, canonical);
    // Write-then-rename so a reader (or a racing sibling test process)
    // never sees a torn dump.
    let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
    std::fs::write(&tmp, text)?;
    match std::fs::rename(&tmp, path) {
        Ok(()) => Ok(()),
        Err(e) => {
            let _ = std::fs::remove_file(&tmp);
            Err(e)
        }
    }
}

/// A parsed, validated flight dump — what `disengage doctor` works
/// from.
#[derive(Debug, Clone, PartialEq)]
pub struct FlightDump {
    /// Envelope schema version.
    pub schema_version: u64,
    /// Whether this is the canonical (byte-identity) form.
    pub canonical: bool,
    /// Why the dump was taken.
    pub reason: String,
    /// Events evicted before the dump.
    pub dropped: u64,
    /// Events oldest-first.
    pub events: Vec<FlightEvent>,
    /// Spans still open when the dump was taken.
    pub open_spans: Vec<String>,
    /// Counter snapshot, in name order.
    pub counters: Vec<(String, u64)>,
    /// Suspect record ids from the provenance log.
    pub suspects: Vec<String>,
}

fn field<'a>(obj: &'a Value, key: &str) -> Result<&'a Value, String> {
    obj.get(key).ok_or_else(|| format!("missing `{key}` field"))
}

fn str_field(obj: &Value, key: &str) -> Result<String, String> {
    field(obj, key)?
        .as_str()
        .map(str::to_owned)
        .ok_or_else(|| format!("`{key}` must be a string"))
}

fn num_field(obj: &Value, key: &str) -> Result<f64, String> {
    field(obj, key)?
        .as_f64()
        .ok_or_else(|| format!("`{key}` must be a number"))
}

fn parse_level(name: &str) -> Result<LogLevel, String> {
    match name {
        "warn" => Ok(LogLevel::Warn),
        "info" => Ok(LogLevel::Info),
        "debug" => Ok(LogLevel::Debug),
        other => Err(format!("unknown log level `{other}`")),
    }
}

fn parse_event(value: &Value, index: usize) -> Result<FlightEvent, String> {
    let fail = |e: String| format!("event {index}: {e}");
    let t_s = num_field(value, "t_s").map_err(fail)?;
    let kind = str_field(value, "kind").map_err(fail)?;
    let kind = match kind.as_str() {
        "span_open" => FlightKind::SpanOpen {
            name: str_field(value, "name").map_err(fail)?,
        },
        "span_close" => FlightKind::SpanClose {
            name: str_field(value, "name").map_err(fail)?,
        },
        "counter" => FlightKind::Counter {
            name: str_field(value, "name").map_err(fail)?,
            delta: num_field(value, "delta").map_err(fail)? as u64,
        },
        "log" => FlightKind::Log {
            level: parse_level(&str_field(value, "level").map_err(fail)?)
                .map_err(fail)?,
            message: str_field(value, "message").map_err(fail)?,
        },
        "event" => FlightKind::Event {
            name: str_field(value, "name").map_err(fail)?,
            detail: str_field(value, "detail").map_err(fail)?,
        },
        "task" => FlightKind::Task {
            label: str_field(value, "label").map_err(fail)?,
            worker: num_field(value, "worker").map_err(fail)? as usize,
            chunk: num_field(value, "chunk").map_err(fail)? as usize,
            items: num_field(value, "items").map_err(fail)? as usize,
        },
        other => return Err(format!("event {index}: unknown kind `{other}`")),
    };
    Ok(FlightEvent { t_s, kind })
}

fn str_array(value: &Value, key: &str) -> Result<Vec<String>, String> {
    value
        .as_arr()
        .ok_or_else(|| format!("`{key}` must be an array"))?
        .iter()
        .map(|v| {
            v.as_str()
                .map(str::to_owned)
                .ok_or_else(|| format!("`{key}` entries must be strings"))
        })
        .collect()
}

/// Parses and validates a flight dump.
pub fn validate_dump(text: &str) -> Result<FlightDump, String> {
    let value = Value::parse(text).map_err(|e| format!("invalid JSON: {e}"))?;
    let schema = str_field(&value, "schema")?;
    if schema != FLIGHT_SCHEMA {
        return Err(format!("schema is `{schema}`, expected `{FLIGHT_SCHEMA}`"));
    }
    let version = num_field(&value, "schema_version")? as u64;
    if version == 0 || version > FLIGHT_VERSION {
        return Err(format!(
            "schema_version {version} unsupported (this build reads <= {FLIGHT_VERSION})"
        ));
    }
    let canonical = match field(&value, "canonical")? {
        Value::Bool(b) => *b,
        _ => return Err("`canonical` must be a boolean".to_owned()),
    };
    let reason = str_field(&value, "reason")?;
    let dropped = num_field(&value, "dropped")? as u64;
    let events = field(&value, "events")?
        .as_arr()
        .ok_or("`events` must be an array")?
        .iter()
        .enumerate()
        .map(|(i, v)| parse_event(v, i))
        .collect::<Result<Vec<_>, _>>()?;
    let open_spans = str_array(field(&value, "open_spans")?, "open_spans")?;
    let counters = match field(&value, "counters")? {
        Value::Obj(entries) => entries
            .iter()
            .map(|(k, v)| {
                v.as_f64()
                    .map(|n| (k.clone(), n as u64))
                    .ok_or_else(|| format!("counter `{k}` must be a number"))
            })
            .collect::<Result<Vec<_>, _>>()?,
        _ => return Err("`counters` must be an object".to_owned()),
    };
    let suspects = str_array(field(&value, "suspects")?, "suspects")?;
    Ok(FlightDump {
        schema_version: version,
        canonical,
        reason,
        dropped,
        events,
        open_spans,
        counters,
        suspects,
    })
}

fn describe_event(event: &FlightEvent) -> String {
    match &event.kind {
        FlightKind::SpanOpen { name } => format!("span_open  {name}"),
        FlightKind::SpanClose { name } => format!("span_close {name}"),
        FlightKind::Counter { name, delta } => format!("counter    {name} +{delta}"),
        FlightKind::Log { level, message } => {
            format!("log        [{}] {message}", level_name(*level))
        }
        FlightKind::Event { name, detail } => format!("event      {name}: {detail}"),
        FlightKind::Task {
            label,
            worker,
            chunk,
            items,
        } => format!("task       {label} chunk {chunk} on worker {worker} ({items} items)"),
    }
}

/// Renders the doctor postmortem: provenance of the dump, open spans
/// at death, the last `last_n` events, the counter snapshot, and the
/// suspect record ids.
pub fn render_postmortem(dump: &FlightDump, last_n: usize) -> String {
    let mut out = String::new();
    out.push_str("== flight recorder postmortem ==\n");
    out.push_str(&format!(
        "schema {FLIGHT_SCHEMA} v{}, {} form\n",
        dump.schema_version,
        if dump.canonical { "canonical" } else { "full" }
    ));
    out.push_str(&format!("reason: {}\n", dump.reason));
    out.push_str(&format!(
        "events: {} recorded, {} dropped oldest-first\n",
        dump.events.len(),
        dump.dropped
    ));
    if dump.open_spans.is_empty() {
        out.push_str("open spans at dump: none\n");
    } else {
        out.push_str(&format!(
            "open spans at dump: {}\n",
            dump.open_spans.join(" > ")
        ));
    }
    let start = dump.events.len().saturating_sub(last_n);
    out.push_str(&format!(
        "last {} events:\n",
        dump.events.len() - start
    ));
    for event in &dump.events[start..] {
        out.push_str(&format!(
            "  [{:9.3}s] {}\n",
            event.t_s,
            describe_event(event)
        ));
    }
    if !dump.counters.is_empty() {
        out.push_str("counters:\n");
        for (name, value) in &dump.counters {
            out.push_str(&format!("  {name} = {value}\n"));
        }
    }
    if dump.suspects.is_empty() {
        out.push_str("suspect records: none\n");
    } else {
        out.push_str("suspect records:\n");
        for s in &dump.suspects {
            out.push_str(&format!("  {s}\n"));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counter_event(name: &str, delta: u64) -> FlightEvent {
        FlightEvent {
            t_s: 0.0,
            kind: FlightKind::Counter {
                name: name.to_owned(),
                delta,
            },
        }
    }

    #[test]
    fn ring_drops_oldest_first_and_counts() {
        let mut ring = FlightRing::new(3);
        for i in 0..5 {
            ring.push(counter_event(&format!("c{i}"), 1));
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.dropped(), 2);
        let names: Vec<String> = ring
            .events()
            .map(|e| match &e.kind {
                FlightKind::Counter { name, .. } => name.clone(),
                _ => unreachable!(),
            })
            .collect();
        // c0 and c1 (oldest) were evicted.
        assert_eq!(names, ["c2", "c3", "c4"]);
    }

    #[test]
    fn ring_capacity_is_exact_for_any_push_count() {
        // Property: after n pushes into a capacity-k ring, len is
        // min(n, k), dropped is n - len, and the surviving window is
        // exactly the last len events.
        for cap in [1usize, 2, 7, 16] {
            for n in 0..40usize {
                let mut ring = FlightRing::new(cap);
                for i in 0..n {
                    ring.push(counter_event(&format!("e{i}"), 1));
                }
                assert_eq!(ring.len(), n.min(cap));
                assert_eq!(ring.dropped(), (n - ring.len()) as u64);
                let first = ring.events().next().cloned();
                if let Some(first) = first {
                    let expect = format!("e{}", n - ring.len());
                    match &first.kind {
                        FlightKind::Counter { name, .. } => assert_eq!(*name, expect),
                        _ => unreachable!(),
                    }
                }
            }
        }
    }

    #[test]
    fn absorb_appends_in_order_and_sums_drops() {
        let mut parent = FlightRing::new(4);
        parent.push(counter_event("p0", 1));
        let mut child = FlightRing::new(2);
        for i in 0..5 {
            child.push(counter_event(&format!("s{i}"), 1));
        }
        parent.absorb(child);
        assert_eq!(parent.dropped(), 3); // child evicted s0..s2
        let names: Vec<&str> = parent
            .events()
            .map(|e| match &e.kind {
                FlightKind::Counter { name, .. } => name.as_str(),
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(names, ["p0", "s3", "s4"]);
    }

    #[test]
    fn dump_round_trips_through_validate() {
        let obs = Collector::new();
        {
            let _root = obs.span("pipeline");
            obs.add("quarantine.records", 3);
            obs.event("interrupt", "normalize");
            obs.warn("something degraded");
            let text = render_dump(
                &obs,
                None,
                "interrupted after normalize",
                &["Waymo:2016:4".to_owned()],
                false,
            );
            let dump = validate_dump(&text).expect("dump validates");
            assert!(!dump.canonical);
            assert_eq!(dump.reason, "interrupted after normalize");
            assert_eq!(dump.open_spans, ["pipeline"]);
            assert_eq!(dump.suspects, ["Waymo:2016:4"]);
            assert!(dump
                .events
                .iter()
                .any(|e| matches!(&e.kind, FlightKind::Event { name, detail }
                    if name == "interrupt" && detail == "normalize")));
            assert!(dump
                .events
                .iter()
                .any(|e| matches!(&e.kind, FlightKind::Counter { name, delta: 3 }
                    if name == "quarantine.records")));
            let post = render_postmortem(&dump, 10);
            assert!(post.contains("interrupted after normalize"));
            assert!(post.contains("open spans at dump: pipeline"));
            assert!(post.contains("Waymo:2016:4"));
        }
    }

    #[test]
    fn canonical_dump_zeroes_time_and_drops_volatile_counters() {
        let obs = Collector::new();
        obs.add("quarantine.records", 1);
        obs.add("cache.hit.corpus", 1);
        let tasks = TaskLog::new();
        tasks.push("parse", 0, 0, 8);
        let text = render_dump(&obs, Some(&tasks), "end-of-run", &[], true);
        let dump = validate_dump(&text).expect("canonical dump validates");
        assert!(dump.canonical);
        assert!(dump.events.iter().all(|e| e.t_s == 0.0));
        assert!(!dump
            .events
            .iter()
            .any(|e| matches!(&e.kind, FlightKind::Task { .. })));
        assert!(!dump
            .events
            .iter()
            .any(|e| matches!(&e.kind, FlightKind::Counter { name, .. }
                if name.starts_with("cache."))));
        assert!(dump
            .events
            .iter()
            .any(|e| matches!(&e.kind, FlightKind::Counter { name, .. }
                if name == "quarantine.records")));
        // Canonical counters mirror TelemetryReport::canonical.
        assert!(dump.counters.iter().all(|(k, _)| !k.starts_with("cache.")));
    }

    #[test]
    fn full_dump_carries_task_stamps() {
        let obs = Collector::new();
        let tasks = TaskLog::new();
        tasks.push("digitize", 2, 5, 16);
        let text = render_dump(&obs, Some(&tasks), "end-of-run", &[], false);
        let dump = validate_dump(&text).expect("validates");
        assert!(dump
            .events
            .iter()
            .any(|e| matches!(&e.kind, FlightKind::Task { label, worker: 2, chunk: 5, items: 16 }
                if label == "digitize")));
    }

    #[test]
    fn validate_rejects_garbage() {
        assert!(validate_dump("not json").is_err());
        assert!(validate_dump("{}").is_err());
        assert!(validate_dump(r#"{"schema":"other"}"#).is_err());
        let wrong_version = r#"{"schema":"disengage-flight","schema_version":99,
            "canonical":false,"reason":"x","dropped":0,"events":[],
            "open_spans":[],"counters":{},"suspects":[]}"#;
        assert!(validate_dump(wrong_version).is_err());
        let bad_kind = r#"{"schema":"disengage-flight","schema_version":1,
            "canonical":false,"reason":"x","dropped":0,
            "events":[{"t_s":0,"kind":"mystery"}],
            "open_spans":[],"counters":{},"suspects":[]}"#;
        assert!(validate_dump(bad_kind).is_err());
    }

    #[test]
    fn watch_prefixes_cover_reliability_lanes() {
        assert!(watched("quarantine.records"));
        assert!(watched("chaos.injected.total"));
        assert!(watched("cache.hit.corpus"));
        assert!(watched("parse.dis.failed"));
        assert!(!watched("nlp.tag.planner"));
        assert!(!watched("parse.dis.parsed"));
    }
}
