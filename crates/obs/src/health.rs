//! Health/SLO engine: declarative threshold rules over a
//! [`TelemetryReport`].
//!
//! The paper's monitoring posture — watch fleet rates against
//! expectations, alarm on breach — applied to the pipeline itself.
//! Rules are one per line:
//!
//! ```text
//! # name   expression                                          op threshold [severity]
//! quarantine_rate ratio(counter(quarantine.records),counter(parse.dis.lines)) < 0.02 fail
//! ocr_mean_cer    gauge(ocr.mean_cer) <= 0.08 warn
//! tag_p99_budget  p99(profile.wall;stage_tag) <= 0.5 warn
//! ```
//!
//! Expressions: `counter(NAME)` (0 when absent), `sum(PREFIX)`
//! (counter prefix sum), `gauge(NAME)`, histogram selectors
//! `p50|p95|p99|mean|max|count(NAME)`, and `ratio(A,B)` (0 when the
//! denominator is 0). Operators: `< <= > >= == !=`. Severity `fail`
//! (default) or `warn`. A rule whose gauge or histogram is absent is
//! *skipped*, not failed — a passthrough run has no `ocr.cer`
//! histogram and that is not an SLO breach. The worst outcome across
//! rules decides the exit code (`disengage health`, `repro --health`).

use crate::json::Value;
use crate::report::TelemetryReport;
use std::fmt;

/// How bad a breached rule is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Breach is reported but does not affect the exit code.
    Warn,
    /// Breach makes the run fail (nonzero exit).
    Fail,
}

/// Threshold comparison operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    Eq,
    /// `!=`
    Ne,
}

impl Op {
    fn parse(text: &str) -> Option<Op> {
        match text {
            "<" => Some(Op::Lt),
            "<=" => Some(Op::Le),
            ">" => Some(Op::Gt),
            ">=" => Some(Op::Ge),
            "==" => Some(Op::Eq),
            "!=" => Some(Op::Ne),
            _ => None,
        }
    }

    fn holds(self, value: f64, threshold: f64) -> bool {
        match self {
            Op::Lt => value < threshold,
            Op::Le => value <= threshold,
            Op::Gt => value > threshold,
            Op::Ge => value >= threshold,
            Op::Eq => value == threshold,
            Op::Ne => value != threshold,
        }
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Op::Lt => "<",
            Op::Le => "<=",
            Op::Gt => ">",
            Op::Ge => ">=",
            Op::Eq => "==",
            Op::Ne => "!=",
        })
    }
}

/// Which histogram statistic a selector reads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HistStat {
    /// Median.
    P50,
    /// 95th percentile.
    P95,
    /// 99th percentile.
    P99,
    /// Arithmetic mean.
    Mean,
    /// Maximum sample.
    Max,
    /// Sample count.
    Count,
}

impl HistStat {
    fn name(self) -> &'static str {
        match self {
            HistStat::P50 => "p50",
            HistStat::P95 => "p95",
            HistStat::P99 => "p99",
            HistStat::Mean => "mean",
            HistStat::Max => "max",
            HistStat::Count => "count",
        }
    }
}

/// A parsed rule expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// `counter(NAME)` — 0 when the counter was never touched.
    Counter(String),
    /// `sum(PREFIX)` — [`TelemetryReport::counter_prefix_sum`].
    Sum(String),
    /// `gauge(NAME)` — skip when absent.
    Gauge(String),
    /// Histogram selector — skip when the histogram is absent.
    Hist(HistStat, String),
    /// `ratio(A,B)` — 0 when B evaluates to 0.
    Ratio(Box<Expr>, Box<Expr>),
}

impl Expr {
    /// Parses one expression (no whitespace inside).
    pub fn parse(text: &str) -> Result<Expr, String> {
        let text = text.trim();
        let open = text
            .find('(')
            .ok_or_else(|| format!("expected FUNC(...) in `{text}`"))?;
        if !text.ends_with(')') {
            return Err(format!("unbalanced parentheses in `{text}`"));
        }
        let func = &text[..open];
        let arg = &text[open + 1..text.len() - 1];
        match func {
            "counter" => Ok(Expr::Counter(arg.to_owned())),
            "sum" => Ok(Expr::Sum(arg.to_owned())),
            "gauge" => Ok(Expr::Gauge(arg.to_owned())),
            "p50" => Ok(Expr::Hist(HistStat::P50, arg.to_owned())),
            "p95" => Ok(Expr::Hist(HistStat::P95, arg.to_owned())),
            "p99" => Ok(Expr::Hist(HistStat::P99, arg.to_owned())),
            "mean" => Ok(Expr::Hist(HistStat::Mean, arg.to_owned())),
            "max" => Ok(Expr::Hist(HistStat::Max, arg.to_owned())),
            "count" => Ok(Expr::Hist(HistStat::Count, arg.to_owned())),
            "ratio" => {
                // Split at the top-level comma (arguments may contain
                // their own parenthesized calls).
                let mut depth = 0usize;
                let mut split = None;
                for (i, c) in arg.char_indices() {
                    match c {
                        '(' => depth += 1,
                        ')' => depth = depth.saturating_sub(1),
                        ',' if depth == 0 => {
                            split = Some(i);
                            break;
                        }
                        _ => {}
                    }
                }
                let split =
                    split.ok_or_else(|| format!("ratio needs two arguments in `{text}`"))?;
                Ok(Expr::Ratio(
                    Box::new(Expr::parse(&arg[..split])?),
                    Box::new(Expr::parse(&arg[split + 1..])?),
                ))
            }
            other => Err(format!("unknown function `{other}` in `{text}`")),
        }
    }

    /// Evaluates against a report. `Err` means a referenced gauge or
    /// histogram is absent — the rule is skipped, not failed.
    pub fn eval(&self, report: &TelemetryReport) -> Result<f64, String> {
        match self {
            Expr::Counter(name) => Ok(report.counter(name) as f64),
            Expr::Sum(prefix) => Ok(report.counter_prefix_sum(prefix) as f64),
            Expr::Gauge(name) => report
                .gauge(name)
                .ok_or_else(|| format!("gauge `{name}` not set")),
            Expr::Hist(stat, name) => {
                let h = report
                    .histogram(name)
                    .ok_or_else(|| format!("histogram `{name}` not recorded"))?;
                Ok(match stat {
                    HistStat::P50 => h.p50,
                    HistStat::P95 => h.p95,
                    HistStat::P99 => h.p99,
                    HistStat::Mean => h.mean,
                    HistStat::Max => h.max,
                    HistStat::Count => h.count as f64,
                })
            }
            Expr::Ratio(num, den) => {
                let d = den.eval(report)?;
                if d == 0.0 {
                    return Ok(0.0);
                }
                Ok(num.eval(report)? / d)
            }
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Counter(n) => write!(f, "counter({n})"),
            Expr::Sum(p) => write!(f, "sum({p})"),
            Expr::Gauge(n) => write!(f, "gauge({n})"),
            Expr::Hist(stat, n) => write!(f, "{}({n})", stat.name()),
            Expr::Ratio(a, b) => write!(f, "ratio({a},{b})"),
        }
    }
}

/// One parsed health rule.
#[derive(Debug, Clone, PartialEq)]
pub struct HealthRule {
    /// Rule name (first token on the line).
    pub name: String,
    /// Left-hand expression.
    pub expr: Expr,
    /// Comparison operator.
    pub op: Op,
    /// Right-hand threshold.
    pub threshold: f64,
    /// What a breach means.
    pub severity: Severity,
}

/// Built-in rule set used when `--health` is given without a file.
///
/// Thresholds are calibrated against the clean reproduction corpus
/// (which must pass them with margin) and the chaos campaigns (whose
/// quarantine volume must breach `quarantine_rate`): the clean run
/// quarantines only the seeded malformed lines (≈0.4% of
/// `parse.dis.lines`), while even `--chaos=0.05` pushes the rate past
/// 2%.
pub const DEFAULT_RULES: &str = "\
# Built-in health rules (DESIGN.md §16). name expr op threshold [warn|fail]
quarantine_rate ratio(counter(quarantine.records),counter(parse.dis.lines)) < 0.02 fail
parse_failure_rate ratio(counter(parse.dis.failed),counter(parse.dis.lines)) < 0.05 fail
tag_coverage ratio(counter(nlp.tagged),counter(parse.dis.parsed)) >= 1 fail
parser_panics counter(parse.docs.panicked) == 0 fail
ocr_mean_cer gauge(ocr.mean_cer) <= 0.08 warn
";

/// Parses a rule file. Blank lines and `#` comments are ignored.
pub fn parse_rules(text: &str) -> Result<Vec<HealthRule>, String> {
    let mut rules = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fail = |e: String| format!("line {}: {e}", lineno + 1);
        let parts: Vec<&str> = line.split_whitespace().collect();
        if parts.len() < 4 || parts.len() > 5 {
            return Err(fail(format!(
                "expected `name expr op threshold [warn|fail]`, got {} tokens",
                parts.len()
            )));
        }
        let op = Op::parse(parts[2])
            .ok_or_else(|| fail(format!("unknown operator `{}`", parts[2])))?;
        let threshold: f64 = parts[3]
            .parse()
            .map_err(|_| fail(format!("bad threshold `{}`", parts[3])))?;
        let severity = match parts.get(4) {
            None | Some(&"fail") => Severity::Fail,
            Some(&"warn") => Severity::Warn,
            Some(other) => {
                return Err(fail(format!("unknown severity `{other}` (warn|fail)")))
            }
        };
        rules.push(HealthRule {
            name: parts[0].to_owned(),
            expr: Expr::parse(parts[1]).map_err(fail)?,
            op,
            threshold,
            severity,
        });
    }
    Ok(rules)
}

/// The built-in rules, parsed (infallible: [`DEFAULT_RULES`] is
/// checked by a test).
pub fn default_rules() -> Vec<HealthRule> {
    parse_rules(DEFAULT_RULES).expect("built-in rules parse")
}

/// One rule's evaluation outcome.
#[derive(Debug, Clone, PartialEq)]
pub enum Outcome {
    /// Threshold holds.
    Pass,
    /// Breached, severity warn.
    Warn,
    /// Breached, severity fail.
    Fail,
    /// A referenced gauge/histogram is absent (reason inside).
    Skip(String),
}

impl Outcome {
    /// Fixed-width label for the report table.
    pub fn label(&self) -> &'static str {
        match self {
            Outcome::Pass => "PASS",
            Outcome::Warn => "WARN",
            Outcome::Fail => "FAIL",
            Outcome::Skip(_) => "SKIP",
        }
    }
}

/// One evaluated rule.
#[derive(Debug, Clone, PartialEq)]
pub struct RuleResult {
    /// The rule as parsed.
    pub rule: HealthRule,
    /// Observed expression value (absent on skip).
    pub value: Option<f64>,
    /// Outcome.
    pub outcome: Outcome,
}

/// The full evaluation: one row per rule.
#[derive(Debug, Clone, PartialEq)]
pub struct HealthReport {
    /// Results in rule order.
    pub results: Vec<RuleResult>,
}

impl HealthReport {
    /// True when any rule with severity `fail` breached.
    pub fn failed(&self) -> bool {
        self.results
            .iter()
            .any(|r| matches!(r.outcome, Outcome::Fail))
    }

    /// Counts of (pass, warn, fail, skip).
    pub fn tallies(&self) -> (usize, usize, usize, usize) {
        let mut t = (0, 0, 0, 0);
        for r in &self.results {
            match r.outcome {
                Outcome::Pass => t.0 += 1,
                Outcome::Warn => t.1 += 1,
                Outcome::Fail => t.2 += 1,
                Outcome::Skip(_) => t.3 += 1,
            }
        }
        t
    }

    /// Human-readable table.
    pub fn render(&self) -> String {
        let mut out = String::from("== health ==\n");
        let width = self
            .results
            .iter()
            .map(|r| r.rule.name.len())
            .max()
            .unwrap_or(0);
        for r in &self.results {
            let clause = format!("{} {} {}", r.rule.expr, r.rule.op, r.rule.threshold);
            match (&r.outcome, r.value) {
                (Outcome::Skip(reason), _) => out.push_str(&format!(
                    "SKIP {:width$}  {clause}  ({reason})\n",
                    r.rule.name
                )),
                (outcome, Some(v)) => out.push_str(&format!(
                    "{} {:width$}  {clause}  (observed {v:.6})\n",
                    outcome.label(),
                    r.rule.name
                )),
                (outcome, None) => out.push_str(&format!(
                    "{} {:width$}  {clause}\n",
                    outcome.label(),
                    r.rule.name
                )),
            }
        }
        let (pass, warn, fail, skip) = self.tallies();
        out.push_str(&format!(
            "health: {pass} pass, {warn} warn, {fail} fail, {skip} skip\n"
        ));
        out
    }

    /// Order-stable JSON for machine consumers (`chaos_report.json`).
    pub fn to_value(&self) -> Value {
        let rows = self
            .results
            .iter()
            .map(|r| {
                let mut obj = vec![
                    ("name".to_owned(), Value::Str(r.rule.name.clone())),
                    (
                        "outcome".to_owned(),
                        Value::Str(r.outcome.label().to_lowercase()),
                    ),
                    (
                        "clause".to_owned(),
                        Value::Str(format!(
                            "{} {} {}",
                            r.rule.expr, r.rule.op, r.rule.threshold
                        )),
                    ),
                ];
                if let Some(v) = r.value {
                    obj.push(("observed".to_owned(), Value::num(v)));
                }
                if let Outcome::Skip(reason) = &r.outcome {
                    obj.push(("reason".to_owned(), Value::Str(reason.clone())));
                }
                Value::Obj(obj)
            })
            .collect();
        let (pass, warn, fail, skip) = self.tallies();
        Value::Obj(vec![
            ("rules".to_owned(), Value::Arr(rows)),
            ("pass".to_owned(), Value::num(pass as f64)),
            ("warn".to_owned(), Value::num(warn as f64)),
            ("fail".to_owned(), Value::num(fail as f64)),
            ("skip".to_owned(), Value::num(skip as f64)),
        ])
    }
}

/// Evaluates rules against a report.
pub fn evaluate(rules: &[HealthRule], report: &TelemetryReport) -> HealthReport {
    let results = rules
        .iter()
        .map(|rule| match rule.expr.eval(report) {
            Err(reason) => RuleResult {
                rule: rule.clone(),
                value: None,
                outcome: Outcome::Skip(reason),
            },
            Ok(value) => {
                let outcome = if rule.op.holds(value, rule.threshold) {
                    Outcome::Pass
                } else {
                    match rule.severity {
                        Severity::Warn => Outcome::Warn,
                        Severity::Fail => Outcome::Fail,
                    }
                };
                RuleResult {
                    rule: rule.clone(),
                    value: Some(value),
                    outcome,
                }
            }
        })
        .collect();
    HealthReport { results }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> TelemetryReport {
        let mut r = TelemetryReport::default();
        r.counters.insert("quarantine.records".to_owned(), 5);
        r.counters.insert("parse.dis.lines".to_owned(), 1000);
        r.counters.insert("parse.dis.failed".to_owned(), 5);
        r.counters.insert("parse.dis.parsed".to_owned(), 995);
        r.counters.insert("nlp.tagged".to_owned(), 995);
        r.counters.insert("nlp.tag.planner".to_owned(), 700);
        r.counters.insert("nlp.tag.software".to_owned(), 295);
        r.gauges.insert("ocr.mean_cer".to_owned(), 0.01);
        r
    }

    #[test]
    fn default_rules_parse_and_pass_a_healthy_report() {
        let rules = default_rules();
        assert!(rules.len() >= 4);
        let health = evaluate(&rules, &report());
        assert!(!health.failed(), "{}", health.render());
        // Every non-skip rule passed.
        assert!(health
            .results
            .iter()
            .all(|r| !matches!(r.outcome, Outcome::Warn | Outcome::Fail)));
    }

    #[test]
    fn quarantine_breach_fails() {
        let mut r = report();
        r.counters.insert("quarantine.records".to_owned(), 100);
        let health = evaluate(&default_rules(), &r);
        assert!(health.failed());
        let breach = health
            .results
            .iter()
            .find(|x| x.rule.name == "quarantine_rate")
            .unwrap();
        assert_eq!(breach.outcome, Outcome::Fail);
        assert!((breach.value.unwrap() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn warn_severity_does_not_fail_the_report() {
        let mut r = report();
        r.gauges.insert("ocr.mean_cer".to_owned(), 0.5);
        let health = evaluate(&default_rules(), &r);
        assert!(!health.failed());
        assert_eq!(health.tallies().1, 1);
    }

    #[test]
    fn missing_gauge_skips_instead_of_failing() {
        let mut r = report();
        r.gauges.clear();
        let health = evaluate(&default_rules(), &r);
        assert!(!health.failed());
        let skipped = health
            .results
            .iter()
            .find(|x| x.rule.name == "ocr_mean_cer")
            .unwrap();
        assert!(matches!(skipped.outcome, Outcome::Skip(_)));
    }

    #[test]
    fn ratio_of_zero_denominator_is_zero() {
        let expr = Expr::parse("ratio(counter(a),counter(b))").unwrap();
        let r = TelemetryReport::default();
        assert_eq!(expr.eval(&r), Ok(0.0));
    }

    #[test]
    fn nested_ratio_and_hist_selectors_parse() {
        let expr =
            Expr::parse("ratio(sum(nlp.tag.),ratio(counter(a),counter(b)))").unwrap();
        assert_eq!(
            expr.to_string(),
            "ratio(sum(nlp.tag.),ratio(counter(a),counter(b)))"
        );
        // Histogram names may contain the profiler's `;` separator.
        let expr = Expr::parse("p99(profile.wall;stage_tag)").unwrap();
        assert_eq!(expr, Expr::Hist(HistStat::P99, "profile.wall;stage_tag".into()));
        let mut r = TelemetryReport::default();
        assert!(expr.eval(&r).is_err()); // absent histogram → skip
        let mut h = crate::hist::Histogram::new();
        h.record(0.25);
        r.histograms
            .insert("profile.wall;stage_tag".to_owned(), h.summary());
        assert!(expr.eval(&r).is_ok());
    }

    #[test]
    fn parse_errors_name_the_line() {
        assert!(parse_rules("x counter(a) <").unwrap_err().contains("line 1"));
        assert!(parse_rules("\nx mystery(a) < 1")
            .unwrap_err()
            .contains("line 2"));
        assert!(parse_rules("x counter(a) <> 1").is_err());
        assert!(parse_rules("x counter(a) < huge").is_err());
        assert!(parse_rules("x counter(a) < 1 loud").is_err());
    }

    #[test]
    fn render_and_json_cover_all_outcomes() {
        let mut r = report();
        r.counters.insert("quarantine.records".to_owned(), 100);
        r.gauges.clear();
        let health = evaluate(&default_rules(), &r);
        let text = health.render();
        assert!(text.contains("FAIL quarantine_rate"));
        assert!(text.contains("SKIP ocr_mean_cer"));
        let json = health.to_value().render();
        assert!(json.contains("\"outcome\":\"fail\""));
        assert!(json.contains("\"observed\""));
    }
}
