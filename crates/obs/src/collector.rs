//! The collector: explicit, thread-safe accumulation of spans and
//! metrics.
//!
//! No global state is required — the pipeline threads a `&Collector`
//! through its stages. Interior mutability (a `Mutex` around the whole
//! state) keeps the API `&self` so a collector can be shared freely;
//! contention is irrelevant at the pipeline's instrumentation
//! granularity (thousands of updates per run, not millions per second).

use crate::hist::{Histogram, HistogramState};
use crate::report::{FieldValue, LogEvent, SpanNode, TelemetryReport};
use std::collections::{BTreeMap, HashMap};
use std::sync::Mutex;
use std::thread::ThreadId;
use std::time::{Duration, Instant};

#[derive(Debug)]
struct SpanData {
    name: String,
    parent: Option<usize>,
    start: Duration,
    end: Option<Duration>,
    fields: Vec<(String, FieldValue)>,
}

#[derive(Debug, Default)]
struct Inner {
    spans: Vec<SpanData>,
    // Per-thread open-span stacks. A single shared stack would parent a
    // span opened on a pool worker under whatever span another thread
    // pushed last; keying by thread id keeps nesting a per-thread
    // property, so worker-opened spans root at the top level instead of
    // mis-parenting under an unrelated sibling.
    stacks: HashMap<ThreadId, Vec<usize>>,
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
    logs: Vec<LogEvent>,
}

/// A replayable snapshot of one span: arena-indexed parentage,
/// epoch-relative nanosecond timestamps, and fields in record order.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanState {
    /// Span name.
    pub name: String,
    /// Arena index of the parent within the same snapshot (`None` for
    /// a root).
    pub parent: Option<usize>,
    /// Start, in nanoseconds since the collector's epoch.
    pub start_ns: u64,
    /// End, in nanoseconds since the epoch (`None` while open).
    pub end_ns: Option<u64>,
    /// Fields in the order they were attached.
    pub fields: Vec<(String, FieldValue)>,
}

/// A raw, replayable snapshot of everything a collector accumulated:
/// the exact mirror of [`Collector::absorb`]'s by-value input, but as
/// plain data that can be serialized (the artifact cache persists one
/// per stage) and folded back later with [`Collector::absorb_state`].
///
/// Unlike [`TelemetryReport`] this is lossless — histograms keep their
/// raw buckets and exact float sums, spans keep arena parentage — so
/// replaying a snapshot is indistinguishable from re-running the code
/// that recorded it.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CollectorState {
    /// Spans in arena order (parents precede children).
    pub spans: Vec<SpanState>,
    /// Counters in name order.
    pub counters: Vec<(String, u64)>,
    /// Gauges in name order.
    pub gauges: Vec<(String, f64)>,
    /// Histograms in name order, with raw bucket state.
    pub histograms: Vec<(String, HistogramState)>,
    /// Log events in record order.
    pub logs: Vec<LogEvent>,
}

/// Accumulates spans, counters, gauges, histograms, and log events.
#[derive(Debug)]
pub struct Collector {
    inner: Mutex<Inner>,
    epoch: Instant,
    echo: bool,
}

impl Default for Collector {
    fn default() -> Self {
        Collector::new()
    }
}

impl Collector {
    /// An empty collector whose clock starts now.
    pub fn new() -> Collector {
        Collector {
            inner: Mutex::new(Inner::default()),
            epoch: Instant::now(),
            echo: false,
        }
    }

    /// An empty collector that also echoes [`Collector::log`] events to
    /// stderr — the CLI progress-line mode.
    pub fn with_echo() -> Collector {
        Collector {
            echo: true,
            ..Collector::new()
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        // A poisoned lock means a panic mid-update; telemetry is
        // best-effort diagnostics, so keep collecting.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// The instant this collector's clock started; timestamps (span
    /// starts, pool-task timelines) are measured relative to it.
    pub fn epoch(&self) -> Instant {
        self.epoch
    }

    /// Opens a span as a child of the *calling thread's* innermost open
    /// span (a span opened on a thread with no open span becomes a
    /// root). The span closes when the returned guard drops (or via
    /// [`SpanGuard::finish`]).
    pub fn span(&self, name: &str) -> SpanGuard<'_> {
        let start = self.epoch.elapsed();
        let thread = std::thread::current().id();
        let mut inner = self.lock();
        let parent = inner.stacks.get(&thread).and_then(|s| s.last()).copied();
        let index = inner.spans.len();
        inner.spans.push(SpanData {
            name: name.to_owned(),
            parent,
            start,
            end: None,
            fields: Vec::new(),
        });
        inner.stacks.entry(thread).or_default().push(index);
        SpanGuard {
            collector: self,
            index,
            closed: false,
        }
    }

    /// Adds to a counter (creating it at zero).
    pub fn add(&self, name: &str, delta: u64) {
        let mut inner = self.lock();
        *inner.counters.entry(name.to_owned()).or_insert(0) += delta;
    }

    /// Increments a counter by one.
    pub fn incr(&self, name: &str) {
        self.add(name, 1);
    }

    /// Sets a gauge (last write wins).
    pub fn gauge(&self, name: &str, value: f64) {
        self.lock().gauges.insert(name.to_owned(), value);
    }

    /// Records a sample into a histogram (creating it empty).
    pub fn record(&self, name: &str, sample: f64) {
        self.lock()
            .histograms
            .entry(name.to_owned())
            .or_default()
            .record(sample);
    }

    /// Records a timestamped log event (echoed to stderr when the
    /// collector was built with [`Collector::with_echo`]).
    pub fn log(&self, message: &str) {
        let t_s = self.epoch.elapsed().as_secs_f64();
        if self.echo {
            eprintln!("[{t_s:9.3}s] {message}");
        }
        self.lock().logs.push(LogEvent {
            t_s,
            message: message.to_owned(),
        });
    }

    /// An empty shard collector sharing this collector's epoch — the
    /// thread-local accumulator a parallel worker records into.
    ///
    /// Workers on a pool complete in arbitrary order, so they must not
    /// write into a shared collector directly: interleaved counter
    /// updates and histogram samples would make the merged state (and
    /// its float sums) schedule-dependent. Instead each task records
    /// into its own shard and the caller folds the shards back with
    /// [`Collector::absorb`] **in task-index order**, which reproduces
    /// the sequential recording sequence exactly. The shared epoch
    /// keeps any shard span timestamps on this collector's clock.
    pub fn shard(&self) -> Collector {
        Collector {
            inner: Mutex::new(Inner::default()),
            epoch: self.epoch,
            echo: false,
        }
    }

    /// Folds a shard's accumulated state into this collector: counters
    /// add, gauges overwrite (the shard is the later writer),
    /// histograms merge ([`Histogram::merge`]), logs append, and shard
    /// root spans attach under the calling thread's innermost open
    /// span.
    ///
    /// Absorbing per-task shards in task-index order is deterministic:
    /// the result is identical at any worker count, bit-for-bit even
    /// in the order-sensitive float accumulations.
    pub fn absorb(&self, shard: Collector) {
        let shard = shard.inner.into_inner().unwrap_or_else(|e| e.into_inner());
        let thread = std::thread::current().id();
        let mut inner = self.lock();
        let base = inner.spans.len();
        let attach = inner.stacks.get(&thread).and_then(|s| s.last()).copied();
        for mut span in shard.spans {
            span.parent = match span.parent {
                Some(p) => Some(base + p),
                None => attach,
            };
            inner.spans.push(span);
        }
        for (name, delta) in shard.counters {
            *inner.counters.entry(name).or_insert(0) += delta;
        }
        for (name, value) in shard.gauges {
            inner.gauges.insert(name, value);
        }
        for (name, hist) in shard.histograms {
            inner.histograms.entry(name).or_default().merge(&hist);
        }
        inner.logs.extend(shard.logs);
    }

    /// Snapshots the raw accumulated state (typically of a shard, for
    /// the artifact cache) so it can be serialized and later replayed
    /// with [`Collector::absorb_state`].
    pub fn state(&self) -> CollectorState {
        let inner = self.lock();
        CollectorState {
            spans: inner
                .spans
                .iter()
                .map(|s| SpanState {
                    name: s.name.clone(),
                    parent: s.parent,
                    start_ns: s.start.as_nanos() as u64,
                    end_ns: s.end.map(|e| e.as_nanos() as u64),
                    fields: s.fields.clone(),
                })
                .collect(),
            counters: inner.counters.iter().map(|(k, v)| (k.clone(), *v)).collect(),
            gauges: inner.gauges.iter().map(|(k, v)| (k.clone(), *v)).collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|(k, h)| (k.clone(), h.state()))
                .collect(),
            logs: inner.logs.clone(),
        }
    }

    /// Replays a snapshot taken with [`Collector::state`], with
    /// exactly [`Collector::absorb`]'s semantics: counters add, gauges
    /// overwrite, histograms merge bit-identically, logs append, and
    /// snapshot root spans attach under the calling thread's innermost
    /// open span. Replayed span timestamps are the *recording* run's
    /// wall clock — environment-dependent like all timing, and zeroed
    /// by `TelemetryReport::canonical` the same way.
    pub fn absorb_state(&self, state: CollectorState) {
        let thread = std::thread::current().id();
        let mut inner = self.lock();
        let base = inner.spans.len();
        let attach = inner.stacks.get(&thread).and_then(|s| s.last()).copied();
        for span in state.spans {
            inner.spans.push(SpanData {
                name: span.name,
                parent: match span.parent {
                    Some(p) => Some(base + p),
                    None => attach,
                },
                start: Duration::from_nanos(span.start_ns),
                end: span.end_ns.map(Duration::from_nanos),
                fields: span.fields,
            });
        }
        for (name, delta) in state.counters {
            *inner.counters.entry(name).or_insert(0) += delta;
        }
        for (name, value) in state.gauges {
            inner.gauges.insert(name, value);
        }
        for (name, hist) in state.histograms {
            inner
                .histograms
                .entry(name)
                .or_default()
                .merge(&Histogram::from_state(&hist));
        }
        inner.logs.extend(state.logs);
    }

    /// Snapshots everything accumulated so far. Spans still open are
    /// exported with their duration-so-far and `closed: false`.
    pub fn report(&self) -> TelemetryReport {
        let now = self.epoch.elapsed();
        let inner = self.lock();
        // Build the forest bottom-up: children vectors indexed like the
        // arena, then move each node under its parent (children always
        // follow parents in arena order, so draining back-to-front is
        // safe).
        let mut nodes: Vec<Option<SpanNode>> = inner
            .spans
            .iter()
            .map(|s| {
                Some(SpanNode {
                    name: s.name.clone(),
                    start_s: s.start.as_secs_f64(),
                    duration_s: s.end.unwrap_or(now).saturating_sub(s.start).as_secs_f64(),
                    closed: s.end.is_some(),
                    fields: s.fields.clone(),
                    children: Vec::new(),
                })
            })
            .collect();
        let mut roots = Vec::new();
        for i in (0..inner.spans.len()).rev() {
            let node = nodes[i].take().expect("unmoved");
            match inner.spans[i].parent {
                Some(p) => nodes[p]
                    .as_mut()
                    .expect("parents precede children")
                    .children
                    .insert(0, node),
                None => roots.insert(0, node),
            }
        }
        TelemetryReport {
            spans: roots,
            counters: inner.counters.clone(),
            gauges: inner.gauges.clone(),
            histograms: inner
                .histograms
                .iter()
                .map(|(k, h)| (k.clone(), h.summary()))
                .collect(),
            logs: inner.logs.clone(),
        }
    }

    fn close_span(&self, index: usize) {
        let end = self.epoch.elapsed();
        let thread = std::thread::current().id();
        let mut inner = self.lock();
        if inner.spans[index].end.is_none() {
            inner.spans[index].end = Some(end);
        }
        // Normally `index` is the calling thread's innermost open span;
        // guards dropped out of order (or moved across threads) just
        // remove the span from whichever stack it sits on.
        let mut removed = false;
        if let Some(stack) = inner.stacks.get_mut(&thread) {
            if let Some(at) = stack.iter().rposition(|&i| i == index) {
                stack.remove(at);
                removed = true;
            }
        }
        if !removed {
            for stack in inner.stacks.values_mut() {
                if let Some(at) = stack.iter().rposition(|&i| i == index) {
                    stack.remove(at);
                    break;
                }
            }
        }
        inner.stacks.retain(|_, stack| !stack.is_empty());
    }

    fn span_field(&self, index: usize, key: &str, value: FieldValue) {
        self.lock().spans[index].fields.push((key.to_owned(), value));
    }
}

/// Guard for an open span; the span closes when this drops.
#[derive(Debug)]
pub struct SpanGuard<'a> {
    collector: &'a Collector,
    index: usize,
    closed: bool,
}

impl SpanGuard<'_> {
    /// Annotates the span with a key/value field.
    pub fn field(&mut self, key: &str, value: impl Into<FieldValue>) {
        self.collector.span_field(self.index, key, value.into());
    }

    /// Closes the span now (equivalent to dropping the guard).
    pub fn finish(mut self) {
        self.close();
    }

    fn close(&mut self) {
        if !self.closed {
            self.closed = true;
            self.collector.close_span(self.index);
        }
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        self.close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_by_guard_scope() {
        let c = Collector::new();
        {
            let _outer = c.span("outer");
            {
                let _inner = c.span("inner");
            }
            let _sibling = c.span("sibling");
        }
        let r = c.report();
        assert_eq!(r.spans.len(), 1);
        let outer = &r.spans[0];
        assert_eq!(outer.name, "outer");
        let names: Vec<&str> = outer.children.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, ["inner", "sibling"]);
        assert!(outer.children.iter().all(|s| s.closed));
    }

    #[test]
    fn span_timing_monotone_and_contained() {
        let c = Collector::new();
        {
            let _outer = c.span("outer");
            std::thread::sleep(std::time::Duration::from_millis(2));
            let inner = c.span("inner");
            std::thread::sleep(std::time::Duration::from_millis(2));
            inner.finish();
        }
        let r = c.report();
        let outer = &r.spans[0];
        let inner = &outer.children[0];
        assert!(outer.duration_s >= inner.duration_s);
        assert!(inner.start_s >= outer.start_s);
        assert!(inner.duration_s > 0.0);
        assert!(
            inner.start_s + inner.duration_s <= outer.start_s + outer.duration_s + 1e-9
        );
    }

    #[test]
    fn open_spans_snapshot_with_duration_so_far() {
        let c = Collector::new();
        let _open = c.span("still_running");
        let r = c.report();
        assert!(!r.spans[0].closed);
        assert!(r.spans[0].duration_s >= 0.0);
    }

    #[test]
    fn counters_gauges_histograms_accumulate() {
        let c = Collector::new();
        c.add("parse.records", 3);
        c.incr("parse.records");
        c.gauge("ocr.mean_cer", 0.2);
        c.gauge("ocr.mean_cer", 0.1); // last write wins
        c.record("nlp.vote_margin", 1.0);
        c.record("nlp.vote_margin", 3.0);
        let r = c.report();
        assert_eq!(r.counter("parse.records"), 4);
        assert_eq!(r.gauge("ocr.mean_cer"), Some(0.1));
        let h = r.histogram("nlp.vote_margin").unwrap();
        assert_eq!(h.count, 2);
        assert!((h.sum - 4.0).abs() < 1e-12);
    }

    #[test]
    fn fields_attach_in_order() {
        let c = Collector::new();
        {
            let mut s = c.span("stage");
            s.field("records", 5328u64);
            s.field("mode", "passthrough");
        }
        let r = c.report();
        let fields = &r.spans[0].fields;
        assert_eq!(fields[0].0, "records");
        assert_eq!(fields[0].1, FieldValue::U64(5328));
        assert_eq!(fields[1].1, FieldValue::Str("passthrough".to_owned()));
    }

    #[test]
    fn logs_recorded_in_order() {
        let c = Collector::new();
        c.log("first");
        c.log("second");
        let r = c.report();
        let msgs: Vec<&str> = r.logs.iter().map(|l| l.message.as_str()).collect();
        assert_eq!(msgs, ["first", "second"]);
        assert!(r.logs[0].t_s <= r.logs[1].t_s);
    }

    #[test]
    fn shard_absorb_matches_direct_recording() {
        // Record the same event stream directly and via per-item
        // shards merged in item order; the reports must be identical
        // (modulo span timing, which this stream does not use).
        let direct = Collector::new();
        let sharded = Collector::new();
        for i in 0..50u64 {
            let x = 0.01 * i as f64;
            direct.add("stage.items", 1);
            direct.record("stage.score", x);
            direct.gauge("stage.last", x);

            let shard = sharded.shard();
            shard.add("stage.items", 1);
            shard.record("stage.score", x);
            shard.gauge("stage.last", x);
            sharded.absorb(shard);
        }
        let (d, s) = (direct.report(), sharded.report());
        assert_eq!(d.counters, s.counters);
        assert_eq!(d.gauges, s.gauges);
        assert_eq!(d.histograms, s.histograms);
        let dh = d.histogram("stage.score").unwrap();
        let sh = s.histogram("stage.score").unwrap();
        assert_eq!(dh.sum.to_bits(), sh.sum.to_bits());
    }

    #[test]
    fn state_replay_matches_direct_absorb() {
        // Two collectors, identical recording; one absorbs the shard
        // directly, the other absorbs a serial-ready snapshot of an
        // identical shard. The final reports must match exactly,
        // including float bit patterns.
        let record = |shard: &Collector| {
            {
                let mut s = shard.span("stage_ii_parse");
                s.field("parsed", 41u64);
                shard.add("parse.dis.parsed", 41);
                shard.gauge("ocr.mean_cer", 0.125);
                shard.record("parse.latency", 0.5);
                shard.record("parse.latency", 0.25);
            }
            shard.log("stage done");
        };
        let direct = Collector::new();
        let replayed = direct.shard(); // shared epoch, separate state
        {
            let root_d = direct.span("pipeline");
            let shard = direct.shard();
            record(&shard);
            direct.absorb(shard);
            root_d.finish();
        }
        {
            let root_r = replayed.span("pipeline");
            let shard = replayed.shard();
            record(&shard);
            let state = shard.state();
            replayed.absorb_state(state);
            root_r.finish();
        }
        let (d, r) = (direct.report(), replayed.report());
        assert_eq!(d.counters, r.counters);
        assert_eq!(d.gauges, r.gauges);
        assert_eq!(d.histograms, r.histograms);
        let dh = d.histogram("parse.latency").unwrap();
        let rh = r.histogram("parse.latency").unwrap();
        assert_eq!(dh.sum.to_bits(), rh.sum.to_bits());
        assert_eq!(d.spans[0].children[0].name, "stage_ii_parse");
        assert_eq!(r.spans[0].children[0].name, "stage_ii_parse");
        assert_eq!(d.spans[0].children[0].fields, r.spans[0].children[0].fields);
        assert_eq!(d.logs.len(), r.logs.len());
    }

    #[test]
    fn absorbed_spans_attach_under_open_span() {
        let c = Collector::new();
        let stage = c.span("stage_iii_tag");
        let shard = c.shard();
        {
            let mut task = shard.span("classify");
            task.field("record", 7u64);
        }
        c.absorb(shard);
        stage.finish();
        let r = c.report();
        assert_eq!(r.spans.len(), 1);
        assert_eq!(r.spans[0].children[0].name, "classify");
        assert!(r.spans[0].children[0].closed);
    }

    #[test]
    fn absorb_into_idle_collector_roots_shard_spans() {
        let c = Collector::new();
        let shard = c.shard();
        drop(shard.span("orphan"));
        c.absorb(shard);
        let r = c.report();
        assert_eq!(r.spans.len(), 1);
        assert_eq!(r.spans[0].name, "orphan");
    }

    #[test]
    fn worker_thread_spans_do_not_parent_under_other_threads() {
        // Regression: with a single shared span stack, a span opened on
        // a pool worker parented under whatever span another thread had
        // pushed last. Per-thread stacks make worker-opened spans roots
        // (their thread has no open span) and keep same-thread nesting.
        let c = Collector::new();
        let main_stage = c.span("main_stage");
        std::thread::scope(|scope| {
            for w in 0..4 {
                let c = &c;
                scope.spawn(move || {
                    let outer = c.span(&format!("worker_{w}"));
                    {
                        let _inner = c.span(&format!("worker_{w}_inner"));
                    }
                    outer.finish();
                });
            }
        });
        main_stage.finish();
        let r = c.report();
        // main_stage has no children; each worker span is its own root
        // with exactly its own inner span nested beneath.
        let main = r.find_span("main_stage").expect("main stage recorded");
        assert!(main.children.is_empty(), "no worker span may mis-parent");
        assert_eq!(r.spans.len(), 5);
        for w in 0..4 {
            let root = r
                .find_span(&format!("worker_{w}"))
                .expect("worker span is a root");
            assert_eq!(root.children.len(), 1);
            assert_eq!(root.children[0].name, format!("worker_{w}_inner"));
        }
    }

    #[test]
    fn out_of_order_guard_drop_does_not_corrupt_tree() {
        let c = Collector::new();
        let a = c.span("a");
        let b = c.span("b");
        drop(a); // closed before its child's guard
        drop(b);
        let r = c.report();
        assert_eq!(r.spans.len(), 1);
        assert_eq!(r.spans[0].children[0].name, "b");
        assert!(r.spans[0].closed && r.spans[0].children[0].closed);
    }
}
