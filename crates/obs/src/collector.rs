//! The collector: explicit, thread-safe accumulation of spans and
//! metrics.
//!
//! No global state is required — the pipeline threads a `&Collector`
//! through its stages. Interior mutability (a `Mutex` around the whole
//! state) keeps the API `&self` so a collector can be shared freely;
//! contention is irrelevant at the pipeline's instrumentation
//! granularity (thousands of updates per run, not millions per second).

use crate::flight::{self, FlightEvent, FlightKind, FlightRing, FlightSnapshot};
use crate::hist::{Histogram, HistogramState};
use crate::report::{FieldValue, LogEvent, LogLevel, SpanNode, TelemetryReport};
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::thread::ThreadId;
use std::time::{Duration, Instant};

/// The stderr-echo threshold from `DISENGAGE_LOG`
/// (`off|warn|info|debug`, default `info`). Gates *only* the echo:
/// recording is unconditional, so reports and flight dumps never
/// depend on the environment.
fn echo_filter() -> Option<LogLevel> {
    static FILTER: OnceLock<Option<LogLevel>> = OnceLock::new();
    *FILTER.get_or_init(|| match std::env::var("DISENGAGE_LOG").as_deref() {
        Ok("off") => None,
        Ok("warn") => Some(LogLevel::Warn),
        Ok("debug") => Some(LogLevel::Debug),
        // `info`, unset, or unrecognized: the default.
        _ => Some(LogLevel::Info),
    })
}

#[derive(Debug)]
struct SpanData {
    name: String,
    parent: Option<usize>,
    start: Duration,
    end: Option<Duration>,
    fields: Vec<(String, FieldValue)>,
}

#[derive(Debug)]
struct Inner {
    spans: Vec<SpanData>,
    // Per-thread open-span stacks. A single shared stack would parent a
    // span opened on a pool worker under whatever span another thread
    // pushed last; keying by thread id keeps nesting a per-thread
    // property, so worker-opened spans root at the top level instead of
    // mis-parenting under an unrelated sibling.
    stacks: HashMap<ThreadId, Vec<usize>>,
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
    logs: Vec<LogEvent>,
    // Always-on flight recorder ring (see crate::flight). Shares the
    // collector's mutex so event order is exactly recording order.
    flight: FlightRing,
}

impl Default for Inner {
    fn default() -> Inner {
        Inner {
            spans: Vec::new(),
            stacks: HashMap::new(),
            counters: BTreeMap::new(),
            gauges: BTreeMap::new(),
            histograms: BTreeMap::new(),
            logs: Vec::new(),
            flight: FlightRing::default(),
        }
    }
}

/// A replayable snapshot of one span: arena-indexed parentage,
/// epoch-relative nanosecond timestamps, and fields in record order.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanState {
    /// Span name.
    pub name: String,
    /// Arena index of the parent within the same snapshot (`None` for
    /// a root).
    pub parent: Option<usize>,
    /// Start, in nanoseconds since the collector's epoch.
    pub start_ns: u64,
    /// End, in nanoseconds since the epoch (`None` while open).
    pub end_ns: Option<u64>,
    /// Fields in the order they were attached.
    pub fields: Vec<(String, FieldValue)>,
}

/// A raw, replayable snapshot of everything a collector accumulated:
/// the exact mirror of [`Collector::absorb`]'s by-value input, but as
/// plain data that can be serialized (the artifact cache persists one
/// per stage) and folded back later with [`Collector::absorb_state`].
///
/// Unlike [`TelemetryReport`] this is lossless — histograms keep their
/// raw buckets and exact float sums, spans keep arena parentage — so
/// replaying a snapshot is indistinguishable from re-running the code
/// that recorded it.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CollectorState {
    /// Spans in arena order (parents precede children).
    pub spans: Vec<SpanState>,
    /// Counters in name order.
    pub counters: Vec<(String, u64)>,
    /// Gauges in name order.
    pub gauges: Vec<(String, f64)>,
    /// Histograms in name order, with raw bucket state.
    pub histograms: Vec<(String, HistogramState)>,
    /// Log events in record order.
    pub logs: Vec<LogEvent>,
}

/// Accumulates spans, counters, gauges, histograms, log events, and
/// the flight-recorder ring.
#[derive(Debug)]
pub struct Collector {
    inner: Mutex<Inner>,
    epoch: Instant,
    echo: bool,
    // Wall time spent inside recording operations, for the honest
    // `obs.overhead.frac` gauge. Atomic (not under the mutex) so the
    // accounting itself stays cheap.
    overhead_ns: AtomicU64,
}

impl Default for Collector {
    fn default() -> Self {
        Collector::new()
    }
}

impl Collector {
    /// An empty collector whose clock starts now.
    pub fn new() -> Collector {
        Collector {
            inner: Mutex::new(Inner::default()),
            epoch: Instant::now(),
            echo: false,
            overhead_ns: AtomicU64::new(0),
        }
    }

    /// An empty collector that also echoes [`Collector::log`] events to
    /// stderr — the CLI progress-line mode.
    pub fn with_echo() -> Collector {
        Collector {
            echo: true,
            ..Collector::new()
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        // A poisoned lock means a panic mid-update; telemetry is
        // best-effort diagnostics, so keep collecting.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn note_overhead(&self, t0: Instant) {
        self.overhead_ns
            .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
    }

    /// Total wall time spent on flight-recorder work — ring pushes for
    /// spans, watched counters, logs, named events, and ring absorbs
    /// (this collector only; absorbed shards contribute theirs on
    /// absorb). Deliberately *not* the whole recording path: counter
    /// and histogram bookkeeping predates the recorder and is gated by
    /// the per-stage wall metrics; this ledger isolates what the
    /// always-on recorder adds, which `obs.overhead.frac` holds under
    /// its 2% ceiling. Unwatched counters pay only a prefix check —
    /// timing them would itself be the dominant cost on hot paths.
    pub fn overhead_seconds(&self) -> f64 {
        self.overhead_ns.load(Ordering::Relaxed) as f64 / 1e9
    }

    /// The instant this collector's clock started; timestamps (span
    /// starts, pool-task timelines) are measured relative to it.
    pub fn epoch(&self) -> Instant {
        self.epoch
    }

    /// Opens a span as a child of the *calling thread's* innermost open
    /// span (a span opened on a thread with no open span becomes a
    /// root). The span closes when the returned guard drops (or via
    /// [`SpanGuard::finish`]).
    pub fn span(&self, name: &str) -> SpanGuard<'_> {
        let start = self.epoch.elapsed();
        let thread = std::thread::current().id();
        let mut inner = self.lock();
        let parent = inner.stacks.get(&thread).and_then(|s| s.last()).copied();
        let index = inner.spans.len();
        inner.spans.push(SpanData {
            name: name.to_owned(),
            parent,
            start,
            end: None,
            fields: Vec::new(),
        });
        inner.stacks.entry(thread).or_default().push(index);
        let t0 = Instant::now();
        inner.flight.push(FlightEvent {
            t_s: start.as_secs_f64(),
            kind: FlightKind::SpanOpen {
                name: name.to_owned(),
            },
        });
        self.note_overhead(t0);
        drop(inner);
        SpanGuard {
            collector: self,
            index,
            closed: false,
        }
    }

    /// Adds to a counter (creating it at zero). Deltas on watched
    /// prefixes ([`flight::watched`]) also land in the flight ring.
    pub fn add(&self, name: &str, delta: u64) {
        let mut inner = self.lock();
        *inner.counters.entry(name.to_owned()).or_insert(0) += delta;
        if flight::watched(name) {
            let t0 = Instant::now();
            let t_s = self.epoch.elapsed().as_secs_f64();
            inner.flight.push(FlightEvent {
                t_s,
                kind: FlightKind::Counter {
                    name: name.to_owned(),
                    delta,
                },
            });
            self.note_overhead(t0);
        }
    }

    /// Increments a counter by one.
    pub fn incr(&self, name: &str) {
        self.add(name, 1);
    }

    /// Sets a gauge (last write wins).
    pub fn gauge(&self, name: &str, value: f64) {
        self.lock().gauges.insert(name.to_owned(), value);
    }

    /// Records a sample into a histogram (creating it empty).
    pub fn record(&self, name: &str, sample: f64) {
        self.lock()
            .histograms
            .entry(name.to_owned())
            .or_default()
            .record(sample);
    }

    /// Records an info-level log event (echoed to stderr when the
    /// collector was built with [`Collector::with_echo`] and the
    /// `DISENGAGE_LOG` filter — `off|warn|info|debug`, default `info`
    /// — admits the level).
    pub fn log(&self, message: &str) {
        self.log_at(LogLevel::Info, message);
    }

    /// Records a warn-level log event.
    pub fn warn(&self, message: &str) {
        self.log_at(LogLevel::Warn, message);
    }

    /// Records an info-level log event (alias of [`Collector::log`]).
    pub fn info(&self, message: &str) {
        self.log_at(LogLevel::Info, message);
    }

    /// Records a debug-level log event (echo off by default).
    pub fn debug(&self, message: &str) {
        self.log_at(LogLevel::Debug, message);
    }

    /// Records a log event at an explicit level. Recording is
    /// unconditional — `DISENGAGE_LOG` gates only the stderr echo —
    /// so the report and flight ring never depend on the environment.
    pub fn log_at(&self, level: LogLevel, message: &str) {
        let t_s = self.epoch.elapsed().as_secs_f64();
        if self.echo && echo_filter().is_some_and(|cap| level <= cap) {
            match level {
                LogLevel::Info => eprintln!("[{t_s:9.3}s] {message}"),
                LogLevel::Warn => eprintln!("[{t_s:9.3}s] warn: {message}"),
                LogLevel::Debug => eprintln!("[{t_s:9.3}s] debug: {message}"),
            }
        }
        let mut inner = self.lock();
        inner.logs.push(LogEvent {
            t_s,
            level,
            message: message.to_owned(),
        });
        let t0 = Instant::now();
        inner.flight.push(FlightEvent {
            t_s,
            kind: FlightKind::Log {
                level,
                message: message.to_owned(),
            },
        });
        self.note_overhead(t0);
    }

    /// Records an explicit named flight event (quarantine, degrade,
    /// injected fault, cache reclaim, interrupt): ring-only, not a
    /// metric.
    pub fn event(&self, name: &str, detail: &str) {
        let t0 = Instant::now();
        let t_s = self.epoch.elapsed().as_secs_f64();
        self.lock().flight.push(FlightEvent {
            t_s,
            kind: FlightKind::Event {
                name: name.to_owned(),
                detail: detail.to_owned(),
            },
        });
        self.note_overhead(t0);
    }

    /// Snapshot of the flight ring: events oldest-first plus the
    /// eviction count.
    pub fn flight_snapshot(&self) -> FlightSnapshot {
        let inner = self.lock();
        FlightSnapshot {
            events: inner.flight.events().cloned().collect(),
            dropped: inner.flight.dropped(),
        }
    }

    /// An empty shard collector sharing this collector's epoch — the
    /// thread-local accumulator a parallel worker records into.
    ///
    /// Workers on a pool complete in arbitrary order, so they must not
    /// write into a shared collector directly: interleaved counter
    /// updates and histogram samples would make the merged state (and
    /// its float sums) schedule-dependent. Instead each task records
    /// into its own shard and the caller folds the shards back with
    /// [`Collector::absorb`] **in task-index order**, which reproduces
    /// the sequential recording sequence exactly. The shared epoch
    /// keeps any shard span timestamps on this collector's clock.
    pub fn shard(&self) -> Collector {
        Collector {
            inner: Mutex::new(Inner::default()),
            epoch: self.epoch,
            echo: false,
            overhead_ns: AtomicU64::new(0),
        }
    }

    /// Folds a shard's accumulated state into this collector: counters
    /// add, gauges overwrite (the shard is the later writer),
    /// histograms merge ([`Histogram::merge`]), logs append, flight
    /// events append in recorded order (drop counts add), recording
    /// overhead adds, and shard root spans attach under the calling
    /// thread's innermost open span.
    ///
    /// Absorbing per-task shards in task-index order is deterministic:
    /// the result is identical at any worker count, bit-for-bit even
    /// in the order-sensitive float accumulations — and the flight
    /// ring inherits the same guarantee, which is what makes canonical
    /// `flight.json` dumps byte-identical at any `--jobs`.
    pub fn absorb(&self, shard: Collector) {
        self.overhead_ns.fetch_add(
            shard.overhead_ns.load(Ordering::Relaxed),
            Ordering::Relaxed,
        );
        let shard = shard.inner.into_inner().unwrap_or_else(|e| e.into_inner());
        let thread = std::thread::current().id();
        let mut inner = self.lock();
        let base = inner.spans.len();
        let attach = inner.stacks.get(&thread).and_then(|s| s.last()).copied();
        for mut span in shard.spans {
            span.parent = match span.parent {
                Some(p) => Some(base + p),
                None => attach,
            };
            inner.spans.push(span);
        }
        for (name, delta) in shard.counters {
            *inner.counters.entry(name).or_insert(0) += delta;
        }
        for (name, value) in shard.gauges {
            inner.gauges.insert(name, value);
        }
        for (name, hist) in shard.histograms {
            inner.histograms.entry(name).or_default().merge(&hist);
        }
        inner.logs.extend(shard.logs);
        let t0 = Instant::now();
        inner.flight.absorb(shard.flight);
        self.note_overhead(t0);
    }

    /// Snapshots the raw accumulated state (typically of a shard, for
    /// the artifact cache) so it can be serialized and later replayed
    /// with [`Collector::absorb_state`]. Flight-ring events are
    /// deliberately *not* part of the state: a cache-replayed stage
    /// contributes no flight events beyond its own `cache.hit`
    /// counters, which is exactly what a postmortem should show.
    pub fn state(&self) -> CollectorState {
        let inner = self.lock();
        CollectorState {
            spans: inner
                .spans
                .iter()
                .map(|s| SpanState {
                    name: s.name.clone(),
                    parent: s.parent,
                    start_ns: s.start.as_nanos() as u64,
                    end_ns: s.end.map(|e| e.as_nanos() as u64),
                    fields: s.fields.clone(),
                })
                .collect(),
            counters: inner.counters.iter().map(|(k, v)| (k.clone(), *v)).collect(),
            gauges: inner.gauges.iter().map(|(k, v)| (k.clone(), *v)).collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|(k, h)| (k.clone(), h.state()))
                .collect(),
            logs: inner.logs.clone(),
        }
    }

    /// Replays a snapshot taken with [`Collector::state`], with
    /// exactly [`Collector::absorb`]'s semantics: counters add, gauges
    /// overwrite, histograms merge bit-identically, logs append, and
    /// snapshot root spans attach under the calling thread's innermost
    /// open span. Replayed span timestamps are the *recording* run's
    /// wall clock — environment-dependent like all timing, and zeroed
    /// by `TelemetryReport::canonical` the same way.
    pub fn absorb_state(&self, state: CollectorState) {
        let thread = std::thread::current().id();
        let mut inner = self.lock();
        let base = inner.spans.len();
        let attach = inner.stacks.get(&thread).and_then(|s| s.last()).copied();
        for span in state.spans {
            inner.spans.push(SpanData {
                name: span.name,
                parent: match span.parent {
                    Some(p) => Some(base + p),
                    None => attach,
                },
                start: Duration::from_nanos(span.start_ns),
                end: span.end_ns.map(Duration::from_nanos),
                fields: span.fields,
            });
        }
        for (name, delta) in state.counters {
            *inner.counters.entry(name).or_insert(0) += delta;
        }
        for (name, value) in state.gauges {
            inner.gauges.insert(name, value);
        }
        for (name, hist) in state.histograms {
            inner
                .histograms
                .entry(name)
                .or_default()
                .merge(&Histogram::from_state(&hist));
        }
        inner.logs.extend(state.logs);
    }

    /// Snapshots everything accumulated so far. Spans still open are
    /// exported with their duration-so-far and `closed: false`.
    pub fn report(&self) -> TelemetryReport {
        let now = self.epoch.elapsed();
        let inner = self.lock();
        // Build the forest bottom-up: children vectors indexed like the
        // arena, then move each node under its parent (children always
        // follow parents in arena order, so draining back-to-front is
        // safe).
        let mut nodes: Vec<Option<SpanNode>> = inner
            .spans
            .iter()
            .map(|s| {
                Some(SpanNode {
                    name: s.name.clone(),
                    start_s: s.start.as_secs_f64(),
                    duration_s: s.end.unwrap_or(now).saturating_sub(s.start).as_secs_f64(),
                    closed: s.end.is_some(),
                    fields: s.fields.clone(),
                    children: Vec::new(),
                })
            })
            .collect();
        let mut roots = Vec::new();
        for i in (0..inner.spans.len()).rev() {
            let node = nodes[i].take().expect("unmoved");
            match inner.spans[i].parent {
                Some(p) => nodes[p]
                    .as_mut()
                    .expect("parents precede children")
                    .children
                    .insert(0, node),
                None => roots.insert(0, node),
            }
        }
        // Surface the ring's eviction ledger as a counter: drops are a
        // deterministic function of the event stream, so this survives
        // canonical() and the byte-identity suites.
        let mut counters = inner.counters.clone();
        let dropped = inner.flight.dropped();
        if dropped > 0 {
            *counters.entry(flight::DROP_COUNTER.to_owned()).or_insert(0) += dropped;
        }
        TelemetryReport {
            spans: roots,
            counters,
            gauges: inner.gauges.clone(),
            histograms: inner
                .histograms
                .iter()
                .map(|(k, h)| (k.clone(), h.summary()))
                .collect(),
            logs: inner.logs.clone(),
        }
    }

    fn close_span(&self, index: usize) {
        let end = self.epoch.elapsed();
        let thread = std::thread::current().id();
        let mut inner = self.lock();
        if inner.spans[index].end.is_none() {
            inner.spans[index].end = Some(end);
            let name = inner.spans[index].name.clone();
            let t0 = Instant::now();
            inner.flight.push(FlightEvent {
                t_s: end.as_secs_f64(),
                kind: FlightKind::SpanClose { name },
            });
            self.note_overhead(t0);
        }
        // Normally `index` is the calling thread's innermost open span;
        // guards dropped out of order (or moved across threads) just
        // remove the span from whichever stack it sits on.
        let mut removed = false;
        if let Some(stack) = inner.stacks.get_mut(&thread) {
            if let Some(at) = stack.iter().rposition(|&i| i == index) {
                stack.remove(at);
                removed = true;
            }
        }
        if !removed {
            for stack in inner.stacks.values_mut() {
                if let Some(at) = stack.iter().rposition(|&i| i == index) {
                    stack.remove(at);
                    break;
                }
            }
        }
        inner.stacks.retain(|_, stack| !stack.is_empty());
    }

    fn span_field(&self, index: usize, key: &str, value: FieldValue) {
        self.lock().spans[index].fields.push((key.to_owned(), value));
    }
}

/// Guard for an open span; the span closes when this drops.
#[derive(Debug)]
pub struct SpanGuard<'a> {
    collector: &'a Collector,
    index: usize,
    closed: bool,
}

impl SpanGuard<'_> {
    /// Annotates the span with a key/value field.
    pub fn field(&mut self, key: &str, value: impl Into<FieldValue>) {
        self.collector.span_field(self.index, key, value.into());
    }

    /// Closes the span now (equivalent to dropping the guard).
    pub fn finish(mut self) {
        self.close();
    }

    fn close(&mut self) {
        if !self.closed {
            self.closed = true;
            self.collector.close_span(self.index);
        }
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        self.close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_by_guard_scope() {
        let c = Collector::new();
        {
            let _outer = c.span("outer");
            {
                let _inner = c.span("inner");
            }
            let _sibling = c.span("sibling");
        }
        let r = c.report();
        assert_eq!(r.spans.len(), 1);
        let outer = &r.spans[0];
        assert_eq!(outer.name, "outer");
        let names: Vec<&str> = outer.children.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, ["inner", "sibling"]);
        assert!(outer.children.iter().all(|s| s.closed));
    }

    #[test]
    fn span_timing_monotone_and_contained() {
        let c = Collector::new();
        {
            let _outer = c.span("outer");
            std::thread::sleep(std::time::Duration::from_millis(2));
            let inner = c.span("inner");
            std::thread::sleep(std::time::Duration::from_millis(2));
            inner.finish();
        }
        let r = c.report();
        let outer = &r.spans[0];
        let inner = &outer.children[0];
        assert!(outer.duration_s >= inner.duration_s);
        assert!(inner.start_s >= outer.start_s);
        assert!(inner.duration_s > 0.0);
        assert!(
            inner.start_s + inner.duration_s <= outer.start_s + outer.duration_s + 1e-9
        );
    }

    #[test]
    fn open_spans_snapshot_with_duration_so_far() {
        let c = Collector::new();
        let _open = c.span("still_running");
        let r = c.report();
        assert!(!r.spans[0].closed);
        assert!(r.spans[0].duration_s >= 0.0);
    }

    #[test]
    fn counters_gauges_histograms_accumulate() {
        let c = Collector::new();
        c.add("parse.records", 3);
        c.incr("parse.records");
        c.gauge("ocr.mean_cer", 0.2);
        c.gauge("ocr.mean_cer", 0.1); // last write wins
        c.record("nlp.vote_margin", 1.0);
        c.record("nlp.vote_margin", 3.0);
        let r = c.report();
        assert_eq!(r.counter("parse.records"), 4);
        assert_eq!(r.gauge("ocr.mean_cer"), Some(0.1));
        let h = r.histogram("nlp.vote_margin").unwrap();
        assert_eq!(h.count, 2);
        assert!((h.sum - 4.0).abs() < 1e-12);
    }

    #[test]
    fn fields_attach_in_order() {
        let c = Collector::new();
        {
            let mut s = c.span("stage");
            s.field("records", 5328u64);
            s.field("mode", "passthrough");
        }
        let r = c.report();
        let fields = &r.spans[0].fields;
        assert_eq!(fields[0].0, "records");
        assert_eq!(fields[0].1, FieldValue::U64(5328));
        assert_eq!(fields[1].1, FieldValue::Str("passthrough".to_owned()));
    }

    #[test]
    fn logs_recorded_in_order() {
        let c = Collector::new();
        c.log("first");
        c.log("second");
        let r = c.report();
        let msgs: Vec<&str> = r.logs.iter().map(|l| l.message.as_str()).collect();
        assert_eq!(msgs, ["first", "second"]);
        assert!(r.logs[0].t_s <= r.logs[1].t_s);
    }

    #[test]
    fn shard_absorb_matches_direct_recording() {
        // Record the same event stream directly and via per-item
        // shards merged in item order; the reports must be identical
        // (modulo span timing, which this stream does not use).
        let direct = Collector::new();
        let sharded = Collector::new();
        for i in 0..50u64 {
            let x = 0.01 * i as f64;
            direct.add("stage.items", 1);
            direct.record("stage.score", x);
            direct.gauge("stage.last", x);

            let shard = sharded.shard();
            shard.add("stage.items", 1);
            shard.record("stage.score", x);
            shard.gauge("stage.last", x);
            sharded.absorb(shard);
        }
        let (d, s) = (direct.report(), sharded.report());
        assert_eq!(d.counters, s.counters);
        assert_eq!(d.gauges, s.gauges);
        assert_eq!(d.histograms, s.histograms);
        let dh = d.histogram("stage.score").unwrap();
        let sh = s.histogram("stage.score").unwrap();
        assert_eq!(dh.sum.to_bits(), sh.sum.to_bits());
    }

    #[test]
    fn state_replay_matches_direct_absorb() {
        // Two collectors, identical recording; one absorbs the shard
        // directly, the other absorbs a serial-ready snapshot of an
        // identical shard. The final reports must match exactly,
        // including float bit patterns.
        let record = |shard: &Collector| {
            {
                let mut s = shard.span("stage_ii_parse");
                s.field("parsed", 41u64);
                shard.add("parse.dis.parsed", 41);
                shard.gauge("ocr.mean_cer", 0.125);
                shard.record("parse.latency", 0.5);
                shard.record("parse.latency", 0.25);
            }
            shard.log("stage done");
        };
        let direct = Collector::new();
        let replayed = direct.shard(); // shared epoch, separate state
        {
            let root_d = direct.span("pipeline");
            let shard = direct.shard();
            record(&shard);
            direct.absorb(shard);
            root_d.finish();
        }
        {
            let root_r = replayed.span("pipeline");
            let shard = replayed.shard();
            record(&shard);
            let state = shard.state();
            replayed.absorb_state(state);
            root_r.finish();
        }
        let (d, r) = (direct.report(), replayed.report());
        assert_eq!(d.counters, r.counters);
        assert_eq!(d.gauges, r.gauges);
        assert_eq!(d.histograms, r.histograms);
        let dh = d.histogram("parse.latency").unwrap();
        let rh = r.histogram("parse.latency").unwrap();
        assert_eq!(dh.sum.to_bits(), rh.sum.to_bits());
        assert_eq!(d.spans[0].children[0].name, "stage_ii_parse");
        assert_eq!(r.spans[0].children[0].name, "stage_ii_parse");
        assert_eq!(d.spans[0].children[0].fields, r.spans[0].children[0].fields);
        assert_eq!(d.logs.len(), r.logs.len());
    }

    #[test]
    fn absorbed_spans_attach_under_open_span() {
        let c = Collector::new();
        let stage = c.span("stage_iii_tag");
        let shard = c.shard();
        {
            let mut task = shard.span("classify");
            task.field("record", 7u64);
        }
        c.absorb(shard);
        stage.finish();
        let r = c.report();
        assert_eq!(r.spans.len(), 1);
        assert_eq!(r.spans[0].children[0].name, "classify");
        assert!(r.spans[0].children[0].closed);
    }

    #[test]
    fn absorb_into_idle_collector_roots_shard_spans() {
        let c = Collector::new();
        let shard = c.shard();
        drop(shard.span("orphan"));
        c.absorb(shard);
        let r = c.report();
        assert_eq!(r.spans.len(), 1);
        assert_eq!(r.spans[0].name, "orphan");
    }

    #[test]
    fn worker_thread_spans_do_not_parent_under_other_threads() {
        // Regression: with a single shared span stack, a span opened on
        // a pool worker parented under whatever span another thread had
        // pushed last. Per-thread stacks make worker-opened spans roots
        // (their thread has no open span) and keep same-thread nesting.
        let c = Collector::new();
        let main_stage = c.span("main_stage");
        std::thread::scope(|scope| {
            for w in 0..4 {
                let c = &c;
                scope.spawn(move || {
                    let outer = c.span(&format!("worker_{w}"));
                    {
                        let _inner = c.span(&format!("worker_{w}_inner"));
                    }
                    outer.finish();
                });
            }
        });
        main_stage.finish();
        let r = c.report();
        // main_stage has no children; each worker span is its own root
        // with exactly its own inner span nested beneath.
        let main = r.find_span("main_stage").expect("main stage recorded");
        assert!(main.children.is_empty(), "no worker span may mis-parent");
        assert_eq!(r.spans.len(), 5);
        for w in 0..4 {
            let root = r
                .find_span(&format!("worker_{w}"))
                .expect("worker span is a root");
            assert_eq!(root.children.len(), 1);
            assert_eq!(root.children[0].name, format!("worker_{w}_inner"));
        }
    }

    #[test]
    fn flight_ring_mirrors_watched_traffic_only() {
        let c = Collector::new();
        {
            let _s = c.span("stage_ii_parse");
            c.add("quarantine.records", 2);
            c.add("nlp.tag.planner", 1); // not a watch prefix
            c.warn("artifact degraded");
            c.event("interrupt", "normalize");
        }
        let kinds: Vec<String> = c
            .flight_snapshot()
            .events
            .iter()
            .map(|e| match &e.kind {
                FlightKind::SpanOpen { name } => format!("open:{name}"),
                FlightKind::SpanClose { name } => format!("close:{name}"),
                FlightKind::Counter { name, delta } => format!("counter:{name}+{delta}"),
                FlightKind::Log { message, .. } => format!("log:{message}"),
                FlightKind::Event { name, .. } => format!("event:{name}"),
                FlightKind::Task { .. } => "task".to_owned(),
            })
            .collect();
        assert_eq!(
            kinds,
            [
                "open:stage_ii_parse",
                "counter:quarantine.records+2",
                "log:artifact degraded",
                "event:interrupt",
                "close:stage_ii_parse",
            ]
        );
    }

    #[test]
    fn flight_shard_absorb_matches_direct_recording() {
        let direct = Collector::new();
        let sharded = Collector::new();
        for i in 0..10u64 {
            direct.add("chaos.injected.total", i);
            direct.event("chaos.fault", &format!("doc {i}"));

            let shard = sharded.shard();
            shard.add("chaos.injected.total", i);
            shard.event("chaos.fault", &format!("doc {i}"));
            sharded.absorb(shard);
        }
        let (d, s) = (direct.flight_snapshot(), sharded.flight_snapshot());
        assert_eq!(d.dropped, s.dropped);
        assert_eq!(
            d.events.iter().map(|e| &e.kind).collect::<Vec<_>>(),
            s.events.iter().map(|e| &e.kind).collect::<Vec<_>>()
        );
    }

    #[test]
    fn report_surfaces_flight_drops_as_a_counter() {
        let c = Collector::new();
        let capacity = flight::DEFAULT_CAPACITY as u64;
        for i in 0..capacity + 5 {
            c.event("spam", &i.to_string());
        }
        let r = c.report();
        assert_eq!(r.counter(flight::DROP_COUNTER), 5);
        // Survives canonicalization: drops are workload facts.
        assert_eq!(r.canonical().counter(flight::DROP_COUNTER), 5);
    }

    #[test]
    fn log_levels_recorded_regardless_of_echo_filter() {
        let c = Collector::new();
        c.warn("w");
        c.info("i");
        c.debug("d");
        c.log("legacy");
        let r = c.report();
        let levels: Vec<LogLevel> = r.logs.iter().map(|l| l.level).collect();
        assert_eq!(
            levels,
            [
                LogLevel::Warn,
                LogLevel::Info,
                LogLevel::Debug,
                LogLevel::Info
            ]
        );
    }

    #[test]
    fn recording_overhead_counts_ring_work_only() {
        // Unwatched counters never touch the ring: their overhead
        // ledger stays at exactly zero (hot paths pay a prefix check,
        // not a clock read).
        let c = Collector::new();
        for _ in 0..100 {
            c.incr("x");
        }
        assert_eq!(c.overhead_seconds(), 0.0);
        // Watched counters, spans, and shard ring-absorbs are timed.
        for _ in 0..100 {
            c.incr("quarantine.records");
        }
        let shard = c.shard();
        shard.incr("quarantine.records");
        c.absorb(shard);
        assert!(c.overhead_seconds() > 0.0);
    }

    #[test]
    fn out_of_order_guard_drop_does_not_corrupt_tree() {
        let c = Collector::new();
        let a = c.span("a");
        let b = c.span("b");
        drop(a); // closed before its child's guard
        drop(b);
        let r = c.report();
        assert_eq!(r.spans.len(), 1);
        assert_eq!(r.spans[0].children[0].name, "b");
        assert!(r.spans[0].closed && r.spans[0].children[0].closed);
    }
}
