//! Prometheus/OpenMetrics text-format exposition of a
//! [`TelemetryReport`], plus a validator for the `check-prom`
//! command.
//!
//! The future `disengage serve` daemon (ROADMAP item 2) needs a
//! `/metrics` endpoint; this module is that endpoint's body, produced
//! from the same snapshot every other exporter reads.
//!
//! Name escaping (documented in DESIGN.md §16): internal metric names
//! are dot-namespaced (`parse.dis.parsed`) and the profiler uses `;`
//! as a stack separator (`profile.wall;stage_tag;compute`). The
//! Prometheus grammar allows `[a-zA-Z_:][a-zA-Z0-9_:]*`, so:
//!
//! | internal            | exposition                  |
//! |---------------------|-----------------------------|
//! | `.`                 | `_`                         |
//! | `;` (stack frame)   | `:` (recording-rule style)  |
//! | any other non-alnum | `_`                         |
//! | (all names)         | `disengage_` prefix         |
//!
//! Counters additionally get the conventional `_total` suffix.
//! Histograms are exported as cumulative `_bucket{le="..."}` series
//! (the in-tree [`crate::hist`] stores per-bucket counts; this module
//! accumulates them), a `+Inf` bucket, `_sum`, and `_count`.

use crate::report::TelemetryReport;
use std::fmt::Write as _;

/// Prefix every exposed metric name carries.
pub const NAME_PREFIX: &str = "disengage_";

/// Escapes an internal metric name into a valid Prometheus name (see
/// the module table).
pub fn metric_name(raw: &str) -> String {
    let mut out = String::with_capacity(NAME_PREFIX.len() + raw.len());
    out.push_str(NAME_PREFIX);
    for c in raw.chars() {
        match c {
            'a'..='z' | 'A'..='Z' | '0'..='9' | '_' => out.push(c),
            ';' => out.push(':'),
            _ => out.push('_'),
        }
    }
    out
}

/// Formats a sample value the way Prometheus expects (`+Inf`/`-Inf`/
/// `NaN` spellings for non-finite floats).
fn sample(value: f64) -> String {
    if value.is_nan() {
        "NaN".to_owned()
    } else if value == f64::INFINITY {
        "+Inf".to_owned()
    } else if value == f64::NEG_INFINITY {
        "-Inf".to_owned()
    } else {
        format!("{value}")
    }
}

/// Renders the full exposition: every counter, gauge, and histogram
/// in the report, name-sorted within each family kind.
pub fn render_prometheus(report: &TelemetryReport) -> String {
    let mut out = String::new();
    for (name, value) in &report.counters {
        let base = metric_name(name);
        let _ = writeln!(out, "# TYPE {base} counter");
        let _ = writeln!(out, "{base}_total {value}");
    }
    for (name, value) in &report.gauges {
        let base = metric_name(name);
        let _ = writeln!(out, "# TYPE {base} gauge");
        let _ = writeln!(out, "{base} {}", sample(*value));
    }
    for (name, hist) in &report.histograms {
        let base = metric_name(name);
        let _ = writeln!(out, "# TYPE {base} histogram");
        let mut cumulative = 0u64;
        for (bound, count) in &hist.buckets {
            cumulative += count;
            if bound.is_finite() {
                let _ = writeln!(out, "{base}_bucket{{le=\"{bound}\"}} {cumulative}");
            }
        }
        let _ = writeln!(out, "{base}_bucket{{le=\"+Inf\"}} {}", hist.count);
        let _ = writeln!(out, "{base}_sum {}", sample(hist.sum));
        let _ = writeln!(out, "{base}_count {}", hist.count);
    }
    out
}

fn valid_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// Strips a histogram-series suffix, returning the family base name.
fn family_of(name: &str) -> &str {
    for suffix in ["_bucket", "_sum", "_count", "_total"] {
        if let Some(base) = name.strip_suffix(suffix) {
            return base;
        }
    }
    name
}

fn parse_le(labels: &str) -> Result<f64, String> {
    let inner = labels
        .strip_prefix("le=\"")
        .and_then(|rest| rest.strip_suffix('"'))
        .ok_or_else(|| format!("bucket labels must be le=\"...\", got `{{{labels}}}`"))?;
    match inner {
        "+Inf" => Ok(f64::INFINITY),
        text => text
            .parse::<f64>()
            .map_err(|_| format!("bad le bound `{text}`")),
    }
}

/// Validates an exposition: name grammar, `# TYPE` declared before a
/// family's samples, parseable sample values, and histogram buckets
/// that are cumulative, monotone, and closed by a `+Inf` bucket equal
/// to `_count`. Returns the number of samples.
pub fn validate_prometheus(text: &str) -> Result<usize, String> {
    let mut types: std::collections::BTreeMap<String, String> = Default::default();
    let mut samples = 0usize;
    // Per-histogram bucket ledger: (last le, last cumulative, inf
    // bucket value) keyed by family base name.
    let mut buckets: std::collections::BTreeMap<String, (f64, u64, Option<u64>)> =
        Default::default();
    let mut counts: std::collections::BTreeMap<String, u64> = Default::default();

    for (lineno, raw) in text.lines().enumerate() {
        let fail = |e: String| format!("line {}: {e}", lineno + 1);
        let line = raw.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.split_whitespace();
            let name = it.next().ok_or_else(|| fail("TYPE needs a name".into()))?;
            let kind = it.next().ok_or_else(|| fail("TYPE needs a kind".into()))?;
            if !matches!(kind, "counter" | "gauge" | "histogram" | "summary" | "untyped") {
                return Err(fail(format!("unknown TYPE kind `{kind}`")));
            }
            if !valid_name(name) {
                return Err(fail(format!("invalid metric name `{name}`")));
            }
            if types.insert(name.to_owned(), kind.to_owned()).is_some() {
                return Err(fail(format!("duplicate TYPE for `{name}`")));
            }
            continue;
        }
        if line.starts_with('#') {
            continue; // HELP or comment
        }
        // Sample: name[{labels}] value
        let (name_part, value_part) = line
            .rsplit_once(' ')
            .ok_or_else(|| fail("sample needs `name value`".into()))?;
        let value: f64 = match value_part {
            "+Inf" => f64::INFINITY,
            "-Inf" => f64::NEG_INFINITY,
            "NaN" => f64::NAN,
            other => other
                .parse()
                .map_err(|_| fail(format!("bad sample value `{other}`")))?,
        };
        let (name, labels) = match name_part.split_once('{') {
            Some((n, rest)) => {
                let labels = rest
                    .strip_suffix('}')
                    .ok_or_else(|| fail("unclosed label braces".into()))?;
                (n, Some(labels))
            }
            None => (name_part, None),
        };
        if !valid_name(name) {
            return Err(fail(format!("invalid metric name `{name}`")));
        }
        let family = family_of(name);
        if !types.contains_key(family) && !types.contains_key(name) {
            return Err(fail(format!("sample `{name}` has no preceding # TYPE")));
        }
        let is_histogram = types.get(family).map(String::as_str) == Some("histogram");
        if is_histogram && name.ends_with("_bucket") {
            let labels =
                labels.ok_or_else(|| fail("histogram bucket needs le label".into()))?;
            let le = parse_le(labels).map_err(fail)?;
            let cumulative = value as u64;
            let entry = buckets
                .entry(family.to_owned())
                .or_insert((f64::NEG_INFINITY, 0, None));
            if le <= entry.0 {
                return Err(fail(format!(
                    "bucket bounds not increasing for `{family}` (le {le})"
                )));
            }
            if cumulative < entry.1 {
                return Err(fail(format!(
                    "bucket counts not cumulative for `{family}` at le {le}"
                )));
            }
            entry.0 = le;
            entry.1 = cumulative;
            if le == f64::INFINITY {
                entry.2 = Some(cumulative);
            }
        } else if is_histogram && name.ends_with("_count") {
            counts.insert(family.to_owned(), value as u64);
        }
        samples += 1;
    }
    for (family, kind) in &types {
        if kind != "histogram" {
            continue;
        }
        let (_, _, inf) = buckets
            .get(family)
            .ok_or_else(|| format!("histogram `{family}` has no buckets"))?;
        let inf = inf.ok_or_else(|| format!("histogram `{family}` missing +Inf bucket"))?;
        let count = counts
            .get(family)
            .copied()
            .ok_or_else(|| format!("histogram `{family}` missing _count"))?;
        if inf != count {
            return Err(format!(
                "histogram `{family}`: +Inf bucket {inf} != _count {count}"
            ));
        }
    }
    Ok(samples)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist::Histogram;

    fn report() -> TelemetryReport {
        let mut r = TelemetryReport::default();
        r.counters.insert("parse.dis.parsed".to_owned(), 41);
        r.counters.insert("nlp.tag.planner".to_owned(), 7);
        r.gauges.insert("ocr.mean_cer".to_owned(), 0.0125);
        let mut h = Histogram::new();
        for x in [0.001, 0.003, 0.003, 0.5, 2.0] {
            h.record(x);
        }
        r.histograms.insert("ocr.cer".to_owned(), h.summary());
        let mut wall = Histogram::new();
        wall.record(0.25);
        r.histograms
            .insert("profile.wall;stage_tag;compute".to_owned(), wall.summary());
        r
    }

    #[test]
    fn escaping_follows_the_documented_table() {
        assert_eq!(metric_name("parse.dis.parsed"), "disengage_parse_dis_parsed");
        assert_eq!(
            metric_name("profile.wall;stage_tag"),
            "disengage_profile_wall:stage_tag"
        );
        assert_eq!(metric_name("weird name"), "disengage_weird_name");
    }

    #[test]
    fn exposition_validates_and_counts_samples() {
        let text = render_prometheus(&report());
        let n = validate_prometheus(&text).expect("valid exposition");
        // 2 counters + 1 gauge + histogram series.
        assert!(n >= 7, "expected >= 7 samples, got {n}\n{text}");
        assert!(text.contains("# TYPE disengage_parse_dis_parsed counter"));
        assert!(text.contains("disengage_parse_dis_parsed_total 41"));
        assert!(text.contains("disengage_ocr_mean_cer 0.0125"));
        assert!(text.contains("disengage_ocr_cer_bucket{le=\"+Inf\"} 5"));
        assert!(text.contains("disengage_ocr_cer_count 5"));
        assert!(text.contains("disengage_profile_wall:stage_tag:compute_sum 0.25"));
    }

    #[test]
    fn buckets_are_cumulative() {
        let text = render_prometheus(&report());
        // The two 0.003 samples share a bucket; the cumulative series
        // must be nondecreasing and end at the count.
        let mut last = 0u64;
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("disengage_ocr_cer_bucket") {
                let v: u64 = rest.rsplit(' ').next().unwrap().parse().unwrap();
                assert!(v >= last, "non-monotone bucket series: {text}");
                last = v;
            }
        }
        assert_eq!(last, 5);
    }

    #[test]
    fn validator_rejects_malformed_expositions() {
        assert!(validate_prometheus("disengage_x 1").is_err()); // no TYPE
        assert!(validate_prometheus("# TYPE 9bad counter\n9bad_total 1").is_err());
        assert!(
            validate_prometheus("# TYPE disengage_x counter\ndisengage_x_total many")
                .is_err()
        );
        let non_monotone = "# TYPE h histogram\n\
            h_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\n\
            h_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 5\n";
        assert!(validate_prometheus(non_monotone).is_err());
        let missing_inf =
            "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_sum 1\nh_count 5\n";
        assert!(validate_prometheus(missing_inf).is_err());
        let inf_mismatch = "# TYPE h histogram\n\
            h_bucket{le=\"1\"} 4\nh_bucket{le=\"+Inf\"} 4\nh_sum 1\nh_count 5\n";
        assert!(validate_prometheus(inf_mismatch).is_err());
    }

    #[test]
    fn empty_report_renders_empty_but_valid() {
        let text = render_prometheus(&TelemetryReport::default());
        assert_eq!(validate_prometheus(&text), Ok(0));
    }
}
