//! A minimal JSON document model: render and parse, no reflection.
//!
//! The exporters build [`Value`] trees by hand (object key order is
//! preserved — a `Vec` of pairs, not a map), render them with
//! [`Value::render`], and machine consumers (tests, the `repro`
//! metrics snapshot) read them back with [`Value::parse`]. Only what
//! the telemetry format needs is implemented: the full JSON grammar
//! minus `\u` escapes beyond the BMP shortcuts we emit.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number (non-finite floats must be encoded by callers).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object with preserved key order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// A number, downgrading non-finite floats to their string names so
    /// the document stays valid JSON.
    pub fn num(x: f64) -> Value {
        if x.is_finite() {
            Value::Num(x)
        } else if x.is_nan() {
            Value::Str("nan".to_owned())
        } else if x > 0.0 {
            Value::Str("inf".to_owned())
        } else {
            Value::Str("-inf".to_owned())
        }
    }

    /// Looks up a key in an object (`None` on missing key or non-object).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(xs) => Some(xs),
            _ => None,
        }
    }

    /// Renders compact single-line JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Num(x) => render_number(*x, out),
            Value::Str(s) => render_string(s, out),
            Value::Arr(xs) => {
                out.push('[');
                for (i, x) in xs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    x.render_into(out);
                }
                out.push(']');
            }
            Value::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_string(k, out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses a JSON document.
    ///
    /// # Errors
    ///
    /// Returns a position-annotated message on malformed input.
    pub fn parse(text: &str) -> Result<Value, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(value)
    }
}

fn render_number(x: f64, out: &mut String) {
    debug_assert!(x.is_finite(), "use Value::num for non-finite floats");
    if x == x.trunc() && x.abs() < 1e15 {
        let _ = write!(out, "{}", x as i64);
    } else {
        // 17 significant digits round-trip any f64.
        let compact = format!("{x}");
        if compact.parse::<f64>() == Ok(x) {
            out.push_str(&compact);
        } else {
            let _ = write!(out, "{x:.17e}");
        }
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("expected `{lit}` at byte {pos}", pos = *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_owned()),
        Some(b'n') => expect(bytes, pos, "null").map(|()| Value::Null),
        Some(b't') => expect(bytes, pos, "true").map(|()| Value::Bool(true)),
        Some(b'f') => expect(bytes, pos, "false").map(|()| Value::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Value::Str),
        Some(b'[') => {
            *pos += 1;
            let mut xs = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Arr(xs));
            }
            loop {
                xs.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Arr(xs));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Obj(pairs));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, ":")?;
                let value = parse_value(bytes, pos)?;
                pairs.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Obj(pairs));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}", pos = *pos));
    }
    *pos += 1;
    let mut out = String::new();
    let text = std::str::from_utf8(bytes).map_err(|e| e.to_string())?;
    let mut chars = text[*pos..].char_indices();
    while let Some((i, c)) = chars.next() {
        match c {
            '"' => {
                *pos += i + 1;
                return Ok(out);
            }
            '\\' => match chars.next() {
                Some((_, '"')) => out.push('"'),
                Some((_, '\\')) => out.push('\\'),
                Some((_, '/')) => out.push('/'),
                Some((_, 'n')) => out.push('\n'),
                Some((_, 'r')) => out.push('\r'),
                Some((_, 't')) => out.push('\t'),
                Some((_, 'b')) => out.push('\u{8}'),
                Some((_, 'f')) => out.push('\u{c}'),
                Some((j, 'u')) => {
                    let start = *pos + j + 1;
                    let hex = text
                        .get(start..start + 4)
                        .ok_or_else(|| "truncated \\u escape".to_owned())?;
                    let code =
                        u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape".to_owned())?;
                    out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    for _ in 0..4 {
                        chars.next();
                    }
                }
                other => return Err(format!("bad escape {other:?}")),
            },
            c => out.push(c),
        }
    }
    Err("unterminated string".to_owned())
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Value::Num)
        .map_err(|_| format!("bad number `{text}` at byte {start}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        for v in [
            Value::Null,
            Value::Bool(true),
            Value::Bool(false),
            Value::Num(0.0),
            Value::Num(-17.0),
            Value::Num(0.004_217),
            Value::Num(1e-9),
            Value::Num(123_456_789.0),
            Value::Str("plain".to_owned()),
            Value::Str("quote \" slash \\ newline \n tab \t".to_owned()),
        ] {
            let text = v.render();
            assert_eq!(Value::parse(&text).unwrap(), v, "text = {text}");
        }
    }

    #[test]
    fn nested_round_trips_preserving_order() {
        let v = Value::Obj(vec![
            ("z".to_owned(), Value::Num(1.0)),
            (
                "a".to_owned(),
                Value::Arr(vec![Value::Null, Value::Obj(vec![])]),
            ),
            ("empty".to_owned(), Value::Arr(vec![])),
        ]);
        let text = v.render();
        assert_eq!(Value::parse(&text).unwrap(), v);
        assert!(text.starts_with("{\"z\""), "order lost: {text}");
    }

    #[test]
    fn non_finite_downgrade() {
        assert_eq!(Value::num(f64::INFINITY), Value::Str("inf".to_owned()));
        assert_eq!(Value::num(f64::NEG_INFINITY), Value::Str("-inf".to_owned()));
        assert_eq!(Value::num(f64::NAN), Value::Str("nan".to_owned()));
        assert_eq!(Value::num(2.5), Value::Num(2.5));
    }

    #[test]
    fn parses_foreign_whitespace_and_escapes() {
        let v = Value::parse(" { \"k\" : [ 1 , 2.5e1 , \"\\u0041\" ] } ").unwrap();
        assert_eq!(
            v.get("k").unwrap().as_arr().unwrap(),
            &[
                Value::Num(1.0),
                Value::Num(25.0),
                Value::Str("A".to_owned())
            ]
        );
    }

    #[test]
    fn rejects_garbage() {
        assert!(Value::parse("").is_err());
        assert!(Value::parse("{").is_err());
        assert!(Value::parse("[1,]").is_err());
        assert!(Value::parse("\"open").is_err());
        assert!(Value::parse("12 34").is_err());
    }

    #[test]
    fn accessors() {
        let v = Value::Obj(vec![("n".to_owned(), Value::Num(4.0))]);
        assert_eq!(v.get("n").and_then(Value::as_f64), Some(4.0));
        assert_eq!(v.get("missing"), None);
        assert_eq!(Value::Num(1.0).get("n"), None);
    }
}
