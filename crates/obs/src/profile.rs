//! Self-profiling: hierarchical phase timers, throughput and memory
//! gauges, and the aggregated stage × phase view behind
//! `disengage profile`.
//!
//! # Phase model
//!
//! A *phase* is a named scope on the current thread. [`phase`] pushes a
//! frame onto a thread-local stack and returns a guard; when the guard
//! drops it records two histograms on the collector it was opened
//! against:
//!
//! * `profile.wall;<path>` — the scope's wall-clock seconds, and
//! * `profile.self;<path>` — wall minus the time spent in child phases,
//!
//! where `<path>` is the `;`-joined stack of open frame names
//! (`digitize;repair;attempt_2`). The `;` separator makes the
//! histogram keys themselves a folded-stack corpus: the
//! [`folded_stacks`] exporter emits `path self-microseconds` lines that
//! speedscope and inferno's `flamegraph.pl` consume directly.
//!
//! Phases are *always on* — recording two histogram samples per scope
//! is noise next to the work the phases wrap — but every
//! `profile.`-prefixed metric is wall-clock-derived and therefore
//! stripped by [`TelemetryReport::canonical`], so the byte-identity
//! contracts (any `--jobs`, warm vs cold cache, clean vs chaos) never
//! see it.
//!
//! One rule keeps phase paths independent of the worker count: **never
//! hold a phase guard across a parallel map call**. The stack is
//! thread-local; a frame left open on the caller thread would become
//! the parent of per-item phases on the sequential path but not on
//! worker threads, and the histogram *names* would then depend on
//! `--jobs`. Root the per-item phase inside the per-item closure
//! instead (every call site in `core` does).

use crate::collector::Collector;
use crate::json::Value;
use crate::report::TelemetryReport;
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::RefCell;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Namespace prefix shared by every profiler metric; the single handle
/// [`TelemetryReport::canonical`] uses to strip the profiler's
/// wall-clock-derived output.
pub const PROFILE_PREFIX: &str = "profile.";

/// Histogram prefix for per-phase wall seconds.
pub const WALL_PREFIX: &str = "profile.wall;";

/// Histogram prefix for per-phase self seconds (wall minus children).
pub const SELF_PREFIX: &str = "profile.self;";

struct Frame {
    name: String,
    /// Seconds already attributed to closed child phases.
    child_s: f64,
}

thread_local! {
    static STACK: RefCell<Vec<Frame>> = const { RefCell::new(Vec::new()) };
}

/// Scope guard returned by [`phase`]; records the phase's wall and
/// self histograms when dropped.
#[must_use = "a phase measures the scope that holds the guard"]
pub struct PhaseGuard<'a> {
    obs: &'a Collector,
    start: Instant,
}

/// Opens a phase named `name` nested under whatever phases are already
/// open on this thread. Drop the returned guard to close it.
pub fn phase<'a>(obs: &'a Collector, name: &str) -> PhaseGuard<'a> {
    STACK.with(|s| {
        s.borrow_mut().push(Frame {
            name: name.to_owned(),
            child_s: 0.0,
        })
    });
    PhaseGuard {
        obs,
        start: Instant::now(),
    }
}

impl Drop for PhaseGuard<'_> {
    fn drop(&mut self) {
        let wall = self.start.elapsed().as_secs_f64();
        let (path, child_s) = STACK.with(|s| {
            let mut stack = s.borrow_mut();
            let path = join_path(stack.iter().map(|f| f.name.as_str()));
            let frame = stack.pop().expect("phase stack underflow");
            if let Some(parent) = stack.last_mut() {
                parent.child_s += wall;
            }
            (path, frame.child_s)
        });
        record_parts(self.obs, &path, wall, (wall - child_s).max(0.0));
    }
}

/// Opens a phase for the rest of the enclosing scope:
/// `phase!(obs, "rasterize");`. Use [`phase`] directly when the scope
/// must be narrower than a block.
#[macro_export]
macro_rules! phase {
    ($obs:expr, $name:expr) => {
        let _phase_guard = $crate::profile::phase($obs, $name);
    };
}

/// Records an already-measured leaf phase named `name` under the
/// phases currently open on this thread, crediting the innermost open
/// frame so the parent's self time excludes it. This is the callback
/// form for code that times its own sub-steps (the OCR repair ladder's
/// per-attempt durations).
pub fn record_phase(obs: &Collector, name: &str, elapsed: Duration) {
    let secs = elapsed.as_secs_f64();
    let path = STACK.with(|s| {
        let mut stack = s.borrow_mut();
        let path = join_path(stack.iter().map(|f| f.name.as_str()).chain([name]));
        if let Some(top) = stack.last_mut() {
            top.child_s += secs;
        }
        path
    });
    record_parts(obs, &path, secs, secs);
}

/// Records an already-measured phase at an explicit absolute `path`,
/// ignoring the thread's open-phase stack. For callers that must not
/// hold a guard (a stage wrapper around a parallel map) but still know
/// the path they are attributing.
pub fn record_phase_at(obs: &Collector, path: &[&str], elapsed: Duration) {
    let secs = elapsed.as_secs_f64();
    record_parts(obs, &join_path(path.iter().copied()), secs, secs);
}

/// [`record_phase_at`] with separate wall and self seconds, for
/// wrappers whose children are recorded out-of-band.
pub fn record_phase_parts(obs: &Collector, path: &[&str], wall_s: f64, self_s: f64) {
    record_parts(obs, &join_path(path.iter().copied()), wall_s, self_s);
}

fn join_path<'a>(parts: impl IntoIterator<Item = &'a str>) -> String {
    let mut out = String::new();
    for p in parts {
        debug_assert!(
            !p.is_empty() && !p.contains(';') && !p.contains(char::is_whitespace),
            "phase names must be non-empty and free of ';' and whitespace: {p:?}"
        );
        if !out.is_empty() {
            out.push(';');
        }
        out.push_str(p);
    }
    out
}

fn record_parts(obs: &Collector, path: &str, wall_s: f64, self_s: f64) {
    obs.record(&format!("{WALL_PREFIX}{path}"), wall_s);
    obs.record(&format!("{SELF_PREFIX}{path}"), self_s);
}

// ---------------------------------------------------------------------------
// Allocation proxy + peak RSS
// ---------------------------------------------------------------------------

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);
static ALLOC_LIVE: AtomicI64 = AtomicI64::new(0);
static ALLOC_PEAK_LIVE: AtomicI64 = AtomicI64::new(0);

/// Raises the peak-live watermark to at least `live` (CAS-max: racing
/// threads may each try, but the maximum always wins).
fn raise_peak_live(live: i64) {
    let mut peak = ALLOC_PEAK_LIVE.load(Ordering::Relaxed);
    while live > peak {
        match ALLOC_PEAK_LIVE.compare_exchange_weak(
            peak,
            live,
            Ordering::Relaxed,
            Ordering::Relaxed,
        ) {
            Ok(_) => break,
            Err(now) => peak = now,
        }
    }
}

/// A [`GlobalAlloc`] shim over the system allocator that counts
/// allocation calls, cumulative bytes, and the live-byte balance (with
/// its high-water mark) — the zero-dependency allocation proxy.
/// Binaries opt in with `#[global_allocator]`; library users that do
/// not install it simply read zeros.
pub struct CountingAlloc;

// SAFETY: delegates every operation to `System` unchanged; the only
// addition is relaxed atomic bookkeeping.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = unsafe { System.alloc(layout) };
        if !p.is_null() {
            ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
            ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
            let live =
                ALLOC_LIVE.fetch_add(layout.size() as i64, Ordering::Relaxed) + layout.size() as i64;
            raise_peak_live(live);
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
        ALLOC_LIVE.fetch_sub(layout.size() as i64, Ordering::Relaxed);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = unsafe { System.realloc(ptr, layout, new_size) };
        if !p.is_null() {
            if new_size > layout.size() {
                ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
                ALLOC_BYTES.fetch_add((new_size - layout.size()) as u64, Ordering::Relaxed);
            }
            let delta = new_size as i64 - layout.size() as i64;
            let live = ALLOC_LIVE.fetch_add(delta, Ordering::Relaxed) + delta;
            if delta > 0 {
                raise_peak_live(live);
            }
        }
        p
    }
}

/// Totals from [`CountingAlloc`] (zeros when no binary installed it as
/// the global allocator).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AllocStats {
    /// Allocation calls observed.
    pub calls: u64,
    /// Cumulative bytes requested across those calls (growth only for
    /// reallocs).
    pub bytes: u64,
    /// Bytes currently live (allocated minus freed, clamped at zero —
    /// allocations made before the proxy was installed can free
    /// through it).
    pub live_bytes: u64,
    /// High-water mark of `live_bytes` over the process lifetime.
    pub peak_live_bytes: u64,
}

/// Snapshot of the allocation-proxy counters.
pub fn alloc_stats() -> AllocStats {
    AllocStats {
        calls: ALLOC_CALLS.load(Ordering::Relaxed),
        bytes: ALLOC_BYTES.load(Ordering::Relaxed),
        live_bytes: ALLOC_LIVE.load(Ordering::Relaxed).max(0) as u64,
        peak_live_bytes: ALLOC_PEAK_LIVE.load(Ordering::Relaxed).max(0) as u64,
    }
}

/// The process's peak resident set size in bytes, read from
/// `/proc/self/status` (`VmHWM`). `None` off Linux or when the file is
/// unreadable.
pub fn peak_rss_bytes() -> Option<u64> {
    #[cfg(target_os = "linux")]
    {
        let status = std::fs::read_to_string("/proc/self/status").ok()?;
        for line in status.lines() {
            if let Some(rest) = line.strip_prefix("VmHWM:") {
                let kb: u64 = rest.trim().trim_end_matches("kB").trim().parse().ok()?;
                return Some(kb * 1024);
            }
        }
        None
    }
    #[cfg(not(target_os = "linux"))]
    {
        None
    }
}

/// Records the process-level memory gauges (`profile.mem.*`) on the
/// collector: peak RSS where available, plus the allocation proxy when
/// a binary installed [`CountingAlloc`].
pub fn record_process_gauges(obs: &Collector) {
    if let Some(rss) = peak_rss_bytes() {
        obs.gauge("profile.mem.peak_rss_bytes", rss as f64);
    }
    let a = alloc_stats();
    if a.calls > 0 {
        obs.gauge("profile.mem.alloc_calls", a.calls as f64);
        obs.gauge("profile.mem.alloc_bytes", a.bytes as f64);
        obs.gauge("profile.mem.live_bytes", a.live_bytes as f64);
        obs.gauge("profile.mem.peak_live_bytes", a.peak_live_bytes as f64);
    }
}

// ---------------------------------------------------------------------------
// Aggregated report
// ---------------------------------------------------------------------------

/// One phase path's aggregate across every thread that recorded it.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseRow {
    /// `;`-joined frame path.
    pub path: String,
    /// Scope executions.
    pub count: u64,
    /// Total wall seconds (sum over executions).
    pub total_s: f64,
    /// Self seconds (wall minus child phases).
    pub self_s: f64,
    /// Per-execution wall-time quantiles (bucket upper bounds).
    pub p50_s: f64,
    /// 95th percentile.
    pub p95_s: f64,
    /// 99th percentile.
    pub p99_s: f64,
}

impl PhaseRow {
    /// Nesting depth (0 for roots).
    pub fn depth(&self) -> usize {
        self.path.matches(';').count()
    }

    /// Last path component.
    pub fn leaf(&self) -> &str {
        self.path.rsplit(';').next().unwrap_or(&self.path)
    }
}

/// One pipeline stage's wall time, lifted from the span tree.
#[derive(Debug, Clone, PartialEq)]
pub struct StageRow {
    /// Span name (`stage_i_ocr`, …).
    pub name: String,
    /// Wall seconds.
    pub wall_s: f64,
}

/// One pool worker's accounting, supplied by the caller (the `par`
/// crate computes it; `obs` stays dependency-free).
#[derive(Debug, Clone, PartialEq)]
pub struct PoolRow {
    /// Worker index.
    pub worker: usize,
    /// Seconds spent running chunks.
    pub busy_s: f64,
    /// Seconds inside pool calls not spent running chunks.
    pub idle_s: f64,
    /// Chunks run by a worker other than the round-robin owner.
    pub steals: u64,
    /// Chunks executed.
    pub chunks: u64,
    /// Items executed.
    pub items: u64,
}

/// The aggregated profile: what `disengage profile` renders.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ProfileReport {
    /// Stage wall times from `stage_*` spans, in start order.
    pub stages: Vec<StageRow>,
    /// Phase rows sorted by path components (parents before children).
    pub phases: Vec<PhaseRow>,
    /// `profile.throughput.*` gauges, name → value.
    pub throughput: Vec<(String, f64)>,
    /// `profile.mem.*` gauges, name → value.
    pub memory: Vec<(String, f64)>,
    /// Per-worker pool accounting (empty when no timeline was taken).
    pub pool: Vec<PoolRow>,
    /// Distribution of pool chunk sizes, `(items, chunks)`.
    pub chunk_sizes: Vec<(usize, u64)>,
}

impl ProfileReport {
    /// Builds the phase/stage/gauge sections from a telemetry
    /// snapshot. Pool rows come from the caller (see [`PoolRow`]).
    pub fn from_report(report: &TelemetryReport) -> ProfileReport {
        let mut phases = Vec::new();
        for (name, wall) in &report.histograms {
            let Some(path) = name.strip_prefix(WALL_PREFIX) else {
                continue;
            };
            let self_s = report
                .histograms
                .get(&format!("{SELF_PREFIX}{path}"))
                .map_or(0.0, |h| h.sum);
            phases.push(PhaseRow {
                path: path.to_owned(),
                count: wall.count,
                total_s: wall.sum,
                self_s,
                p50_s: wall.p50,
                p95_s: wall.p95,
                p99_s: wall.p99,
            });
        }
        phases.sort_by(|a, b| {
            let ka: Vec<&str> = a.path.split(';').collect();
            let kb: Vec<&str> = b.path.split(';').collect();
            ka.cmp(&kb)
        });

        let mut stages = Vec::new();
        fn walk(nodes: &[crate::report::SpanNode], out: &mut Vec<StageRow>) {
            for n in nodes {
                if n.name.starts_with("stage_") || n.name == "chaos_inject" {
                    out.push(StageRow {
                        name: n.name.clone(),
                        wall_s: n.duration_s,
                    });
                }
                walk(&n.children, out);
            }
        }
        walk(&report.spans, &mut stages);

        let section = |prefix: &str| {
            report
                .gauges
                .iter()
                .filter(|(k, _)| k.starts_with(prefix))
                .map(|(k, &v)| (k.clone(), v))
                .collect::<Vec<_>>()
        };
        ProfileReport {
            stages,
            phases,
            throughput: section("profile.throughput."),
            memory: section("profile.mem."),
            pool: Vec::new(),
            chunk_sizes: Vec::new(),
        }
    }

    /// A phase row by exact path.
    pub fn phase(&self, path: &str) -> Option<&PhaseRow> {
        self.phases.iter().find(|r| r.path == path)
    }

    /// Fraction of `stage_wall_s` attributed to the direct children of
    /// the root phase `root` — the coverage metric behind the
    /// "≥ 90 % of Stage I is named OCR phases" acceptance bar. `None`
    /// when the stage wall is zero or `root` has no children.
    pub fn coverage(&self, root: &str, stage_wall_s: f64) -> Option<f64> {
        if stage_wall_s <= 0.0 {
            return None;
        }
        let prefix = format!("{root};");
        let children: f64 = self
            .phases
            .iter()
            .filter(|r| {
                r.path.strip_prefix(&prefix)
                    .is_some_and(|rest| !rest.contains(';'))
            })
            .map(|r| r.total_s)
            .sum();
        (children > 0.0).then_some(children / stage_wall_s)
    }

    /// The human-readable stage × phase table.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str("== profile ==\n");
        if !self.stages.is_empty() {
            out.push_str("stages:\n");
            let total: f64 = self.stages.iter().map(|s| s.wall_s).sum();
            for s in &self.stages {
                let pct = if total > 0.0 { 100.0 * s.wall_s / total } else { 0.0 };
                let _ = writeln!(out, "  {:<28} {:>10.3} ms {:>6.1}%", s.name, s.wall_s * 1e3, pct);
            }
        }
        if !self.phases.is_empty() {
            out.push_str("phases:\n");
            let _ = writeln!(
                out,
                "  {:<34} {:>8} {:>12} {:>12} {:>6} {:>10} {:>10} {:>10}",
                "phase", "count", "total ms", "self ms", "self%", "p50 ms", "p95 ms", "p99 ms"
            );
            for r in &self.phases {
                let indent = "  ".repeat(r.depth());
                let label = format!("{indent}{}", r.leaf());
                let self_pct = if r.total_s > 0.0 { 100.0 * r.self_s / r.total_s } else { 100.0 };
                let _ = writeln!(
                    out,
                    "  {:<34} {:>8} {:>12.3} {:>12.3} {:>5.1}% {:>10.4} {:>10.4} {:>10.4}",
                    label,
                    r.count,
                    r.total_s * 1e3,
                    r.self_s * 1e3,
                    self_pct,
                    r.p50_s * 1e3,
                    r.p95_s * 1e3,
                    r.p99_s * 1e3
                );
            }
        }
        if !self.throughput.is_empty() {
            out.push_str("throughput:\n");
            for (name, v) in &self.throughput {
                let short = name.trim_start_matches("profile.throughput.");
                let _ = writeln!(out, "  {short:<40} {v:>14.1}");
            }
        }
        if !self.pool.is_empty() {
            out.push_str("pool workers:\n");
            let _ = writeln!(
                out,
                "  {:<8} {:>10} {:>10} {:>7} {:>8} {:>8} {:>8}",
                "worker", "busy ms", "idle ms", "busy%", "chunks", "items", "steals"
            );
            for w in &self.pool {
                let span = w.busy_s + w.idle_s;
                let pct = if span > 0.0 { 100.0 * w.busy_s / span } else { 0.0 };
                let _ = writeln!(
                    out,
                    "  {:<8} {:>10.3} {:>10.3} {:>6.1}% {:>8} {:>8} {:>8}",
                    w.worker,
                    w.busy_s * 1e3,
                    w.idle_s * 1e3,
                    pct,
                    w.chunks,
                    w.items,
                    w.steals
                );
            }
            if !self.chunk_sizes.is_empty() {
                out.push_str("  chunk sizes: ");
                let parts: Vec<String> = self
                    .chunk_sizes
                    .iter()
                    .map(|(len, n)| format!("{len} items ×{n}"))
                    .collect();
                out.push_str(&parts.join(", "));
                out.push('\n');
            }
        }
        if !self.memory.is_empty() {
            out.push_str("memory:\n");
            for (name, v) in &self.memory {
                let short = name.trim_start_matches("profile.mem.");
                let _ = writeln!(out, "  {short:<40} {v:>14.0}");
            }
        }
        out
    }

    /// The JSON document model behind `--profile=json`.
    pub fn to_value(&self) -> Value {
        let stages = self
            .stages
            .iter()
            .map(|s| {
                Value::Obj(vec![
                    ("name".to_owned(), Value::Str(s.name.clone())),
                    ("wall_s".to_owned(), Value::num(s.wall_s)),
                ])
            })
            .collect();
        let phases = self
            .phases
            .iter()
            .map(|r| {
                Value::Obj(vec![
                    ("path".to_owned(), Value::Str(r.path.clone())),
                    ("count".to_owned(), Value::num(r.count as f64)),
                    ("total_s".to_owned(), Value::num(r.total_s)),
                    ("self_s".to_owned(), Value::num(r.self_s)),
                    ("p50_s".to_owned(), Value::num(r.p50_s)),
                    ("p95_s".to_owned(), Value::num(r.p95_s)),
                    ("p99_s".to_owned(), Value::num(r.p99_s)),
                ])
            })
            .collect();
        let gauges = |pairs: &[(String, f64)]| {
            Value::Obj(
                pairs
                    .iter()
                    .map(|(k, v)| (k.clone(), Value::num(*v)))
                    .collect(),
            )
        };
        let pool = self
            .pool
            .iter()
            .map(|w| {
                Value::Obj(vec![
                    ("worker".to_owned(), Value::num(w.worker as f64)),
                    ("busy_s".to_owned(), Value::num(w.busy_s)),
                    ("idle_s".to_owned(), Value::num(w.idle_s)),
                    ("steals".to_owned(), Value::num(w.steals as f64)),
                    ("chunks".to_owned(), Value::num(w.chunks as f64)),
                    ("items".to_owned(), Value::num(w.items as f64)),
                ])
            })
            .collect();
        let chunk_sizes = self
            .chunk_sizes
            .iter()
            .map(|(len, n)| Value::Arr(vec![Value::num(*len as f64), Value::num(*n as f64)]))
            .collect();
        Value::Obj(vec![
            ("stages".to_owned(), Value::Arr(stages)),
            ("phases".to_owned(), Value::Arr(phases)),
            ("throughput".to_owned(), gauges(&self.throughput)),
            ("memory".to_owned(), gauges(&self.memory)),
            ("pool".to_owned(), Value::Arr(pool)),
            ("chunk_sizes".to_owned(), Value::Arr(chunk_sizes)),
        ])
    }

    /// Renders [`ProfileReport::to_value`] as JSON text.
    pub fn to_json(&self) -> String {
        self.to_value().render()
    }
}

// ---------------------------------------------------------------------------
// Folded stacks
// ---------------------------------------------------------------------------

/// Exports the profiler's self-time histograms as folded stacks — one
/// `frame1;frame2 microseconds` line per phase path, the text format
/// speedscope and inferno/`flamegraph.pl` consume. Sub-microsecond but
/// non-empty phases round up to 1 so no recorded path disappears.
pub fn folded_stacks(report: &TelemetryReport) -> String {
    let mut out = String::new();
    for (name, h) in &report.histograms {
        let Some(path) = name.strip_prefix(SELF_PREFIX) else {
            continue;
        };
        if h.count == 0 {
            continue;
        }
        let usec = ((h.sum * 1e6).round() as u64).max(1);
        let _ = writeln!(out, "{path} {usec}");
    }
    out
}

/// Structural validation of a folded-stack document: every line must
/// be `frame(;frame)* <positive integer>`, frames non-empty and free
/// of whitespace. Returns the number of stack lines.
pub fn validate_folded(text: &str) -> Result<usize, String> {
    let mut lines = 0usize;
    for (i, line) in text.lines().enumerate() {
        let n = i + 1;
        if line.is_empty() {
            continue;
        }
        let (stack, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("line {n}: no space between stack and value"))?;
        let v: u64 = value
            .parse()
            .map_err(|_| format!("line {n}: value {value:?} is not an unsigned integer"))?;
        if v == 0 {
            return Err(format!("line {n}: zero-weight stack"));
        }
        if stack.is_empty() {
            return Err(format!("line {n}: empty stack"));
        }
        for frame in stack.split(';') {
            if frame.is_empty() {
                return Err(format!("line {n}: empty frame in {stack:?}"));
            }
            if frame.chars().any(char::is_whitespace) {
                return Err(format!("line {n}: whitespace inside frame {frame:?}"));
            }
        }
        lines += 1;
    }
    if lines == 0 {
        return Err("no stack lines".to_owned());
    }
    Ok(lines)
}

/// Builds a chunk-size distribution (`(items, chunks)`, ascending) —
/// a small helper for pool accounting callers.
pub fn chunk_size_counts(lens: impl IntoIterator<Item = usize>) -> Vec<(usize, u64)> {
    let mut map = std::collections::BTreeMap::new();
    for len in lens {
        *map.entry(len).or_insert(0u64) += 1;
    }
    map.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    fn spin(ms: u64) {
        let t0 = Instant::now();
        while t0.elapsed() < Duration::from_millis(ms) {
            std::hint::black_box(0u64);
        }
    }

    #[test]
    fn nested_phases_split_wall_and_self() {
        let obs = Collector::new();
        {
            let _outer = phase(&obs, "outer");
            spin(4);
            {
                let _inner = phase(&obs, "inner");
                spin(8);
            }
        }
        let r = obs.report();
        let outer = r.histogram("profile.wall;outer").unwrap();
        let outer_self = r.histogram("profile.self;outer").unwrap();
        let inner = r.histogram("profile.wall;outer;inner").unwrap();
        assert_eq!(outer.count, 1);
        assert_eq!(inner.count, 1);
        // Outer wall covers both; outer self excludes the inner scope.
        assert!(outer.sum >= inner.sum);
        assert!(
            outer_self.sum <= outer.sum - inner.sum + 1e-3,
            "self {} vs wall {} minus child {}",
            outer_self.sum,
            outer.sum,
            inner.sum
        );
    }

    #[test]
    fn record_phase_credits_open_parent() {
        let obs = Collector::new();
        {
            let _outer = phase(&obs, "repair");
            record_phase(&obs, "attempt_1", Duration::from_millis(50));
        }
        let r = obs.report();
        assert_eq!(r.histogram("profile.wall;repair;attempt_1").unwrap().count, 1);
        // The 50 ms were credited to the parent's children, so the
        // parent's self time is (near) zero, not 50 ms.
        assert!(r.histogram("profile.self;repair").unwrap().sum < 0.040);
    }

    #[test]
    fn record_phase_at_ignores_stack() {
        let obs = Collector::new();
        let _open = phase(&obs, "open");
        record_phase_at(&obs, &["stage", "corpus", "cache_lookup"], Duration::from_millis(1));
        let r = obs.report();
        assert!(r.histogram("profile.wall;stage;corpus;cache_lookup").is_some());
    }

    #[test]
    fn phases_on_worker_threads_root_at_their_own_stack() {
        let obs = Collector::new();
        let _caller = phase(&obs, "caller");
        thread::scope(|s| {
            s.spawn(|| {
                let _w = phase(&obs, "work");
            });
        });
        let r = obs.report();
        // The worker thread's stack is its own: no `caller;work` path.
        assert!(r.histogram("profile.wall;work").is_some());
        assert!(r.histogram("profile.wall;caller;work").is_none());
    }

    #[test]
    fn folded_export_round_trips_validation() {
        let obs = Collector::new();
        {
            let _a = phase(&obs, "digitize");
            let _b = phase(&obs, "rasterize");
            spin(2);
        }
        let folded = folded_stacks(&obs.report());
        let lines = validate_folded(&folded).expect("folded output validates");
        assert_eq!(lines, 2, "one line per recorded path: {folded:?}");
        assert!(folded.contains("digitize;rasterize "));
    }

    #[test]
    fn validate_folded_rejects_malformed_documents() {
        assert!(validate_folded("").is_err());
        assert!(validate_folded("noval\n").is_err());
        assert!(validate_folded("a;b zero\n").is_err());
        assert!(validate_folded("a;b 0\n").is_err());
        assert!(validate_folded(";b 3\n").is_err());
        assert!(validate_folded("a;;b 3\n").is_err());
        assert_eq!(validate_folded("a;b 3\nc 1\n"), Ok(2));
    }

    #[test]
    fn report_aggregates_rows_and_coverage() {
        let obs = Collector::new();
        for _ in 0..3 {
            let _d = phase(&obs, "digitize");
            {
                let _r = phase(&obs, "rasterize");
                spin(3);
            }
            {
                let _c = phase(&obs, "correlate");
                spin(3);
            }
        }
        let report = obs.report();
        let prof = ProfileReport::from_report(&report);
        let root = prof.phase("digitize").expect("root row");
        assert_eq!(root.count, 3);
        let child = prof.phase("digitize;rasterize").expect("child row");
        assert_eq!(child.count, 3);
        // Parents sort before children.
        let idx = |p: &str| prof.phases.iter().position(|r| r.path == p).unwrap();
        assert!(idx("digitize") < idx("digitize;rasterize"));
        // Nearly all of the root's wall is in the two named children.
        let cov = prof.coverage("digitize", root.total_s).expect("coverage");
        assert!(cov > 0.9, "coverage {cov}");
        let table = prof.render_table();
        assert!(table.contains("rasterize"));
        assert!(table.contains("self%"));
        // JSON round-trips through the in-tree parser.
        let parsed = Value::parse(&prof.to_json()).expect("valid json");
        assert!(parsed.get("phases").is_some());
    }

    #[test]
    fn chunk_size_counts_accumulate() {
        assert_eq!(chunk_size_counts([4, 2, 4]), vec![(2, 1), (4, 2)]);
    }

    #[test]
    fn alloc_stats_read_without_global_allocator() {
        // The library itself does not install CountingAlloc; the
        // counters must still be readable (zero or whatever a binary
        // using the shim accumulated).
        let a = alloc_stats();
        let b = alloc_stats();
        assert!(b.calls >= a.calls);
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn peak_rss_is_positive_on_linux() {
        assert!(peak_rss_bytes().unwrap() > 0);
    }
}
