//! The consolidated failure database (the pipeline's step 4 artifact).

use crate::date::Date;
use crate::record::{AccidentRecord, CarId, DisengagementRecord, MonthlyMileage};
use crate::types::{Manufacturer, ReportYear};
use std::collections::BTreeMap;

/// The consolidated AV failure database: every disengagement, accident,
/// and mileage row, queryable by manufacturer, car, and time.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FailureDatabase {
    disengagements: Vec<DisengagementRecord>,
    accidents: Vec<AccidentRecord>,
    mileage: Vec<MonthlyMileage>,
}

impl FailureDatabase {
    /// Creates an empty database.
    pub fn new() -> FailureDatabase {
        FailureDatabase::default()
    }

    /// Creates a database from record collections.
    pub fn from_records(
        disengagements: Vec<DisengagementRecord>,
        accidents: Vec<AccidentRecord>,
        mileage: Vec<MonthlyMileage>,
    ) -> FailureDatabase {
        FailureDatabase {
            disengagements,
            accidents,
            mileage,
        }
    }

    /// All disengagement records.
    pub fn disengagements(&self) -> &[DisengagementRecord] {
        &self.disengagements
    }

    /// All accident records.
    pub fn accidents(&self) -> &[AccidentRecord] {
        &self.accidents
    }

    /// All monthly mileage rows.
    pub fn mileage(&self) -> &[MonthlyMileage] {
        &self.mileage
    }

    /// Adds a disengagement.
    pub fn push_disengagement(&mut self, r: DisengagementRecord) {
        self.disengagements.push(r);
    }

    /// Adds an accident.
    pub fn push_accident(&mut self, r: AccidentRecord) {
        self.accidents.push(r);
    }

    /// Adds a mileage row.
    pub fn push_mileage(&mut self, r: MonthlyMileage) {
        self.mileage.push(r);
    }

    /// Manufacturers present anywhere in the database, sorted.
    pub fn manufacturers(&self) -> Vec<Manufacturer> {
        let mut set: Vec<Manufacturer> = Vec::new();
        for m in self
            .disengagements
            .iter()
            .map(|r| r.manufacturer)
            .chain(self.accidents.iter().map(|r| r.manufacturer))
            .chain(self.mileage.iter().map(|r| r.manufacturer))
        {
            if !set.contains(&m) {
                set.push(m);
            }
        }
        set.sort();
        set
    }

    /// Total autonomous miles across the whole database.
    pub fn total_miles(&self) -> f64 {
        self.mileage.iter().map(|r| r.miles).sum()
    }

    /// Total autonomous miles for one manufacturer.
    pub fn miles_for(&self, m: Manufacturer) -> f64 {
        self.mileage
            .iter()
            .filter(|r| r.manufacturer == m)
            .map(|r| r.miles)
            .sum()
    }

    /// Miles for one manufacturer within one report year.
    pub fn miles_for_year(&self, m: Manufacturer, year: ReportYear) -> f64 {
        self.mileage
            .iter()
            .filter(|r| r.manufacturer == m && r.report_year() == year)
            .map(|r| r.miles)
            .sum()
    }

    /// Disengagements for one manufacturer.
    pub fn disengagements_for(&self, m: Manufacturer) -> Vec<&DisengagementRecord> {
        self.disengagements
            .iter()
            .filter(|r| r.manufacturer == m)
            .collect()
    }

    /// Accidents for one manufacturer.
    pub fn accidents_for(&self, m: Manufacturer) -> Vec<&AccidentRecord> {
        self.accidents
            .iter()
            .filter(|r| r.manufacturer == m)
            .collect()
    }

    /// Distinct (non-redacted) cars seen for a manufacturer, from both
    /// mileage and disengagement rows.
    pub fn fleet_size(&self, m: Manufacturer) -> usize {
        let mut cars: Vec<u32> = Vec::new();
        let ids = self
            .mileage
            .iter()
            .filter(|r| r.manufacturer == m)
            .filter_map(|r| r.car.index())
            .chain(
                self.disengagements
                    .iter()
                    .filter(|r| r.manufacturer == m)
                    .filter_map(|r| r.car.index()),
            );
        for id in ids {
            if !cars.contains(&id) {
                cars.push(id);
            }
        }
        cars.len()
    }

    /// Per-car cumulative miles for a manufacturer, keyed by fleet index.
    pub fn miles_per_car(&self, m: Manufacturer) -> BTreeMap<u32, f64> {
        let mut map = BTreeMap::new();
        for r in self.mileage.iter().filter(|r| r.manufacturer == m) {
            if let CarId::Known(i) = r.car {
                *map.entry(i).or_insert(0.0) += r.miles;
            }
        }
        map
    }

    /// Monthly (month-start date, miles) series for a manufacturer,
    /// summed over cars, sorted by month.
    pub fn monthly_miles(&self, m: Manufacturer) -> Vec<(Date, f64)> {
        let mut map: BTreeMap<Date, f64> = BTreeMap::new();
        for r in self.mileage.iter().filter(|r| r.manufacturer == m) {
            *map.entry(r.month).or_insert(0.0) += r.miles;
        }
        map.into_iter().collect()
    }

    /// Monthly disengagement counts for a manufacturer (keyed by month
    /// start), sorted by month.
    pub fn monthly_disengagements(&self, m: Manufacturer) -> Vec<(Date, usize)> {
        let mut map: BTreeMap<Date, usize> = BTreeMap::new();
        for r in self.disengagements.iter().filter(|r| r.manufacturer == m) {
            let month = Date::month_start(r.date.year(), r.date.month())
                .expect("valid record date implies valid month");
            *map.entry(month).or_insert(0) += 1;
        }
        map.into_iter().collect()
    }

    /// Driver reaction times for one manufacturer (where reported).
    pub fn reaction_times(&self, m: Manufacturer) -> Vec<f64> {
        self.disengagements
            .iter()
            .filter(|r| r.manufacturer == m)
            .filter_map(|r| r.reaction_time_s)
            .collect()
    }

    /// Overall disengagements-per-accident ratio for a manufacturer
    /// (`None` when no accidents).
    pub fn dpa(&self, m: Manufacturer) -> Option<f64> {
        let accidents = self.accidents_for(m).len();
        if accidents == 0 {
            None
        } else {
            Some(self.disengagements_for(m).len() as f64 / accidents as f64)
        }
    }

    /// Merges another database into this one.
    pub fn merge(&mut self, other: FailureDatabase) {
        self.disengagements.extend(other.disengagements);
        self.accidents.extend(other.accidents);
        self.mileage.extend(other.mileage);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{Modality, RoadType, Weather};

    fn dis(m: Manufacturer, y: u16, mo: u8, rt: Option<f64>) -> DisengagementRecord {
        DisengagementRecord {
            manufacturer: m,
            car: CarId::Known(0),
            date: Date::new(y, mo, 10).unwrap(),
            modality: Modality::Manual,
            road_type: Some(RoadType::Street),
            weather: Some(Weather::Clear),
            reaction_time_s: rt,
            description: "perception failure".to_owned(),
        }
    }

    fn acc(m: Manufacturer) -> AccidentRecord {
        AccidentRecord {
            manufacturer: m,
            car: CarId::Redacted,
            date: Date::new(2016, 5, 1).unwrap(),
            location: "x".to_owned(),
            av_speed_mph: Some(5.0),
            other_speed_mph: Some(8.0),
            autonomous_at_impact: true,
            kind: crate::record::CollisionKind::RearEnd,
            severity: crate::record::Severity::Minor,
            description: "bump".to_owned(),
        }
    }

    fn mil(m: Manufacturer, car: u32, y: u16, mo: u8, miles: f64) -> MonthlyMileage {
        MonthlyMileage {
            manufacturer: m,
            car: CarId::Known(car),
            month: Date::month_start(y, mo).unwrap(),
            miles,
        }
    }

    fn db() -> FailureDatabase {
        FailureDatabase::from_records(
            vec![
                dis(Manufacturer::Waymo, 2015, 6, Some(0.7)),
                dis(Manufacturer::Waymo, 2016, 2, Some(0.9)),
                dis(Manufacturer::Waymo, 2016, 2, None),
                dis(Manufacturer::Bosch, 2016, 3, None),
            ],
            vec![acc(Manufacturer::Waymo)],
            vec![
                mil(Manufacturer::Waymo, 0, 2015, 6, 100.0),
                mil(Manufacturer::Waymo, 1, 2016, 2, 250.0),
                mil(Manufacturer::Waymo, 0, 2016, 2, 50.0),
                mil(Manufacturer::Bosch, 0, 2016, 3, 30.0),
            ],
        )
    }

    #[test]
    fn totals() {
        let d = db();
        assert_eq!(d.total_miles(), 430.0);
        assert_eq!(d.miles_for(Manufacturer::Waymo), 400.0);
        assert_eq!(d.miles_for(Manufacturer::Bosch), 30.0);
        assert_eq!(d.miles_for(Manufacturer::Tesla), 0.0);
    }

    #[test]
    fn miles_by_report_year() {
        let d = db();
        assert_eq!(
            d.miles_for_year(Manufacturer::Waymo, ReportYear::R2015),
            100.0
        );
        assert_eq!(
            d.miles_for_year(Manufacturer::Waymo, ReportYear::R2016),
            300.0
        );
    }

    #[test]
    fn fleet_size_counts_distinct_cars() {
        let d = db();
        assert_eq!(d.fleet_size(Manufacturer::Waymo), 2);
        assert_eq!(d.fleet_size(Manufacturer::Bosch), 1);
        assert_eq!(d.fleet_size(Manufacturer::Tesla), 0);
    }

    #[test]
    fn per_car_and_monthly_series() {
        let d = db();
        let per_car = d.miles_per_car(Manufacturer::Waymo);
        assert_eq!(per_car[&0], 150.0);
        assert_eq!(per_car[&1], 250.0);
        let monthly = d.monthly_miles(Manufacturer::Waymo);
        assert_eq!(monthly.len(), 2);
        assert_eq!(monthly[0].1, 100.0);
        assert_eq!(monthly[1].1, 300.0);
        let md = d.monthly_disengagements(Manufacturer::Waymo);
        assert_eq!(md.len(), 2);
        assert_eq!(md[1].1, 2);
    }

    #[test]
    fn reaction_times_filter_nones() {
        let d = db();
        assert_eq!(d.reaction_times(Manufacturer::Waymo), vec![0.7, 0.9]);
        assert!(d.reaction_times(Manufacturer::Bosch).is_empty());
    }

    #[test]
    fn dpa_ratio() {
        let d = db();
        assert_eq!(d.dpa(Manufacturer::Waymo), Some(3.0));
        assert_eq!(d.dpa(Manufacturer::Bosch), None);
    }

    #[test]
    fn manufacturers_sorted_unique() {
        let d = db();
        assert_eq!(
            d.manufacturers(),
            vec![Manufacturer::Bosch, Manufacturer::Waymo]
        );
    }

    #[test]
    fn merge_combines() {
        let mut a = db();
        let b = db();
        a.merge(b);
        assert_eq!(a.disengagements().len(), 8);
        assert_eq!(a.accidents().len(), 2);
        assert_eq!(a.total_miles(), 860.0);
    }
}
