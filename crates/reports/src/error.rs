use std::error::Error;
use std::fmt;

/// Error type for report parsing and normalization.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ReportError {
    /// A date string could not be parsed or was out of range.
    InvalidDate(String),
    /// A raw report line did not match the manufacturer's format.
    MalformedLine {
        /// Manufacturer whose format was expected.
        manufacturer: &'static str,
        /// 1-based line number within the document.
        line: usize,
        /// Why parsing failed.
        message: String,
    },
    /// An unknown manufacturer name was encountered.
    UnknownManufacturer(String),
    /// A field value was invalid (e.g. negative miles).
    InvalidField {
        /// Field name.
        field: &'static str,
        /// Offending value, rendered.
        value: String,
    },
    /// A record referenced data the database does not contain.
    MissingData(String),
}

impl fmt::Display for ReportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReportError::InvalidDate(s) => write!(f, "invalid date `{s}`"),
            ReportError::MalformedLine {
                manufacturer,
                line,
                message,
            } => write!(
                f,
                "malformed {manufacturer} report line {line}: {message}"
            ),
            ReportError::UnknownManufacturer(s) => write!(f, "unknown manufacturer `{s}`"),
            ReportError::InvalidField { field, value } => {
                write!(f, "invalid value `{value}` for field `{field}`")
            }
            ReportError::MissingData(what) => write!(f, "missing data: {what}"),
        }
    }
}

impl Error for ReportError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert_eq!(
            ReportError::InvalidDate("32/1/16".into()).to_string(),
            "invalid date `32/1/16`"
        );
        let e = ReportError::MalformedLine {
            manufacturer: "Nissan",
            line: 3,
            message: "missing separator".into(),
        };
        assert!(e.to_string().contains("line 3"));
    }

    #[test]
    fn send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ReportError>();
    }
}
