//! Domain vocabulary: manufacturers, road types, weather, disengagement
//! modality, and report years.

use crate::{ReportError, Result};
use std::fmt;

/// The twelve AV manufacturers in the CA DMV dataset (Section III-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Manufacturer {
    /// Mercedes-Benz.
    MercedesBenz,
    /// Robert Bosch.
    Bosch,
    /// Delphi Automotive.
    Delphi,
    /// GM Cruise.
    GmCruise,
    /// Nissan.
    Nissan,
    /// Tesla Motors.
    Tesla,
    /// Volkswagen.
    Volkswagen,
    /// Waymo (Google).
    Waymo,
    /// Uber ATC.
    Uber,
    /// Honda.
    Honda,
    /// Ford.
    Ford,
    /// BMW.
    Bmw,
}

impl Manufacturer {
    /// All manufacturers in the dataset.
    pub const ALL: [Manufacturer; 12] = [
        Manufacturer::MercedesBenz,
        Manufacturer::Bosch,
        Manufacturer::Delphi,
        Manufacturer::GmCruise,
        Manufacturer::Nissan,
        Manufacturer::Tesla,
        Manufacturer::Volkswagen,
        Manufacturer::Waymo,
        Manufacturer::Uber,
        Manufacturer::Honda,
        Manufacturer::Ford,
        Manufacturer::Bmw,
    ];

    /// The eight manufacturers the paper's statistical analysis keeps
    /// (Uber, BMW, Ford, and Honda reported too few disengagements).
    pub const ANALYZED: [Manufacturer; 8] = [
        Manufacturer::MercedesBenz,
        Manufacturer::Bosch,
        Manufacturer::Delphi,
        Manufacturer::GmCruise,
        Manufacturer::Nissan,
        Manufacturer::Tesla,
        Manufacturer::Volkswagen,
        Manufacturer::Waymo,
    ];

    /// Canonical display name (as used in the paper's tables).
    pub fn name(self) -> &'static str {
        match self {
            Manufacturer::MercedesBenz => "Mercedes-Benz",
            Manufacturer::Bosch => "Bosch",
            Manufacturer::Delphi => "Delphi",
            Manufacturer::GmCruise => "GMCruise",
            Manufacturer::Nissan => "Nissan",
            Manufacturer::Tesla => "Tesla",
            Manufacturer::Volkswagen => "Volkswagen",
            Manufacturer::Waymo => "Waymo",
            Manufacturer::Uber => "Uber ATC",
            Manufacturer::Honda => "Honda",
            Manufacturer::Ford => "Ford",
            Manufacturer::Bmw => "BMW",
        }
    }

    /// Parses a manufacturer from a report header; tolerant of the
    /// aliases seen in the dataset (`Google` for Waymo, `Benz`, `GM`).
    ///
    /// # Errors
    ///
    /// Returns [`ReportError::UnknownManufacturer`] for unknown names.
    pub fn parse(text: &str) -> Result<Manufacturer> {
        let t = text.trim().to_ascii_lowercase();
        Ok(match t.as_str() {
            "mercedes-benz" | "mercedes benz" | "mercedes" | "benz" | "daimler" => {
                Manufacturer::MercedesBenz
            }
            "bosch" | "robert bosch" => Manufacturer::Bosch,
            "delphi" | "delphi automotive" | "aptiv" => Manufacturer::Delphi,
            "gmcruise" | "gm cruise" | "cruise" | "gm" | "general motors" => {
                Manufacturer::GmCruise
            }
            "nissan" => Manufacturer::Nissan,
            "tesla" | "tesla motors" => Manufacturer::Tesla,
            "volkswagen" | "vw" => Manufacturer::Volkswagen,
            "waymo" | "google" | "waymo (google)" => Manufacturer::Waymo,
            "uber" | "uber atc" => Manufacturer::Uber,
            "honda" => Manufacturer::Honda,
            "ford" => Manufacturer::Ford,
            "bmw" => Manufacturer::Bmw,
            _ => return Err(ReportError::UnknownManufacturer(text.to_owned())),
        })
    }
}

impl fmt::Display for Manufacturer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The road types reported in the dataset (Section III-C: "9 distinct
/// road types", aggregated here into the categories the paper quotes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RoadType {
    /// Urban / city street.
    Street,
    /// Highway.
    Highway,
    /// Interstate.
    Interstate,
    /// Freeway.
    Freeway,
    /// Parking lot.
    ParkingLot,
    /// Suburban road.
    Suburban,
    /// Rural road.
    Rural,
}

impl RoadType {
    /// All road types.
    pub const ALL: [RoadType; 7] = [
        RoadType::Street,
        RoadType::Highway,
        RoadType::Interstate,
        RoadType::Freeway,
        RoadType::ParkingLot,
        RoadType::Suburban,
        RoadType::Rural,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            RoadType::Street => "street",
            RoadType::Highway => "highway",
            RoadType::Interstate => "interstate",
            RoadType::Freeway => "freeway",
            RoadType::ParkingLot => "parking lot",
            RoadType::Suburban => "suburban",
            RoadType::Rural => "rural",
        }
    }

    /// Parses a road-type token (tolerant of the variants in the logs).
    ///
    /// # Errors
    ///
    /// Returns [`ReportError::InvalidField`] for unknown tokens.
    pub fn parse(text: &str) -> Result<RoadType> {
        let t = text.trim().to_ascii_lowercase();
        Ok(match t.as_str() {
            "street" | "city" | "urban" | "city street" | "city and highway" => RoadType::Street,
            "highway" => RoadType::Highway,
            "interstate" => RoadType::Interstate,
            "freeway" => RoadType::Freeway,
            "parking lot" | "parking" => RoadType::ParkingLot,
            "suburban" => RoadType::Suburban,
            "rural" => RoadType::Rural,
            _ => {
                return Err(ReportError::InvalidField {
                    field: "road_type",
                    value: text.to_owned(),
                })
            }
        })
    }
}

impl fmt::Display for RoadType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Weather conditions reported with some disengagements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Weather {
    /// Clear / sunny / dry.
    Clear,
    /// Raining or wet pavement.
    Rain,
    /// Overcast.
    Overcast,
    /// Fog.
    Fog,
}

impl Weather {
    /// All weather conditions.
    pub const ALL: [Weather; 4] = [Weather::Clear, Weather::Rain, Weather::Overcast, Weather::Fog];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Weather::Clear => "clear",
            Weather::Rain => "rain",
            Weather::Overcast => "overcast",
            Weather::Fog => "fog",
        }
    }

    /// Parses a weather token.
    ///
    /// # Errors
    ///
    /// Returns [`ReportError::InvalidField`] for unknown tokens.
    pub fn parse(text: &str) -> Result<Weather> {
        let t = text.trim().to_ascii_lowercase();
        Ok(match t.as_str() {
            "clear" | "sunny" | "dry" | "sunny/dry" | "clear/dry" => Weather::Clear,
            "rain" | "raining" | "wet" | "raining/wet" => Weather::Rain,
            "overcast" | "cloudy" => Weather::Overcast,
            "fog" | "foggy" => Weather::Fog,
            _ => {
                return Err(ReportError::InvalidField {
                    field: "weather",
                    value: text.to_owned(),
                })
            }
        })
    }
}

impl fmt::Display for Weather {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// How a disengagement was initiated (Table V of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Modality {
    /// The ADS handed control back automatically.
    Automatic,
    /// The safety driver took control manually.
    Manual,
    /// Part of a planned test / fault-injection campaign (Bosch and GM
    /// Cruise report all disengagements this way).
    Planned,
}

impl Modality {
    /// All modalities.
    pub const ALL: [Modality; 3] = [Modality::Automatic, Modality::Manual, Modality::Planned];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Modality::Automatic => "automatic",
            Modality::Manual => "manual",
            Modality::Planned => "planned",
        }
    }

    /// Parses a modality token.
    ///
    /// # Errors
    ///
    /// Returns [`ReportError::InvalidField`] for unknown tokens.
    pub fn parse(text: &str) -> Result<Modality> {
        let t = text.trim().to_ascii_lowercase();
        Ok(match t.as_str() {
            "automatic" | "auto" | "av initiated" | "takeover-request" => Modality::Automatic,
            "manual" | "driver" | "driver initiated" | "safe operation" => Modality::Manual,
            "planned" | "planned test" | "test" => Modality::Planned,
            _ => {
                return Err(ReportError::InvalidField {
                    field: "modality",
                    value: text.to_owned(),
                })
            }
        })
    }
}

impl fmt::Display for Modality {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Which annual DMV release a report belongs to (Table I's two column
/// groups).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ReportYear {
    /// The 2016 release covering December 2014 – November 2015 testing
    /// (the paper's "2015–2016 Report" columns).
    R2015,
    /// The 2017 release covering December 2015 – November 2016 testing
    /// (the paper's "2016–2017 Report" columns).
    R2016,
}

impl ReportYear {
    /// Both report years.
    pub const ALL: [ReportYear; 2] = [ReportYear::R2015, ReportYear::R2016];

    /// Display label matching the paper's Table I headers.
    pub fn label(self) -> &'static str {
        match self {
            ReportYear::R2015 => "2015-2016 Report",
            ReportYear::R2016 => "2016-2017 Report",
        }
    }

    /// The numeric year the reporting window closes in (the year the
    /// release is named after) — the `year` segment of a provenance
    /// record id.
    pub fn filing_year(self) -> u16 {
        match self {
            ReportYear::R2015 => 2015,
            ReportYear::R2016 => 2016,
        }
    }

    /// The report year containing a given date, by the DMV's December–
    /// November reporting window. Dates before December 2014 fall in the
    /// first window (the program ramped up in September 2014).
    pub fn containing(date: &crate::Date) -> ReportYear {
        // Window boundary: December 1, 2015.
        if date.year() > 2015 || (date.year() == 2015 && date.month() == 12) {
            ReportYear::R2016
        } else {
            ReportYear::R2015
        }
    }
}

impl fmt::Display for ReportYear {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Date;

    #[test]
    fn manufacturer_aliases() {
        assert_eq!(Manufacturer::parse("Google").unwrap(), Manufacturer::Waymo);
        assert_eq!(
            Manufacturer::parse("benz").unwrap(),
            Manufacturer::MercedesBenz
        );
        assert_eq!(
            Manufacturer::parse("GM Cruise").unwrap(),
            Manufacturer::GmCruise
        );
        assert!(Manufacturer::parse("toyota").is_err());
    }

    #[test]
    fn manufacturer_name_round_trip() {
        for m in Manufacturer::ALL {
            assert_eq!(Manufacturer::parse(m.name()).unwrap(), m, "{m}");
        }
    }

    #[test]
    fn analyzed_subset() {
        assert_eq!(Manufacturer::ANALYZED.len(), 8);
        assert!(!Manufacturer::ANALYZED.contains(&Manufacturer::Uber));
        assert!(Manufacturer::ANALYZED.contains(&Manufacturer::Waymo));
    }

    #[test]
    fn road_type_parsing() {
        assert_eq!(RoadType::parse("Urban").unwrap(), RoadType::Street);
        assert_eq!(
            RoadType::parse("city and highway").unwrap(),
            RoadType::Street
        );
        assert_eq!(RoadType::parse("FREEWAY").unwrap(), RoadType::Freeway);
        assert!(RoadType::parse("moon").is_err());
    }

    #[test]
    fn weather_parsing() {
        assert_eq!(Weather::parse("Sunny/Dry").unwrap(), Weather::Clear);
        assert_eq!(Weather::parse("raining").unwrap(), Weather::Rain);
        assert!(Weather::parse("hail").is_err());
    }

    #[test]
    fn modality_parsing() {
        assert_eq!(
            Modality::parse("Takeover-Request").unwrap(),
            Modality::Automatic
        );
        assert_eq!(Modality::parse("Safe Operation").unwrap(), Modality::Manual);
        assert_eq!(Modality::parse("planned test").unwrap(), Modality::Planned);
        assert!(Modality::parse("psychic").is_err());
    }

    #[test]
    fn report_year_windows() {
        let d = Date::new(2015, 11, 30).unwrap();
        assert_eq!(ReportYear::containing(&d), ReportYear::R2015);
        let d = Date::new(2015, 12, 1).unwrap();
        assert_eq!(ReportYear::containing(&d), ReportYear::R2016);
        let d = Date::new(2014, 9, 15).unwrap();
        assert_eq!(ReportYear::containing(&d), ReportYear::R2015);
        let d = Date::new(2016, 11, 1).unwrap();
        assert_eq!(ReportYear::containing(&d), ReportYear::R2016);
    }

    #[test]
    fn displays() {
        assert_eq!(Manufacturer::Waymo.to_string(), "Waymo");
        assert_eq!(RoadType::ParkingLot.to_string(), "parking lot");
        assert_eq!(Modality::Automatic.to_string(), "automatic");
        assert_eq!(ReportYear::R2015.to_string(), "2015-2016 Report");
    }
}
