//! Report schema, parsing, and normalization (Stage II of the paper's
//! pipeline).
//!
//! The CA DMV does not enforce a data-format specification, so every
//! manufacturer files disengagement reports in its own layout, and the
//! layouts drift between the 2016 and 2017 releases. This crate provides:
//!
//! * the **uniform schema** the paper normalizes everything into
//!   ([`record::DisengagementRecord`], [`record::AccidentRecord`],
//!   [`record::MonthlyMileage`]),
//! * the domain vocabulary ([`types::Manufacturer`], [`types::RoadType`],
//!   [`types::Weather`], [`types::Modality`], [`types::ReportYear`]),
//! * a small validated calendar date ([`date::Date`]) able to parse the
//!   formats seen in the reports (`1/4/16`, `May-16`, `11/12/14`),
//! * one **parser per manufacturer raw format** ([`formats`]), exercising
//!   the fragmented-schema reality the paper describes,
//! * a normalizer from parsed raw lines to the uniform schema
//!   ([`normalize`]),
//! * the consolidated [`database::FailureDatabase`] that Stage IV analyses
//!   query.

pub mod database;
pub mod date;
mod error;
pub mod formats;
pub mod normalize;
pub mod record;
pub mod types;

pub use database::FailureDatabase;
pub use date::Date;
pub use error::ReportError;
pub use record::{AccidentRecord, DisengagementRecord, MonthlyMileage};
pub use types::{Manufacturer, Modality, ReportYear, RoadType, Weather};

/// Convenience result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, ReportError>;
