//! The uniform record schema everything is normalized into.

use crate::date::Date;
use crate::types::{Manufacturer, Modality, ReportYear, RoadType, Weather};
use crate::{ReportError, Result};

/// A vehicle identifier within a manufacturer's fleet.
///
/// Accident reports are sometimes redacted by the DMV (VIN removed), which
/// the paper calls out as the reason APM cannot always be computed per
/// vehicle; [`CarId::Redacted`] models that.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CarId {
    /// A known fleet index (0-based within the manufacturer).
    Known(u32),
    /// The DMV redacted the identifier.
    Redacted,
}

impl CarId {
    /// The fleet index, if not redacted.
    pub fn index(&self) -> Option<u32> {
        match self {
            CarId::Known(i) => Some(*i),
            CarId::Redacted => None,
        }
    }
}

impl CarId {
    /// Parses the display form (`car-N` / `[redacted]`).
    ///
    /// # Errors
    ///
    /// Returns [`ReportError::InvalidField`] for anything else.
    pub fn parse(text: &str) -> Result<CarId> {
        let t = text.trim();
        if t == "[redacted]" {
            return Ok(CarId::Redacted);
        }
        t.strip_prefix("car-")
            .and_then(|n| n.parse::<u32>().ok())
            .map(CarId::Known)
            .ok_or_else(|| ReportError::InvalidField {
                field: "car",
                value: text.to_owned(),
            })
    }
}

impl std::fmt::Display for CarId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CarId::Known(i) => write!(f, "car-{i}"),
            CarId::Redacted => f.write_str("[redacted]"),
        }
    }
}

/// One disengagement event in the uniform schema.
#[derive(Debug, Clone, PartialEq)]
pub struct DisengagementRecord {
    /// Reporting manufacturer.
    pub manufacturer: Manufacturer,
    /// Vehicle involved.
    pub car: CarId,
    /// Date of the event (month precision for some manufacturers).
    pub date: Date,
    /// How the disengagement was initiated.
    pub modality: Modality,
    /// Road type, when reported.
    pub road_type: Option<RoadType>,
    /// Weather, when reported.
    pub weather: Option<Weather>,
    /// Driver reaction time in seconds, when reported.
    pub reaction_time_s: Option<f64>,
    /// The free-text cause description (input to the Stage III NLP).
    pub description: String,
}

impl DisengagementRecord {
    /// Validates cross-field invariants (non-negative reaction time,
    /// non-empty description).
    ///
    /// # Errors
    ///
    /// Returns [`ReportError::InvalidField`] on violation.
    pub fn validate(&self) -> Result<()> {
        if let Some(rt) = self.reaction_time_s {
            if !rt.is_finite() || rt < 0.0 {
                return Err(ReportError::InvalidField {
                    field: "reaction_time_s",
                    value: rt.to_string(),
                });
            }
        }
        if self.description.trim().is_empty() {
            return Err(ReportError::InvalidField {
                field: "description",
                value: String::new(),
            });
        }
        Ok(())
    }

    /// The DMV release this record was filed in.
    pub fn report_year(&self) -> ReportYear {
        ReportYear::containing(&self.date)
    }
}

/// Damage severity recorded in accident reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Cosmetic or no damage.
    Minor,
    /// Vehicle damaged but drivable.
    Moderate,
    /// Vehicle disabled or injuries reported.
    Major,
}

impl Severity {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Severity::Minor => "minor",
            Severity::Moderate => "moderate",
            Severity::Major => "major",
        }
    }
}

impl Severity {
    /// Parses a severity name as rendered by [`Severity::name`].
    ///
    /// # Errors
    ///
    /// Returns [`ReportError::InvalidField`] for unknown names.
    pub fn parse(text: &str) -> Result<Severity> {
        Ok(match text.trim() {
            "minor" => Severity::Minor,
            "moderate" => Severity::Moderate,
            "major" => Severity::Major,
            _ => {
                return Err(ReportError::InvalidField {
                    field: "severity",
                    value: text.to_owned(),
                })
            }
        })
    }
}

impl std::fmt::Display for Severity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The collision geometry reported for an accident.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CollisionKind {
    /// Struck from behind (the dominant mode in the dataset).
    RearEnd,
    /// Side-swipe.
    SideSwipe,
    /// Head-on or angled frontal.
    Frontal,
    /// Collision with a fixed object or property.
    Object,
}

impl CollisionKind {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            CollisionKind::RearEnd => "rear-end",
            CollisionKind::SideSwipe => "side-swipe",
            CollisionKind::Frontal => "frontal",
            CollisionKind::Object => "object",
        }
    }
}

impl CollisionKind {
    /// Parses a collision-kind name as rendered by
    /// [`CollisionKind::name`].
    ///
    /// # Errors
    ///
    /// Returns [`ReportError::InvalidField`] for unknown names.
    pub fn parse(text: &str) -> Result<CollisionKind> {
        Ok(match text.trim() {
            "rear-end" => CollisionKind::RearEnd,
            "side-swipe" => CollisionKind::SideSwipe,
            "frontal" => CollisionKind::Frontal,
            "object" => CollisionKind::Object,
            _ => {
                return Err(ReportError::InvalidField {
                    field: "collision kind",
                    value: text.to_owned(),
                })
            }
        })
    }
}

impl std::fmt::Display for CollisionKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One accident (OL 316) report in the uniform schema.
#[derive(Debug, Clone, PartialEq)]
pub struct AccidentRecord {
    /// Reporting manufacturer.
    pub manufacturer: Manufacturer,
    /// Vehicle involved (often redacted).
    pub car: CarId,
    /// Date of the collision.
    pub date: Date,
    /// Free-text location ("intersection of X and Y, Mountain View CA").
    pub location: String,
    /// Speed of the AV at collision, mph, when reported.
    pub av_speed_mph: Option<f64>,
    /// Speed of the other (manual) vehicle, mph, when reported.
    pub other_speed_mph: Option<f64>,
    /// Whether the AV was in autonomous mode at the moment of collision.
    pub autonomous_at_impact: bool,
    /// Collision geometry.
    pub kind: CollisionKind,
    /// Damage severity.
    pub severity: Severity,
    /// Free-text narrative of the incident.
    pub description: String,
}

impl AccidentRecord {
    /// Relative speed of the colliding vehicles (|AV − other|), when both
    /// are reported — the x-axis of Fig. 12c.
    pub fn relative_speed_mph(&self) -> Option<f64> {
        match (self.av_speed_mph, self.other_speed_mph) {
            (Some(a), Some(b)) => Some((a - b).abs()),
            _ => None,
        }
    }

    /// Validates speed ranges.
    ///
    /// # Errors
    ///
    /// Returns [`ReportError::InvalidField`] for negative or absurd
    /// (> 120 mph) speeds.
    pub fn validate(&self) -> Result<()> {
        for (name, v) in [
            ("av_speed_mph", self.av_speed_mph),
            ("other_speed_mph", self.other_speed_mph),
        ] {
            if let Some(s) = v {
                if !s.is_finite() || !(0.0..=120.0).contains(&s) {
                    return Err(ReportError::InvalidField {
                        field: name,
                        value: s.to_string(),
                    });
                }
            }
        }
        Ok(())
    }

    /// The DMV release this record was filed in.
    pub fn report_year(&self) -> ReportYear {
        ReportYear::containing(&self.date)
    }
}

/// Autonomous miles driven by one car in one calendar month — the
/// granularity of the DMV mileage tables.
#[derive(Debug, Clone, PartialEq)]
pub struct MonthlyMileage {
    /// Reporting manufacturer.
    pub manufacturer: Manufacturer,
    /// Vehicle.
    pub car: CarId,
    /// First day of the month covered.
    pub month: Date,
    /// Autonomous miles driven that month.
    pub miles: f64,
}

impl MonthlyMileage {
    /// Validates the mileage value.
    ///
    /// # Errors
    ///
    /// Returns [`ReportError::InvalidField`] for negative or non-finite
    /// miles.
    pub fn validate(&self) -> Result<()> {
        if !self.miles.is_finite() || self.miles < 0.0 {
            return Err(ReportError::InvalidField {
                field: "miles",
                value: self.miles.to_string(),
            });
        }
        Ok(())
    }

    /// The DMV release this row was filed in.
    pub fn report_year(&self) -> ReportYear {
        ReportYear::containing(&self.month)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn disengagement() -> DisengagementRecord {
        DisengagementRecord {
            manufacturer: Manufacturer::Nissan,
            car: CarId::Known(0),
            date: Date::new(2016, 1, 4).unwrap(),
            modality: Modality::Manual,
            road_type: Some(RoadType::Street),
            weather: Some(Weather::Clear),
            reaction_time_s: Some(0.9),
            description: "software module froze".to_owned(),
        }
    }

    #[test]
    fn disengagement_validates() {
        assert!(disengagement().validate().is_ok());
        let mut bad = disengagement();
        bad.reaction_time_s = Some(-1.0);
        assert!(bad.validate().is_err());
        let mut empty = disengagement();
        empty.description = "  ".to_owned();
        assert!(empty.validate().is_err());
    }

    #[test]
    fn report_year_derived_from_date() {
        assert_eq!(disengagement().report_year(), ReportYear::R2016);
        let mut early = disengagement();
        early.date = Date::new(2015, 3, 1).unwrap();
        assert_eq!(early.report_year(), ReportYear::R2015);
    }

    fn accident() -> AccidentRecord {
        AccidentRecord {
            manufacturer: Manufacturer::Waymo,
            car: CarId::Redacted,
            date: Date::new(2016, 5, 10).unwrap(),
            location: "El Camino Real & Clark Ave, Mountain View CA".to_owned(),
            av_speed_mph: Some(4.0),
            other_speed_mph: Some(10.0),
            autonomous_at_impact: true,
            kind: CollisionKind::RearEnd,
            severity: Severity::Minor,
            description: "rear vehicle collided while AV yielded to pedestrian".to_owned(),
        }
    }

    #[test]
    fn relative_speed() {
        assert_eq!(accident().relative_speed_mph(), Some(6.0));
        let mut a = accident();
        a.other_speed_mph = None;
        assert_eq!(a.relative_speed_mph(), None);
    }

    #[test]
    fn accident_speed_validation() {
        assert!(accident().validate().is_ok());
        let mut bad = accident();
        bad.av_speed_mph = Some(500.0);
        assert!(bad.validate().is_err());
        let mut neg = accident();
        neg.other_speed_mph = Some(-2.0);
        assert!(neg.validate().is_err());
    }

    #[test]
    fn car_id_display_and_index() {
        assert_eq!(CarId::Known(3).to_string(), "car-3");
        assert_eq!(CarId::Redacted.to_string(), "[redacted]");
        assert_eq!(CarId::Known(3).index(), Some(3));
        assert_eq!(CarId::Redacted.index(), None);
    }

    #[test]
    fn mileage_validation() {
        let m = MonthlyMileage {
            manufacturer: Manufacturer::Waymo,
            car: CarId::Known(1),
            month: Date::month_start(2016, 5).unwrap(),
            miles: 1200.0,
        };
        assert!(m.validate().is_ok());
        let mut bad = m.clone();
        bad.miles = -1.0;
        assert!(bad.validate().is_err());
        assert_eq!(m.report_year(), ReportYear::R2016);
    }
}
