//! Normalization: raw documents → uniform records (step 2 of the
//! paper's pipeline).
//!
//! Parsing is *tolerant*: a scanned report in which OCR mangled some
//! lines should still yield every parseable record. Failures are
//! collected, not fatal — mirroring the paper's manual-fallback step for
//! lines Tesseract could not recover.

use crate::formats::disengagement::format_for;
use crate::formats::document::{DocumentKind, RawDocument};
use crate::formats::{parse_accident_form, parse_mileage_table};
use crate::record::{AccidentRecord, DisengagementRecord, MonthlyMileage};
use crate::ReportError;

/// Outcome of normalizing one document: the records recovered plus any
/// per-line failures.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Normalized {
    /// Disengagement events recovered.
    pub disengagements: Vec<DisengagementRecord>,
    /// Accident reports recovered.
    pub accidents: Vec<AccidentRecord>,
    /// Monthly mileage rows recovered.
    pub mileage: Vec<MonthlyMileage>,
    /// Lines/documents that failed to parse (for the manual-review queue).
    pub failures: Vec<ReportError>,
}

impl Normalized {
    /// Total records recovered across all three kinds.
    pub fn record_count(&self) -> usize {
        self.disengagements.len() + self.accidents.len() + self.mileage.len()
    }

    /// Fraction of parse attempts that succeeded (1.0 when nothing
    /// failed; counts failures against recovered records).
    pub fn yield_rate(&self) -> f64 {
        let total = self.record_count() + self.failures.len();
        if total == 0 {
            1.0
        } else {
            self.record_count() as f64 / total as f64
        }
    }

    /// Merges another normalization outcome into this one.
    pub fn merge(&mut self, other: Normalized) {
        self.disengagements.extend(other.disengagements);
        self.accidents.extend(other.accidents);
        self.mileage.extend(other.mileage);
        self.failures.extend(other.failures);
    }
}

/// Normalizes one raw document into uniform records.
///
/// Disengagement filings are parsed line-by-line with the filer's
/// manufacturer-specific format; the trailing mileage table (if present)
/// is parsed with the shared table format. Accident filings are parsed
/// as OL 316 forms.
pub fn normalize_document(doc: &RawDocument) -> Normalized {
    normalize_document_inner(doc, None)
}

/// [`normalize_document`], recording Stage II telemetry into `obs`:
/// attempted/parsed/failed line counters, total and per-manufacturer
/// (the within-stage identity `parse.dis.lines == parse.dis.parsed +
/// parse.dis.failed` holds by construction — each attempted line lands
/// in exactly one bucket).
pub fn normalize_document_with(doc: &RawDocument, obs: &disengage_obs::Collector) -> Normalized {
    normalize_document_inner(doc, Some(obs))
}

fn normalize_document_inner(doc: &RawDocument, obs: Option<&disengage_obs::Collector>) -> Normalized {
    normalize_document_traced(doc, 0, obs, &disengage_obs::ProvenanceLog::disabled()).0
}

/// [`normalize_document_with`] plus provenance: assigns every
/// recovered disengagement a stable [`disengage_obs::RecordId`]
/// (manufacturer, filing year, car, per-car ordinal within this
/// document) and records `normalized`/`quarantined` events into
/// `prov` — `normalized` on the record's subject (carrying `doc_index`
/// and the 1-based source line so a record's lineage joins to its
/// line's OCR/chaos events), `quarantined` on the offending line (or
/// the document, for whole-document accident/mileage failures).
///
/// The returned ids are aligned index-for-index with
/// `Normalized::disengagements` and are computed whether or not `prov`
/// is enabled, so callers can thread them to Stage III unconditionally.
pub fn normalize_document_traced(
    doc: &RawDocument,
    doc_index: usize,
    obs: Option<&disengage_obs::Collector>,
    prov: &disengage_obs::ProvenanceLog,
) -> (Normalized, Vec<disengage_obs::RecordId>) {
    use disengage_obs::{ProvenanceEvent, RecordId, Subject};
    let count = |name: &str| {
        if let Some(obs) = obs {
            obs.incr(name);
        }
    };
    let count_m = |stem: &str| {
        if let Some(obs) = obs {
            obs.incr(stem);
            obs.incr(&format!(
                "{stem}.{}",
                disengage_obs::key_segment(doc.manufacturer.name())
            ));
        }
    };
    let quarantine = |subject: Subject, reason: &dyn std::fmt::Display| {
        if prov.is_enabled() {
            prov.push(
                subject,
                ProvenanceEvent::Quarantined {
                    stage: "stage_ii_parse".to_owned(),
                    reason: reason.to_string(),
                },
            );
        }
    };
    let mut out = Normalized::default();
    let mut ids = Vec::new();
    match doc.kind {
        DocumentKind::Accident => {
            count("parse.acc.docs");
            match parse_accident_form(&doc.text) {
                Ok(mut record) => {
                    // The form is standardized, but a mangled manufacturer
                    // line could mis-attribute the filing; trust provenance.
                    record.manufacturer = doc.manufacturer;
                    out.accidents.push(record);
                    count("parse.acc.parsed");
                }
                Err(e) => {
                    quarantine(Subject::Document(doc_index), &e);
                    out.failures.push(e);
                    count("parse.acc.failed");
                }
            }
        }
        DocumentKind::Disengagements => {
            let format = format_for(doc.manufacturer);
            let (log_text, mileage_text) = doc.sections();
            // Per-car ordinal within this document: the corpus emits one
            // disengagement document per (manufacturer, filing year), so
            // (manufacturer, year, car, ordinal) identifies the record.
            let mut car_seq: std::collections::BTreeMap<String, u32> =
                std::collections::BTreeMap::new();
            for (i, line) in log_text.lines().enumerate() {
                let line = line.trim();
                if line.is_empty() {
                    continue;
                }
                count("parse.dis.lines");
                match format.parse_line(line, i + 1) {
                    Ok(mut record) => {
                        record.manufacturer = doc.manufacturer;
                        match record.validate() {
                            Ok(()) => {
                                let car = record.car.to_string();
                                let seq = car_seq.entry(car.clone()).or_insert(0);
                                let id = RecordId::new(
                                    doc.manufacturer.name(),
                                    doc.report_year.filing_year(),
                                    &car,
                                    *seq,
                                );
                                *seq += 1;
                                if prov.is_enabled() {
                                    prov.push(
                                        Subject::Record(id.clone()),
                                        ProvenanceEvent::Normalized {
                                            doc: doc_index,
                                            line: i + 1,
                                            summary: format!(
                                                "{} {} {}",
                                                record.car, record.date, record.modality
                                            ),
                                        },
                                    );
                                }
                                ids.push(id);
                                out.disengagements.push(record);
                                count_m("parse.dis.parsed");
                            }
                            Err(e) => {
                                quarantine(
                                    Subject::Line {
                                        doc: doc_index,
                                        line: i + 1,
                                    },
                                    &e,
                                );
                                out.failures.push(e);
                                count_m("parse.dis.failed");
                            }
                        }
                    }
                    Err(e) => {
                        quarantine(
                            Subject::Line {
                                doc: doc_index,
                                line: i + 1,
                            },
                            &e,
                        );
                        out.failures.push(e);
                        count_m("parse.dis.failed");
                    }
                }
            }
            if !mileage_text.is_empty() {
                match parse_mileage_table(doc.manufacturer, mileage_text) {
                    Ok(rows) => {
                        if let Some(obs) = obs {
                            obs.add("parse.mileage.rows", rows.len() as u64);
                        }
                        out.mileage.extend(rows);
                    }
                    Err(e) => {
                        quarantine(Subject::Document(doc_index), &e);
                        out.failures.push(e);
                        count("parse.mileage.tables_failed");
                    }
                }
            }
        }
    }
    (out, ids)
}

/// Normalizes a batch of documents, merging all outcomes.
pub fn normalize_all<'a>(docs: impl IntoIterator<Item = &'a RawDocument>) -> Normalized {
    let mut out = Normalized::default();
    for doc in docs {
        out.merge(normalize_document(doc));
    }
    out
}

/// [`normalize_all`] with Stage II telemetry (see
/// [`normalize_document_with`]).
pub fn normalize_all_with<'a>(
    docs: impl IntoIterator<Item = &'a RawDocument>,
    obs: &disengage_obs::Collector,
) -> Normalized {
    let mut out = Normalized::default();
    for doc in docs {
        out.merge(normalize_document_with(doc, obs));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::date::Date;
    use crate::formats::disengagement::ReportFormat;
    use crate::formats::render_accident_form;
    use crate::record::{CarId, CollisionKind, Severity};
    use crate::types::{Manufacturer, Modality, ReportYear, RoadType, Weather};

    fn sample_record() -> DisengagementRecord {
        DisengagementRecord {
            manufacturer: Manufacturer::Nissan,
            car: CarId::Known(0),
            date: Date::new(2016, 1, 4).unwrap(),
            modality: Modality::Manual,
            road_type: Some(RoadType::Street),
            weather: Some(Weather::Clear),
            reaction_time_s: Some(0.8),
            description: "software module froze, driver safely disengaged".to_owned(),
        }
    }

    #[test]
    fn disengagement_document_normalizes() {
        let f = crate::formats::disengagement::NissanFormat;
        let text = format!(
            "{}\n{}\n",
            f.render(&sample_record()),
            f.render(&sample_record())
        );
        let doc = RawDocument::new(
            Manufacturer::Nissan,
            ReportYear::R2016,
            DocumentKind::Disengagements,
            text,
        );
        let n = normalize_document(&doc);
        assert_eq!(n.disengagements.len(), 2);
        assert!(n.failures.is_empty());
        assert_eq!(n.yield_rate(), 1.0);
    }

    #[test]
    fn bad_lines_collected_not_fatal() {
        let f = crate::formats::disengagement::NissanFormat;
        let text = format!(
            "{}\nOCR GARBAGE @@@@\n{}\n",
            f.render(&sample_record()),
            f.render(&sample_record())
        );
        let doc = RawDocument::new(
            Manufacturer::Nissan,
            ReportYear::R2016,
            DocumentKind::Disengagements,
            text,
        );
        let n = normalize_document(&doc);
        assert_eq!(n.disengagements.len(), 2);
        assert_eq!(n.failures.len(), 1);
        assert!((n.yield_rate() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn mileage_section_parsed() {
        let f = crate::formats::disengagement::NissanFormat;
        let text = format!(
            "{}\nMILEAGE\ncar-0 2016-01 120.5\ncar-1 2016-01 98.0\n",
            f.render(&sample_record())
        );
        let doc = RawDocument::new(
            Manufacturer::Nissan,
            ReportYear::R2016,
            DocumentKind::Disengagements,
            text,
        );
        let n = normalize_document(&doc);
        assert_eq!(n.disengagements.len(), 1);
        assert_eq!(n.mileage.len(), 2);
        assert_eq!(n.mileage[0].manufacturer, Manufacturer::Nissan);
    }

    #[test]
    fn accident_document_normalizes_and_trusts_provenance() {
        let record = AccidentRecord {
            manufacturer: Manufacturer::Waymo,
            car: CarId::Redacted,
            date: Date::new(2016, 5, 10).unwrap(),
            location: "Mountain View CA".to_owned(),
            av_speed_mph: Some(4.0),
            other_speed_mph: Some(10.0),
            autonomous_at_impact: true,
            kind: CollisionKind::RearEnd,
            severity: Severity::Minor,
            description: "rear collision".to_owned(),
        };
        let doc = RawDocument::new(
            Manufacturer::GmCruise, // provenance differs from the form body
            ReportYear::R2016,
            DocumentKind::Accident,
            render_accident_form(&record),
        );
        let n = normalize_document(&doc);
        assert_eq!(n.accidents.len(), 1);
        assert_eq!(n.accidents[0].manufacturer, Manufacturer::GmCruise);
    }

    #[test]
    fn unparseable_accident_collected() {
        let doc = RawDocument::new(
            Manufacturer::Waymo,
            ReportYear::R2016,
            DocumentKind::Accident,
            "completely garbled scan",
        );
        let n = normalize_document(&doc);
        assert!(n.accidents.is_empty());
        assert_eq!(n.failures.len(), 1);
    }

    #[test]
    fn traced_normalize_assigns_stable_ids_and_events() {
        use disengage_obs::{ProvenanceEvent, ProvenanceLog, Subject};
        let f = crate::formats::disengagement::NissanFormat;
        let mut second = sample_record();
        second.car = CarId::Known(3);
        let text = format!(
            "{}\nOCR GARBAGE @@@@\n{}\n{}\n",
            f.render(&sample_record()),
            f.render(&second),
            f.render(&sample_record())
        );
        let doc = RawDocument::new(
            Manufacturer::Nissan,
            ReportYear::R2016,
            DocumentKind::Disengagements,
            text,
        );
        let prov = ProvenanceLog::new();
        let (n, ids) = normalize_document_traced(&doc, 5, None, &prov);
        assert_eq!(n.disengagements.len(), 3);
        assert_eq!(n.failures.len(), 1);
        // Ids align with the disengagements and disambiguate repeat cars
        // by per-car ordinal.
        let rendered: Vec<String> = ids.iter().map(|i| i.to_string()).collect();
        assert_eq!(
            rendered,
            ["nissan/2016/car-0/0", "nissan/2016/car-3/0", "nissan/2016/car-0/1"]
        );
        // One normalized event per record (joined to doc 5 and its line),
        // one quarantined event on the garbage line.
        let entries = prov.entries();
        let normalized: Vec<_> = entries
            .iter()
            .filter(|e| matches!(e.event, ProvenanceEvent::Normalized { .. }))
            .collect();
        assert_eq!(normalized.len(), 3);
        assert!(matches!(
            normalized[0].event,
            ProvenanceEvent::Normalized { doc: 5, line: 1, .. }
        ));
        let quarantined: Vec<_> = entries
            .iter()
            .filter(|e| matches!(e.event, ProvenanceEvent::Quarantined { .. }))
            .collect();
        assert_eq!(quarantined.len(), 1);
        assert_eq!(quarantined[0].subject, Subject::Line { doc: 5, line: 2 });
        // Disabled provenance still yields the same ids.
        let (_, silent_ids) =
            normalize_document_traced(&doc, 5, None, &ProvenanceLog::disabled());
        assert_eq!(silent_ids, ids);
    }

    #[test]
    fn normalize_all_merges() {
        let f = crate::formats::disengagement::NissanFormat;
        let d1 = RawDocument::new(
            Manufacturer::Nissan,
            ReportYear::R2016,
            DocumentKind::Disengagements,
            f.render(&sample_record()),
        );
        let d2 = d1.clone();
        let n = normalize_all([&d1, &d2]);
        assert_eq!(n.disengagements.len(), 2);
        assert_eq!(n.record_count(), 2);
    }
}
