//! The monthly autonomous-mileage table included with each disengagement
//! report ("monthly autonomous miles traveled", Section III-C).

use crate::date::Date;
use crate::record::{CarId, MonthlyMileage};
use crate::types::Manufacturer;
use crate::{ReportError, Result};

/// Renders a mileage table: one `car-N YYYY-MM miles` row per entry,
/// under a `MILEAGE` header.
pub fn render_mileage_table(rows: &[MonthlyMileage]) -> String {
    let mut out = String::from("MILEAGE\n");
    for r in rows {
        out.push_str(&format!(
            "{} {:04}-{:02} {:.1}\n",
            r.car,
            r.month.year(),
            r.month.month(),
            r.miles
        ));
    }
    out
}

/// Parses a mileage table rendered by [`render_mileage_table`].
///
/// # Errors
///
/// Returns [`ReportError::MalformedLine`] for rows that do not match,
/// and [`ReportError::InvalidField`] for negative mileage.
pub fn parse_mileage_table(
    manufacturer: Manufacturer,
    text: &str,
) -> Result<Vec<MonthlyMileage>> {
    let mut rows = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line_no = i + 1;
        let line = line.trim();
        if line.is_empty() || line == "MILEAGE" {
            continue;
        }
        let tokens: Vec<&str> = line.split_whitespace().collect();
        if tokens.len() != 3 {
            return Err(ReportError::MalformedLine {
                manufacturer: "mileage table",
                line: line_no,
                message: format!("expected 3 tokens, found {}", tokens.len()),
            });
        }
        let car = if tokens[0] == "[redacted]" {
            CarId::Redacted
        } else {
            tokens[0]
                .strip_prefix("car-")
                .and_then(|n| n.parse::<u32>().ok())
                .map(CarId::Known)
                .ok_or_else(|| ReportError::MalformedLine {
                    manufacturer: "mileage table",
                    line: line_no,
                    message: "bad car token".to_owned(),
                })?
        };
        let (y, m) = tokens[1].split_once('-').ok_or_else(|| {
            ReportError::MalformedLine {
                manufacturer: "mileage table",
                line: line_no,
                message: "bad month token".to_owned(),
            }
        })?;
        let year: u16 = y.parse().map_err(|_| ReportError::InvalidDate(tokens[1].to_owned()))?;
        let month: u8 = m.parse().map_err(|_| ReportError::InvalidDate(tokens[1].to_owned()))?;
        let miles: f64 = tokens[2].parse().map_err(|_| ReportError::InvalidField {
            field: "miles",
            value: tokens[2].to_owned(),
        })?;
        let row = MonthlyMileage {
            manufacturer,
            car,
            month: Date::month_start(year, month)?,
            miles,
        };
        row.validate()?;
        rows.push(row);
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows() -> Vec<MonthlyMileage> {
        vec![
            MonthlyMileage {
                manufacturer: Manufacturer::Waymo,
                car: CarId::Known(0),
                month: Date::month_start(2016, 5).unwrap(),
                miles: 1034.2,
            },
            MonthlyMileage {
                manufacturer: Manufacturer::Waymo,
                car: CarId::Known(1),
                month: Date::month_start(2016, 6).unwrap(),
                miles: 0.0,
            },
        ]
    }

    #[test]
    fn round_trip() {
        let text = render_mileage_table(&rows());
        let parsed = parse_mileage_table(Manufacturer::Waymo, &text).unwrap();
        assert_eq!(parsed, rows());
    }

    #[test]
    fn blank_lines_skipped() {
        let text = "MILEAGE\n\ncar-0 2016-05 10.0\n\n";
        let parsed = parse_mileage_table(Manufacturer::Bosch, text).unwrap();
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed[0].manufacturer, Manufacturer::Bosch);
    }

    #[test]
    fn malformed_rows_rejected() {
        assert!(parse_mileage_table(Manufacturer::Waymo, "car-0 2016-05").is_err());
        assert!(parse_mileage_table(Manufacturer::Waymo, "bike-0 2016-05 1.0").is_err());
        assert!(parse_mileage_table(Manufacturer::Waymo, "car-0 201605 1.0").is_err());
        assert!(parse_mileage_table(Manufacturer::Waymo, "car-0 2016-13 1.0").is_err());
        assert!(parse_mileage_table(Manufacturer::Waymo, "car-0 2016-05 -3.0").is_err());
    }

    #[test]
    fn redacted_car_parses() {
        let parsed =
            parse_mileage_table(Manufacturer::Waymo, "[redacted] 2016-05 12.0").unwrap();
        assert_eq!(parsed[0].car, CarId::Redacted);
    }
}
