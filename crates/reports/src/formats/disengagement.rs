//! Disengagement-log line formats, one per manufacturer.
//!
//! Layouts are modeled on the verbatim samples in Table II of the paper:
//!
//! * Nissan: `1/4/16 — 1:25 PM — Leaf #1 (Alfa) — <description> — City — Sunny/Dry`
//! * Waymo: `May-16 — Highway — Safe Operation — <description>`
//! * Volkswagen: `11/12/14 — 18:24:03 — Takeover-Request — <description>`
//!
//! The remaining manufacturers use layouts consistent with their real
//! filings (pipe-separated tables for Mercedes-Benz and Tesla, key-value
//! suffixes for Bosch, CSV rows for Delphi, terse prefixed rows for GM
//! Cruise). Every format can round-trip: `parse(render(r))` recovers the
//! fields `r` carries in that format (formats that omit a field — e.g.
//! Waymo reports month precision only — lose exactly that field).

use crate::date::Date;
use crate::record::{CarId, DisengagementRecord};
use crate::types::{Manufacturer, Modality, RoadType, Weather};
use crate::{ReportError, Result};

/// The em-dash field separator used in several manufacturers' reports.
pub const DASH_SEP: &str = " — ";

/// A disengagement-log format: renders uniform records into the
/// manufacturer's layout and parses lines of that layout back.
///
/// Implementations are data-format adapters; they do **not** interpret
/// the free-text description (that is Stage III's job).
pub trait ReportFormat {
    /// The manufacturer whose filings use this layout.
    fn manufacturer(&self) -> Manufacturer;

    /// Renders one record as one log line (no trailing newline).
    fn render(&self, record: &DisengagementRecord) -> String;

    /// Parses one log line back into a uniform record.
    ///
    /// # Errors
    ///
    /// Returns [`ReportError::MalformedLine`] when the line does not
    /// match the layout.
    fn parse_line(&self, line: &str, line_no: usize) -> Result<DisengagementRecord>;
}

/// Returns the format adapter for a manufacturer.
pub fn format_for(manufacturer: Manufacturer) -> Box<dyn ReportFormat + Send + Sync> {
    match manufacturer {
        Manufacturer::Nissan => Box::new(NissanFormat),
        Manufacturer::Waymo => Box::new(WaymoFormat),
        Manufacturer::Volkswagen => Box::new(VolkswagenFormat),
        Manufacturer::MercedesBenz => Box::new(BenzFormat),
        Manufacturer::Bosch => Box::new(BoschFormat),
        Manufacturer::Delphi => Box::new(DelphiFormat),
        Manufacturer::GmCruise => Box::new(GmCruiseFormat),
        Manufacturer::Tesla => Box::new(TeslaFormat),
        // The four sparse reporters file in the pipe layout too.
        Manufacturer::Uber
        | Manufacturer::Honda
        | Manufacturer::Ford
        | Manufacturer::Bmw => Box::new(BenzFormat),
    }
}

fn malformed(manufacturer: &'static str, line_no: usize, message: impl Into<String>) -> ReportError {
    ReportError::MalformedLine {
        manufacturer,
        line: line_no,
        message: message.into(),
    }
}

fn render_reaction(rt: Option<f64>) -> String {
    match rt {
        Some(s) => format!(" [reaction: {s:.2}s]"),
        None => String::new(),
    }
}

/// Splits a trailing ` [reaction: X.XXs]` annotation off a description.
fn split_reaction(desc: &str) -> (String, Option<f64>) {
    if let Some(start) = desc.rfind(" [reaction: ") {
        if let Some(rest) = desc[start..].strip_prefix(" [reaction: ") {
            if let Some(num) = rest.strip_suffix("s]") {
                if let Ok(v) = num.parse::<f64>() {
                    return (desc[..start].to_owned(), Some(v));
                }
            }
        }
    }
    (desc.to_owned(), None)
}

fn render_car(car: &CarId) -> String {
    match car {
        CarId::Known(i) => format!("car {i}"),
        CarId::Redacted => "car ?".to_owned(),
    }
}

fn parse_car(text: &str) -> Option<CarId> {
    let t = text.trim();
    let rest = t.strip_prefix("car ").or_else(|| t.strip_prefix("Car "))?;
    if rest.trim() == "?" {
        return Some(CarId::Redacted);
    }
    rest.trim().parse::<u32>().ok().map(CarId::Known)
}

/// Nissan: `M/D/YY — H:MM AM/PM — Leaf #N (name) — <desc>[ [reaction: X.XXs]] — <road> — <weather>`.
#[derive(Debug, Clone, Copy, Default)]
pub struct NissanFormat;

const NATO: [&str; 8] = [
    "Alfa", "Bravo", "Charlie", "Delta", "Echo", "Foxtrot", "Golf", "Hotel",
];

impl ReportFormat for NissanFormat {
    fn manufacturer(&self) -> Manufacturer {
        Manufacturer::Nissan
    }

    fn render(&self, r: &DisengagementRecord) -> String {
        let idx = r.car.index().unwrap_or(0);
        let name = NATO[(idx as usize) % NATO.len()];
        let road = r.road_type.map_or("-".to_owned(), |rt| rt.to_string());
        let weather = r.weather.map_or("-".to_owned(), |w| w.to_string());
        let date = format!(
            "{}/{}/{:02}",
            r.date.month(),
            r.date.day(),
            r.date.year() % 100
        );
        let vehicle = format!("Leaf #{} ({})", idx + 1, name);
        // Nissan's logs narrate who initiated the disengagement.
        let initiator = match r.modality {
            Modality::Manual => "driver initiated",
            _ => "system initiated",
        };
        let desc = format!(
            "{} ({initiator}){}",
            r.description,
            render_reaction(r.reaction_time_s)
        );
        [date.as_str(), "11:20 AM", &vehicle, &desc, &road, &weather].join(DASH_SEP)
    }

    fn parse_line(&self, line: &str, line_no: usize) -> Result<DisengagementRecord> {
        let parts: Vec<&str> = line.split(DASH_SEP).collect();
        if parts.len() != 6 {
            return Err(malformed(
                "Nissan",
                line_no,
                format!("expected 6 dash-separated fields, found {}", parts.len()),
            ));
        }
        let date = Date::parse(parts[0])
            .map_err(|e| malformed("Nissan", line_no, e.to_string()))?;
        let car = parts[2]
            .trim()
            .strip_prefix("Leaf #")
            .and_then(|rest| rest.split_whitespace().next())
            .and_then(|n| n.parse::<u32>().ok())
            .map(|n| CarId::Known(n.saturating_sub(1)))
            .ok_or_else(|| malformed("Nissan", line_no, "bad vehicle field"))?;
        let (with_mode, reaction_time_s) = split_reaction(parts[3]);
        // Strip the initiator clause Nissan appends to the narrative.
        let (description, modality) = if let Some(d) = with_mode.strip_suffix(" (driver initiated)")
        {
            (d.to_owned(), Modality::Manual)
        } else if let Some(d) = with_mode.strip_suffix(" (system initiated)") {
            (d.to_owned(), Modality::Automatic)
        } else if with_mode.to_ascii_lowercase().contains("driver safely disengaged") {
            // Legacy narrations (Table II's verbatim samples).
            (with_mode.clone(), Modality::Manual)
        } else {
            (with_mode.clone(), Modality::Automatic)
        };
        let road_type = RoadType::parse(parts[4]).ok();
        let weather = Weather::parse(parts[5]).ok();
        Ok(DisengagementRecord {
            manufacturer: Manufacturer::Nissan,
            car,
            date,
            modality,
            road_type,
            weather,
            reaction_time_s,
            description,
        })
    }
}

/// Waymo: `Mon-YY — <road> — Safe Operation — <desc>[ [reaction: X.XXs]]`.
///
/// Month-precision dates; "Safe Operation" marks driver-initiated
/// (manual) disengagements, "Auto" marks system-initiated ones.
#[derive(Debug, Clone, Copy, Default)]
pub struct WaymoFormat;

impl ReportFormat for WaymoFormat {
    fn manufacturer(&self) -> Manufacturer {
        Manufacturer::Waymo
    }

    fn render(&self, r: &DisengagementRecord) -> String {
        const MONTHS: [&str; 12] = [
            "Jan", "Feb", "Mar", "Apr", "May", "Jun", "Jul", "Aug", "Sep", "Oct", "Nov", "Dec",
        ];
        let road = r.road_type.map_or("-".to_owned(), |rt| {
            let mut s = rt.to_string();
            if let Some(first) = s.get_mut(0..1) {
                first.make_ascii_uppercase();
            }
            s
        });
        let mode = match r.modality {
            Modality::Manual => "Safe Operation",
            _ => "Auto",
        };
        format!(
            "{}-{:02}{}{}{}{}{}{}{}",
            MONTHS[(r.date.month() - 1) as usize],
            r.date.year() % 100,
            DASH_SEP,
            road,
            DASH_SEP,
            mode,
            DASH_SEP,
            r.description,
            render_reaction(r.reaction_time_s)
        )
    }

    fn parse_line(&self, line: &str, line_no: usize) -> Result<DisengagementRecord> {
        let parts: Vec<&str> = line.split(DASH_SEP).collect();
        if parts.len() != 4 {
            return Err(malformed(
                "Waymo",
                line_no,
                format!("expected 4 dash-separated fields, found {}", parts.len()),
            ));
        }
        let date =
            Date::parse(parts[0]).map_err(|e| malformed("Waymo", line_no, e.to_string()))?;
        let road_type = RoadType::parse(parts[1]).ok();
        let modality = if parts[2].trim() == "Safe Operation" {
            Modality::Manual
        } else {
            Modality::Automatic
        };
        let (description, reaction_time_s) = split_reaction(parts[3]);
        Ok(DisengagementRecord {
            manufacturer: Manufacturer::Waymo,
            car: CarId::Redacted, // Waymo does not identify vehicles per line
            date,
            modality,
            road_type,
            weather: None,
            reaction_time_s,
            description,
        })
    }
}

/// Volkswagen: `MM/DD/YY — HH:MM:SS — Takeover-Request — <desc>[ [reaction: X.XXs]]`.
///
/// All Volkswagen disengagements in the dataset are automatic
/// (Table V: 100% automatic).
#[derive(Debug, Clone, Copy, Default)]
pub struct VolkswagenFormat;

impl ReportFormat for VolkswagenFormat {
    fn manufacturer(&self) -> Manufacturer {
        Manufacturer::Volkswagen
    }

    fn render(&self, r: &DisengagementRecord) -> String {
        format!(
            "{:02}/{:02}/{:02}{}18:24:03{}Takeover-Request{}{}{}",
            r.date.month(),
            r.date.day(),
            r.date.year() % 100,
            DASH_SEP,
            DASH_SEP,
            DASH_SEP,
            r.description,
            render_reaction(r.reaction_time_s)
        )
    }

    fn parse_line(&self, line: &str, line_no: usize) -> Result<DisengagementRecord> {
        let parts: Vec<&str> = line.split(DASH_SEP).collect();
        if parts.len() != 4 || parts[2].trim() != "Takeover-Request" {
            return Err(malformed("Volkswagen", line_no, "not a takeover-request row"));
        }
        let date = Date::parse(parts[0])
            .map_err(|e| malformed("Volkswagen", line_no, e.to_string()))?;
        let (description, reaction_time_s) = split_reaction(parts[3]);
        Ok(DisengagementRecord {
            manufacturer: Manufacturer::Volkswagen,
            car: CarId::Redacted,
            date,
            modality: Modality::Automatic,
            road_type: None,
            weather: None,
            reaction_time_s,
            description,
        })
    }
}

/// Mercedes-Benz (also used by the sparse reporters): a full
/// pipe-separated table row
/// `YYYY-MM-DD | car N | <modality> | <road> | <weather> | <reaction> | <desc>`
/// with `-` for absent fields.
#[derive(Debug, Clone, Copy, Default)]
pub struct BenzFormat;

impl BenzFormat {
    fn parse_as(
        line: &str,
        line_no: usize,
        manufacturer: Manufacturer,
    ) -> Result<DisengagementRecord> {
        let parts: Vec<&str> = line.split(" | ").collect();
        if parts.len() != 7 {
            return Err(malformed(
                "Mercedes-Benz",
                line_no,
                format!("expected 7 pipe-separated fields, found {}", parts.len()),
            ));
        }
        let date = Date::parse(parts[0])
            .map_err(|e| malformed("Mercedes-Benz", line_no, e.to_string()))?;
        let car = parse_car(parts[1])
            .ok_or_else(|| malformed("Mercedes-Benz", line_no, "bad car field"))?;
        let modality = Modality::parse(parts[2])
            .map_err(|e| malformed("Mercedes-Benz", line_no, e.to_string()))?;
        let opt = |s: &str| {
            let t = s.trim();
            if t == "-" {
                None
            } else {
                Some(t.to_owned())
            }
        };
        let road_type = opt(parts[3]).and_then(|s| RoadType::parse(&s).ok());
        let weather = opt(parts[4]).and_then(|s| Weather::parse(&s).ok());
        let reaction_time_s = opt(parts[5]).and_then(|s| s.trim_end_matches('s').parse().ok());
        Ok(DisengagementRecord {
            manufacturer,
            car,
            date,
            modality,
            road_type,
            weather,
            reaction_time_s,
            description: parts[6].trim().to_owned(),
        })
    }
}

impl ReportFormat for BenzFormat {
    fn manufacturer(&self) -> Manufacturer {
        Manufacturer::MercedesBenz
    }

    fn render(&self, r: &DisengagementRecord) -> String {
        let road = r.road_type.map_or("-".to_owned(), |x| x.to_string());
        let weather = r.weather.map_or("-".to_owned(), |x| x.to_string());
        let reaction = r
            .reaction_time_s
            .map_or("-".to_owned(), |x| format!("{x:.2}s"));
        format!(
            "{} | {} | {} | {} | {} | {} | {}",
            r.date,
            render_car(&r.car),
            r.modality,
            road,
            weather,
            reaction,
            r.description
        )
    }

    fn parse_line(&self, line: &str, line_no: usize) -> Result<DisengagementRecord> {
        Self::parse_as(line, line_no, Manufacturer::MercedesBenz)
    }
}

/// Bosch: `Planned test on M/D/YY (car N): <desc> [road=<road>; weather=<weather>]`.
///
/// Bosch reports every disengagement as part of a planned test campaign
/// (Table V: 100% planned).
#[derive(Debug, Clone, Copy, Default)]
pub struct BoschFormat;

impl ReportFormat for BoschFormat {
    fn manufacturer(&self) -> Manufacturer {
        Manufacturer::Bosch
    }

    fn render(&self, r: &DisengagementRecord) -> String {
        let road = r.road_type.map_or("-".to_owned(), |x| x.to_string());
        let weather = r.weather.map_or("-".to_owned(), |x| x.to_string());
        format!(
            "Planned test on {}/{}/{:02} ({}): {} [road={}; weather={}]",
            r.date.month(),
            r.date.day(),
            r.date.year() % 100,
            render_car(&r.car),
            r.description,
            road,
            weather
        )
    }

    fn parse_line(&self, line: &str, line_no: usize) -> Result<DisengagementRecord> {
        let rest = line
            .strip_prefix("Planned test on ")
            .ok_or_else(|| malformed("Bosch", line_no, "missing planned-test prefix"))?;
        let (date_text, rest) = rest
            .split_once(" (")
            .ok_or_else(|| malformed("Bosch", line_no, "missing car field"))?;
        let date =
            Date::parse(date_text).map_err(|e| malformed("Bosch", line_no, e.to_string()))?;
        let (car_text, rest) = rest
            .split_once("): ")
            .ok_or_else(|| malformed("Bosch", line_no, "missing description"))?;
        let car =
            parse_car(car_text).ok_or_else(|| malformed("Bosch", line_no, "bad car field"))?;
        let (description, meta) = rest
            .rsplit_once(" [road=")
            .ok_or_else(|| malformed("Bosch", line_no, "missing metadata suffix"))?;
        let meta = meta
            .strip_suffix(']')
            .ok_or_else(|| malformed("Bosch", line_no, "unterminated metadata"))?;
        let (road_text, weather_text) = meta
            .split_once("; weather=")
            .ok_or_else(|| malformed("Bosch", line_no, "missing weather"))?;
        Ok(DisengagementRecord {
            manufacturer: Manufacturer::Bosch,
            car,
            date,
            modality: Modality::Planned,
            road_type: RoadType::parse(road_text).ok(),
            weather: Weather::parse(weather_text).ok(),
            reaction_time_s: None,
            description: description.to_owned(),
        })
    }
}

/// Delphi: CSV row `date,car,modality,road,reaction,"<desc>"`.
#[derive(Debug, Clone, Copy, Default)]
pub struct DelphiFormat;

impl ReportFormat for DelphiFormat {
    fn manufacturer(&self) -> Manufacturer {
        Manufacturer::Delphi
    }

    fn render(&self, r: &DisengagementRecord) -> String {
        let road = r.road_type.map_or(String::new(), |x| x.to_string());
        let reaction = r
            .reaction_time_s
            .map_or(String::new(), |x| format!("{x:.2}"));
        format!(
            "{},{},{},{},{},\"{}\"",
            r.date,
            r.car.index().map_or("?".to_owned(), |i| i.to_string()),
            r.modality,
            road,
            reaction,
            r.description.replace('"', "\"\"")
        )
    }

    fn parse_line(&self, line: &str, line_no: usize) -> Result<DisengagementRecord> {
        // The description is the final quoted field; split it off first so
        // embedded commas survive.
        let (head, desc) = line
            .split_once(",\"")
            .ok_or_else(|| malformed("Delphi", line_no, "missing quoted description"))?;
        let description = desc
            .strip_suffix('"')
            .ok_or_else(|| malformed("Delphi", line_no, "unterminated description"))?
            .replace("\"\"", "\"");
        let fields: Vec<&str> = head.split(',').collect();
        if fields.len() != 5 {
            return Err(malformed(
                "Delphi",
                line_no,
                format!("expected 5 leading fields, found {}", fields.len()),
            ));
        }
        let date =
            Date::parse(fields[0]).map_err(|e| malformed("Delphi", line_no, e.to_string()))?;
        let car = if fields[1].trim() == "?" {
            CarId::Redacted
        } else {
            fields[1]
                .trim()
                .parse::<u32>()
                .map(CarId::Known)
                .map_err(|_| malformed("Delphi", line_no, "bad car index"))?
        };
        let modality = Modality::parse(fields[2])
            .map_err(|e| malformed("Delphi", line_no, e.to_string()))?;
        let road_type = if fields[3].is_empty() {
            None
        } else {
            RoadType::parse(fields[3]).ok()
        };
        let reaction_time_s = if fields[4].is_empty() {
            None
        } else {
            fields[4].parse().ok()
        };
        Ok(DisengagementRecord {
            manufacturer: Manufacturer::Delphi,
            car,
            date,
            modality,
            road_type,
            weather: None,
            reaction_time_s,
            description,
        })
    }
}

/// GM Cruise: `#N YYYY-MM-DD planned — <desc>`.
///
/// Like Bosch, GM Cruise files everything as planned testing.
#[derive(Debug, Clone, Copy, Default)]
pub struct GmCruiseFormat;

impl ReportFormat for GmCruiseFormat {
    fn manufacturer(&self) -> Manufacturer {
        Manufacturer::GmCruise
    }

    fn render(&self, r: &DisengagementRecord) -> String {
        format!(
            "#{} {} planned{}{}",
            r.car.index().map_or("?".to_owned(), |i| i.to_string()),
            r.date,
            DASH_SEP,
            r.description
        )
    }

    fn parse_line(&self, line: &str, line_no: usize) -> Result<DisengagementRecord> {
        let rest = line
            .strip_prefix('#')
            .ok_or_else(|| malformed("GMCruise", line_no, "missing # prefix"))?;
        let (head, description) = rest
            .split_once(DASH_SEP)
            .ok_or_else(|| malformed("GMCruise", line_no, "missing description"))?;
        let tokens: Vec<&str> = head.split_whitespace().collect();
        if tokens.len() != 3 || tokens[2] != "planned" {
            return Err(malformed("GMCruise", line_no, "bad header tokens"));
        }
        let car = if tokens[0] == "?" {
            CarId::Redacted
        } else {
            tokens[0]
                .parse::<u32>()
                .map(CarId::Known)
                .map_err(|_| malformed("GMCruise", line_no, "bad car index"))?
        };
        let date =
            Date::parse(tokens[1]).map_err(|e| malformed("GMCruise", line_no, e.to_string()))?;
        Ok(DisengagementRecord {
            manufacturer: Manufacturer::GmCruise,
            car,
            date,
            modality: Modality::Planned,
            road_type: None,
            weather: None,
            reaction_time_s: None,
            description: description.to_owned(),
        })
    }
}

/// Tesla: `car N | M/D/YY | auto | <desc>[ [reaction: X.XXs]]`.
///
/// Tesla's descriptions are terse; nearly all end up Unknown-C in the
/// paper's categorization.
#[derive(Debug, Clone, Copy, Default)]
pub struct TeslaFormat;

impl ReportFormat for TeslaFormat {
    fn manufacturer(&self) -> Manufacturer {
        Manufacturer::Tesla
    }

    fn render(&self, r: &DisengagementRecord) -> String {
        let mode = match r.modality {
            Modality::Manual => "manual",
            _ => "auto",
        };
        format!(
            "{} | {}/{}/{:02} | {} | {}{}",
            render_car(&r.car),
            r.date.month(),
            r.date.day(),
            r.date.year() % 100,
            mode,
            r.description,
            render_reaction(r.reaction_time_s)
        )
    }

    fn parse_line(&self, line: &str, line_no: usize) -> Result<DisengagementRecord> {
        let parts: Vec<&str> = line.split(" | ").collect();
        if parts.len() != 4 {
            return Err(malformed(
                "Tesla",
                line_no,
                format!("expected 4 pipe-separated fields, found {}", parts.len()),
            ));
        }
        let car =
            parse_car(parts[0]).ok_or_else(|| malformed("Tesla", line_no, "bad car field"))?;
        let date =
            Date::parse(parts[1]).map_err(|e| malformed("Tesla", line_no, e.to_string()))?;
        let modality = Modality::parse(parts[2])
            .map_err(|e| malformed("Tesla", line_no, e.to_string()))?;
        let (description, reaction_time_s) = split_reaction(parts[3]);
        Ok(DisengagementRecord {
            manufacturer: Manufacturer::Tesla,
            car,
            date,
            modality,
            road_type: None,
            weather: None,
            reaction_time_s,
            description,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_record(m: Manufacturer) -> DisengagementRecord {
        DisengagementRecord {
            manufacturer: m,
            car: CarId::Known(1),
            date: Date::new(2016, 5, 25).unwrap(),
            modality: Modality::Manual,
            road_type: Some(RoadType::Highway),
            weather: Some(Weather::Clear),
            reaction_time_s: Some(0.85),
            description: "the AV didn't see the lead vehicle, driver safely disengaged"
                .to_owned(),
        }
    }

    #[test]
    fn nissan_round_trip() {
        let f = NissanFormat;
        let r = base_record(Manufacturer::Nissan);
        let line = f.render(&r);
        assert!(line.contains("Leaf #2 (Bravo)"), "{line}");
        let parsed = f.parse_line(&line, 1).unwrap();
        assert_eq!(parsed.date, r.date);
        assert_eq!(parsed.car, r.car);
        assert_eq!(parsed.description, r.description);
        assert_eq!(parsed.reaction_time_s, Some(0.85));
        assert_eq!(parsed.road_type, Some(RoadType::Highway));
        assert_eq!(parsed.weather, Some(Weather::Clear));
        assert_eq!(parsed.modality, Modality::Manual);
    }

    #[test]
    fn nissan_paper_sample_parses() {
        // Verbatim layout from Table II (with our reaction annotation absent).
        let line = "1/4/16 — 1:25 PM — Leaf #1 (Alfa) — Software module froze. As a result driver safely disengaged and resumed manual control. — City and highway — Sunny/Dry";
        let r = NissanFormat.parse_line(line, 1).unwrap();
        assert_eq!(r.date, Date::new(2016, 1, 4).unwrap());
        assert_eq!(r.car, CarId::Known(0));
        assert_eq!(r.road_type, Some(RoadType::Street));
        assert_eq!(r.weather, Some(Weather::Clear));
        assert!(r.description.contains("Software module froze"));
    }

    #[test]
    fn waymo_round_trip_month_precision() {
        let f = WaymoFormat;
        let r = base_record(Manufacturer::Waymo);
        let line = f.render(&r);
        assert!(line.starts_with("May-16"), "{line}");
        let parsed = f.parse_line(&line, 1).unwrap();
        // Waymo loses day precision: month start.
        assert_eq!(parsed.date, Date::new(2016, 5, 1).unwrap());
        assert_eq!(parsed.modality, Modality::Manual);
        assert_eq!(parsed.description, r.description);
    }

    #[test]
    fn waymo_paper_sample_parses() {
        let line = "May-16 — Highway — Safe Operation — Disengage for a recklessly behaving road user";
        let r = WaymoFormat.parse_line(line, 1).unwrap();
        assert_eq!(r.road_type, Some(RoadType::Highway));
        assert_eq!(r.modality, Modality::Manual);
        assert!(r.description.contains("recklessly behaving road user"));
    }

    #[test]
    fn volkswagen_paper_sample_parses() {
        let line = "11/12/14 — 18:24:03 — Takeover-Request — watchdog error";
        let r = VolkswagenFormat.parse_line(line, 1).unwrap();
        assert_eq!(r.date, Date::new(2014, 11, 12).unwrap());
        assert_eq!(r.modality, Modality::Automatic);
        assert_eq!(r.description, "watchdog error");
    }

    #[test]
    fn benz_round_trip_full_schema() {
        let f = BenzFormat;
        let r = base_record(Manufacturer::MercedesBenz);
        let parsed = f.parse_line(&f.render(&r), 1).unwrap();
        assert_eq!(parsed, r);
    }

    #[test]
    fn benz_absent_fields_render_as_dash() {
        let f = BenzFormat;
        let mut r = base_record(Manufacturer::MercedesBenz);
        r.road_type = None;
        r.weather = None;
        r.reaction_time_s = None;
        let line = f.render(&r);
        assert!(line.contains(" | - | - | - | "), "{line}");
        let parsed = f.parse_line(&line, 1).unwrap();
        assert_eq!(parsed, r);
    }

    #[test]
    fn bosch_round_trip_planned() {
        let f = BoschFormat;
        let mut r = base_record(Manufacturer::Bosch);
        r.modality = Modality::Planned;
        r.reaction_time_s = None; // Bosch format carries no reaction field
        let parsed = f.parse_line(&f.render(&r), 1).unwrap();
        assert_eq!(parsed, r);
    }

    #[test]
    fn delphi_round_trip_with_embedded_quotes() {
        let f = DelphiFormat;
        let mut r = base_record(Manufacturer::Delphi);
        r.weather = None; // Delphi format carries no weather field
        r.description = "driver said \"take over\" and braked, hard".to_owned();
        let parsed = f.parse_line(&f.render(&r), 1).unwrap();
        assert_eq!(parsed, r);
    }

    #[test]
    fn gmcruise_round_trip() {
        let f = GmCruiseFormat;
        let mut r = base_record(Manufacturer::GmCruise);
        r.modality = Modality::Planned;
        r.road_type = None;
        r.weather = None;
        r.reaction_time_s = None;
        let parsed = f.parse_line(&f.render(&r), 1).unwrap();
        assert_eq!(parsed, r);
    }

    #[test]
    fn tesla_round_trip() {
        let f = TeslaFormat;
        let mut r = base_record(Manufacturer::Tesla);
        r.modality = Modality::Automatic;
        r.road_type = None;
        r.weather = None;
        let parsed = f.parse_line(&f.render(&r), 1).unwrap();
        assert_eq!(parsed, r);
    }

    #[test]
    fn malformed_lines_rejected_with_line_numbers() {
        let err = NissanFormat.parse_line("not a log line", 7).unwrap_err();
        match err {
            ReportError::MalformedLine { line, .. } => assert_eq!(line, 7),
            other => panic!("unexpected {other:?}"),
        }
        assert!(WaymoFormat.parse_line("a — b", 1).is_err());
        assert!(BoschFormat.parse_line("unplanned chaos", 1).is_err());
        assert!(DelphiFormat.parse_line("1,2,3", 1).is_err());
        assert!(GmCruiseFormat.parse_line("no hash", 1).is_err());
        assert!(TeslaFormat.parse_line("x | y", 1).is_err());
        assert!(VolkswagenFormat
            .parse_line("1/1/16 — t — NotTakeover — d", 1)
            .is_err());
    }

    #[test]
    fn format_for_covers_every_manufacturer() {
        for m in Manufacturer::ALL {
            let f = format_for(m);
            // Sparse reporters borrow the Benz layout; everyone else
            // identifies as themselves.
            if matches!(
                m,
                Manufacturer::Uber | Manufacturer::Honda | Manufacturer::Ford | Manufacturer::Bmw
            ) {
                assert_eq!(f.manufacturer(), Manufacturer::MercedesBenz);
            } else {
                assert_eq!(f.manufacturer(), m);
            }
        }
    }

    #[test]
    fn redacted_car_round_trips() {
        let f = BenzFormat;
        let mut r = base_record(Manufacturer::MercedesBenz);
        r.car = CarId::Redacted;
        let parsed = f.parse_line(&f.render(&r), 1).unwrap();
        assert_eq!(parsed.car, CarId::Redacted);
    }
}
