//! Whole-document model: a scanned filing as it arrives from the DMV.

use crate::types::{Manufacturer, ReportYear};

/// What a raw filing contains.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DocumentKind {
    /// An annual disengagement report (log lines + mileage table).
    Disengagements,
    /// A single OL 316 accident report.
    Accident,
}

/// One raw filing: the text of a scanned document plus its provenance.
///
/// In the real pipeline this text is the *output of OCR* over a scanned
/// PDF; the `ocr` crate produces exactly this shape from rasterized
/// synthetic documents.
#[derive(Debug, Clone, PartialEq)]
pub struct RawDocument {
    /// Who filed it.
    pub manufacturer: Manufacturer,
    /// Which annual release it belongs to.
    pub report_year: ReportYear,
    /// What kind of filing it is.
    pub kind: DocumentKind,
    /// The document text (possibly OCR-noisy).
    pub text: String,
}

impl RawDocument {
    /// Creates a document.
    pub fn new(
        manufacturer: Manufacturer,
        report_year: ReportYear,
        kind: DocumentKind,
        text: impl Into<String>,
    ) -> RawDocument {
        RawDocument {
            manufacturer,
            report_year,
            kind,
            text: text.into(),
        }
    }

    /// Splits a disengagement filing into its log-line section and its
    /// mileage-table section (separated by the `MILEAGE` header).
    ///
    /// Returns `(log_lines_text, mileage_text)`; the mileage text is empty
    /// when the document carries no table.
    pub fn sections(&self) -> (&str, &str) {
        match self.text.find("MILEAGE") {
            Some(pos) => (&self.text[..pos], &self.text[pos..]),
            None => (self.text.as_str(), ""),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sections_split_on_mileage_header() {
        let doc = RawDocument::new(
            Manufacturer::Waymo,
            ReportYear::R2016,
            DocumentKind::Disengagements,
            "line 1\nline 2\nMILEAGE\ncar-0 2016-05 10.0\n",
        );
        let (logs, mileage) = doc.sections();
        assert!(logs.contains("line 2"));
        assert!(mileage.starts_with("MILEAGE"));
        assert!(mileage.contains("car-0"));
    }

    #[test]
    fn sections_without_mileage() {
        let doc = RawDocument::new(
            Manufacturer::Tesla,
            ReportYear::R2016,
            DocumentKind::Disengagements,
            "only logs\n",
        );
        let (logs, mileage) = doc.sections();
        assert_eq!(logs, "only logs\n");
        assert!(mileage.is_empty());
    }
}
