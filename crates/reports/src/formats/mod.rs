//! Per-manufacturer raw report formats.
//!
//! The DMV enforces no schema, so every manufacturer renders its
//! disengagement log differently (Table II of the paper shows four
//! examples). This module defines one [`disengagement::ReportFormat`] per
//! manufacturer — each able to *render* a uniform record into that
//! manufacturer's idiosyncratic line layout and to *parse* such a line
//! back — plus the standardized accident form ([`accident`], the DMV's
//! OL 316 is a fixed form) and the monthly mileage table ([`mileage`]).

pub mod accident;
pub mod disengagement;
pub mod document;
pub mod mileage;

pub use accident::{parse_accident_form, render_accident_form};
pub use disengagement::{format_for, ReportFormat};
pub use document::{DocumentKind, RawDocument};
pub use mileage::{parse_mileage_table, render_mileage_table};
