//! The standardized accident form (the DMV's OL 316 is a fixed form, so a
//! single key-value layout is shared by every manufacturer).

use crate::date::Date;
use crate::record::{AccidentRecord, CarId, CollisionKind, Severity};
use crate::types::Manufacturer;
use crate::{ReportError, Result};

/// Renders an accident record as a multi-line OL 316-style form.
///
/// # Examples
///
/// ```
/// # use disengage_reports::formats::{render_accident_form, parse_accident_form};
/// # use disengage_reports::record::{AccidentRecord, CarId, CollisionKind, Severity};
/// # use disengage_reports::{Date, Manufacturer};
/// let record = AccidentRecord {
///     manufacturer: Manufacturer::Waymo,
///     car: CarId::Redacted,
///     date: Date::new(2016, 5, 10).unwrap(),
///     location: "El Camino Real & Clark Ave".into(),
///     av_speed_mph: Some(4.0),
///     other_speed_mph: Some(10.0),
///     autonomous_at_impact: true,
///     kind: CollisionKind::RearEnd,
///     severity: Severity::Minor,
///     description: "rear collision while yielding".into(),
/// };
/// let form = render_accident_form(&record);
/// assert_eq!(parse_accident_form(&form).unwrap(), record);
/// ```
pub fn render_accident_form(record: &AccidentRecord) -> String {
    let mut out = String::new();
    out.push_str("REPORT OF TRAFFIC ACCIDENT INVOLVING AN AUTONOMOUS VEHICLE\n");
    out.push_str(&format!("Manufacturer: {}\n", record.manufacturer));
    out.push_str(&format!(
        "Vehicle: {}\n",
        match &record.car {
            CarId::Known(i) => format!("fleet vehicle {i}"),
            CarId::Redacted => "[REDACTED]".to_owned(),
        }
    ));
    out.push_str(&format!("Date: {}\n", record.date));
    out.push_str(&format!("Location: {}\n", record.location));
    out.push_str(&format!(
        "AV Speed (mph): {}\n",
        record
            .av_speed_mph
            .map_or("unknown".to_owned(), |s| format!("{s:.1}"))
    ));
    out.push_str(&format!(
        "Other Vehicle Speed (mph): {}\n",
        record
            .other_speed_mph
            .map_or("unknown".to_owned(), |s| format!("{s:.1}"))
    ));
    out.push_str(&format!(
        "Autonomous Mode at Impact: {}\n",
        if record.autonomous_at_impact {
            "yes"
        } else {
            "no"
        }
    ));
    out.push_str(&format!("Collision Type: {}\n", record.kind));
    out.push_str(&format!("Damage Severity: {}\n", record.severity));
    out.push_str(&format!("Narrative: {}\n", record.description));
    out
}

/// Parses an OL 316-style form back into an [`AccidentRecord`].
///
/// # Errors
///
/// Returns [`ReportError::MalformedLine`] for missing or malformed
/// fields and [`ReportError::InvalidDate`] for bad dates.
pub fn parse_accident_form(text: &str) -> Result<AccidentRecord> {
    let mut manufacturer = None;
    let mut car = None;
    let mut date = None;
    let mut location = None;
    let mut av_speed = None;
    let mut other_speed = None;
    let mut autonomous = None;
    let mut kind = None;
    let mut severity = None;
    let mut description = None;

    for (i, line) in text.lines().enumerate() {
        let line_no = i + 1;
        let Some((key, value)) = line.split_once(": ") else {
            continue; // headers and blank lines
        };
        let value = value.trim();
        match key.trim() {
            "Manufacturer" => manufacturer = Some(Manufacturer::parse(value)?),
            "Vehicle" => {
                car = Some(if value == "[REDACTED]" {
                    CarId::Redacted
                } else if let Some(idx) = value.strip_prefix("fleet vehicle ") {
                    CarId::Known(idx.trim().parse().map_err(|_| {
                        malformed(line_no, "bad fleet vehicle index")
                    })?)
                } else {
                    return Err(malformed(line_no, "unrecognized vehicle field"));
                });
            }
            "Date" => date = Some(Date::parse(value)?),
            "Location" => location = Some(value.to_owned()),
            "AV Speed (mph)" => av_speed = Some(parse_speed(value, line_no)?),
            "Other Vehicle Speed (mph)" => other_speed = Some(parse_speed(value, line_no)?),
            "Autonomous Mode at Impact" => {
                autonomous = Some(match value {
                    "yes" => true,
                    "no" => false,
                    _ => return Err(malformed(line_no, "autonomous field must be yes/no")),
                })
            }
            "Collision Type" => {
                kind = Some(match value {
                    "rear-end" => CollisionKind::RearEnd,
                    "side-swipe" => CollisionKind::SideSwipe,
                    "frontal" => CollisionKind::Frontal,
                    "object" => CollisionKind::Object,
                    _ => return Err(malformed(line_no, "unknown collision type")),
                })
            }
            "Damage Severity" => {
                severity = Some(match value {
                    "minor" => Severity::Minor,
                    "moderate" => Severity::Moderate,
                    "major" => Severity::Major,
                    _ => return Err(malformed(line_no, "unknown severity")),
                })
            }
            "Narrative" => description = Some(value.to_owned()),
            _ => {} // tolerate extra fields
        }
    }

    Ok(AccidentRecord {
        manufacturer: manufacturer.ok_or_else(|| missing("Manufacturer"))?,
        car: car.ok_or_else(|| missing("Vehicle"))?,
        date: date.ok_or_else(|| missing("Date"))?,
        location: location.ok_or_else(|| missing("Location"))?,
        av_speed_mph: av_speed.ok_or_else(|| missing("AV Speed"))?,
        other_speed_mph: other_speed.ok_or_else(|| missing("Other Vehicle Speed"))?,
        autonomous_at_impact: autonomous.ok_or_else(|| missing("Autonomous Mode"))?,
        kind: kind.ok_or_else(|| missing("Collision Type"))?,
        severity: severity.ok_or_else(|| missing("Damage Severity"))?,
        description: description.ok_or_else(|| missing("Narrative"))?,
    })
}

fn parse_speed(value: &str, line_no: usize) -> Result<Option<f64>> {
    if value == "unknown" {
        Ok(None)
    } else {
        value
            .parse::<f64>()
            .map(Some)
            .map_err(|_| malformed(line_no, "bad speed value"))
    }
}

fn malformed(line: usize, message: &str) -> ReportError {
    ReportError::MalformedLine {
        manufacturer: "accident form",
        line,
        message: message.to_owned(),
    }
}

fn missing(field: &'static str) -> ReportError {
    ReportError::MissingData(format!("accident form field `{field}`"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record() -> AccidentRecord {
        AccidentRecord {
            manufacturer: Manufacturer::GmCruise,
            car: CarId::Known(4),
            date: Date::new(2016, 9, 23).unwrap(),
            location: "Folsom St & 5th St, San Francisco CA".to_owned(),
            av_speed_mph: Some(12.0),
            other_speed_mph: None,
            autonomous_at_impact: false,
            kind: CollisionKind::SideSwipe,
            severity: Severity::Moderate,
            description: "lane-changing vehicle clipped the AV's mirror".to_owned(),
        }
    }

    #[test]
    fn round_trip() {
        let r = record();
        let form = render_accident_form(&r);
        assert!(form.contains("fleet vehicle 4"));
        assert!(form.contains("Other Vehicle Speed (mph): unknown"));
        assert_eq!(parse_accident_form(&form).unwrap(), r);
    }

    #[test]
    fn redacted_round_trip() {
        let mut r = record();
        r.car = CarId::Redacted;
        let form = render_accident_form(&r);
        assert!(form.contains("[REDACTED]"));
        assert_eq!(parse_accident_form(&form).unwrap().car, CarId::Redacted);
    }

    #[test]
    fn missing_field_rejected() {
        let r = record();
        let form = render_accident_form(&r);
        let without_date: String = form
            .lines()
            .filter(|l| !l.starts_with("Date:"))
            .collect::<Vec<_>>()
            .join("\n");
        assert!(matches!(
            parse_accident_form(&without_date),
            Err(ReportError::MissingData(_))
        ));
    }

    #[test]
    fn bad_values_rejected() {
        let form = render_accident_form(&record());
        let bad = form.replace("Autonomous Mode at Impact: no", "Autonomous Mode at Impact: maybe");
        assert!(parse_accident_form(&bad).is_err());
        let bad = form.replace("Collision Type: side-swipe", "Collision Type: meteor");
        assert!(parse_accident_form(&bad).is_err());
        let bad = form.replace("AV Speed (mph): 12.0", "AV Speed (mph): fast");
        assert!(parse_accident_form(&bad).is_err());
    }

    #[test]
    fn extra_fields_tolerated() {
        let mut form = render_accident_form(&record());
        form.push_str("Officer: J. Doe\n");
        assert!(parse_accident_form(&form).is_ok());
    }
}
