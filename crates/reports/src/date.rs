//! A small validated calendar date with the parsing the DMV reports need.
//!
//! The dataset spans September 2014 – November 2016 and encodes dates in
//! at least three layouts: `M/D/YY` (Nissan), `Mon-YY` (Waymo, month
//! precision), and `MM/DD/YY` (Volkswagen). This module parses all three
//! and provides ordering, day arithmetic, and month indexing for the
//! time-series analyses (Figs. 5, 7, 9).

use crate::{ReportError, Result};
use std::fmt;

/// A calendar date (year, month, day) with validation.
///
/// Month-precision report entries (e.g. Waymo's `May-16`) are represented
/// with `day = 1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Date {
    year: u16,
    month: u8,
    day: u8,
}

const DAYS_IN_MONTH: [u8; 12] = [31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31];
const MONTH_ABBREV: [&str; 12] = [
    "Jan", "Feb", "Mar", "Apr", "May", "Jun", "Jul", "Aug", "Sep", "Oct", "Nov", "Dec",
];

fn is_leap(year: u16) -> bool {
    (year.is_multiple_of(4) && !year.is_multiple_of(100)) || year.is_multiple_of(400)
}

fn days_in_month(year: u16, month: u8) -> u8 {
    if month == 2 && is_leap(year) {
        29
    } else {
        DAYS_IN_MONTH[(month - 1) as usize]
    }
}

impl Date {
    /// Creates a validated date.
    ///
    /// # Errors
    ///
    /// Returns [`ReportError::InvalidDate`] for out-of-range components
    /// (including February 29 in non-leap years).
    ///
    /// # Examples
    ///
    /// ```
    /// # use disengage_reports::Date;
    /// let d = Date::new(2016, 2, 29).unwrap(); // 2016 is a leap year
    /// assert!(Date::new(2015, 2, 29).is_err());
    /// ```
    pub fn new(year: u16, month: u8, day: u8) -> Result<Date> {
        if !(1900..=2100).contains(&year) {
            return Err(ReportError::InvalidDate(format!("year {year}")));
        }
        if !(1..=12).contains(&month) {
            return Err(ReportError::InvalidDate(format!("month {month}")));
        }
        if day < 1 || day > days_in_month(year, month) {
            return Err(ReportError::InvalidDate(format!(
                "day {day} in {year}-{month:02}"
            )));
        }
        Ok(Date { year, month, day })
    }

    /// The first day of a month (used for month-precision report rows).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Date::new`].
    pub fn month_start(year: u16, month: u8) -> Result<Date> {
        Date::new(year, month, 1)
    }

    /// Year component.
    pub fn year(&self) -> u16 {
        self.year
    }

    /// Month component (1–12).
    pub fn month(&self) -> u8 {
        self.month
    }

    /// Day component (1–31).
    pub fn day(&self) -> u8 {
        self.day
    }

    /// Days since 1900-01-01 (a serial number for ordering/diffs).
    pub fn serial(&self) -> i64 {
        let mut days: i64 = 0;
        for y in 1900..self.year {
            days += if is_leap(y) { 366 } else { 365 };
        }
        for m in 1..self.month {
            days += days_in_month(self.year, m) as i64;
        }
        days + self.day as i64 - 1
    }

    /// Whole days from `self` to `other` (positive when `other` is later).
    pub fn days_until(&self, other: &Date) -> i64 {
        other.serial() - self.serial()
    }

    /// Months since January 2014 — the month index used for the paper's
    /// monthly mileage series.
    pub fn month_index(&self) -> i64 {
        (self.year as i64 - 2014) * 12 + self.month as i64 - 1
    }

    /// The date `months` months later, clamped to the target month's last
    /// day (e.g. Jan 31 + 1 month = Feb 28/29).
    pub fn add_months(&self, months: i64) -> Date {
        let total = self.year as i64 * 12 + (self.month as i64 - 1) + months;
        let year = (total / 12) as u16;
        let month = (total % 12 + 1) as u8;
        let day = self.day.min(days_in_month(year, month));
        Date { year, month, day }
    }

    /// Parses the date layouts found in the DMV reports:
    ///
    /// * `M/D/YY` or `MM/DD/YYYY` — e.g. `1/4/16`, `11/12/2014`
    /// * `Mon-YY` — e.g. `May-16` (month precision, day = 1)
    /// * `YYYY-MM-DD` — ISO, used in our normalized output
    ///
    /// Two-digit years are interpreted as 20YY.
    ///
    /// # Errors
    ///
    /// Returns [`ReportError::InvalidDate`] for unrecognized layouts or
    /// invalid component values.
    pub fn parse(text: &str) -> Result<Date> {
        let t = text.trim();
        if let Some((mon, yy)) = t.split_once('-') {
            // Mon-YY (e.g. May-16) or ISO YYYY-MM-DD.
            if let Some(m) = MONTH_ABBREV
                .iter()
                .position(|&a| a.eq_ignore_ascii_case(mon))
            {
                let year = parse_year(yy)?;
                return Date::month_start(year, (m + 1) as u8);
            }
            let parts: Vec<&str> = t.split('-').collect();
            if parts.len() == 3 {
                let year: u16 = parts[0]
                    .parse()
                    .map_err(|_| ReportError::InvalidDate(t.to_owned()))?;
                let month: u8 = parts[1]
                    .parse()
                    .map_err(|_| ReportError::InvalidDate(t.to_owned()))?;
                let day: u8 = parts[2]
                    .parse()
                    .map_err(|_| ReportError::InvalidDate(t.to_owned()))?;
                return Date::new(year, month, day);
            }
            return Err(ReportError::InvalidDate(t.to_owned()));
        }
        // M/D/YY layouts.
        let parts: Vec<&str> = t.split('/').collect();
        if parts.len() == 3 {
            let month: u8 = parts[0]
                .parse()
                .map_err(|_| ReportError::InvalidDate(t.to_owned()))?;
            let day: u8 = parts[1]
                .parse()
                .map_err(|_| ReportError::InvalidDate(t.to_owned()))?;
            let year = parse_year(parts[2])?;
            return Date::new(year, month, day);
        }
        Err(ReportError::InvalidDate(t.to_owned()))
    }
}

fn parse_year(text: &str) -> Result<u16> {
    let y: u16 = text
        .trim()
        .parse()
        .map_err(|_| ReportError::InvalidDate(text.to_owned()))?;
    Ok(if y < 100 { 2000 + y } else { y })
}

impl fmt::Display for Date {
    /// ISO `YYYY-MM-DD`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:04}-{:02}-{:02}", self.year, self.month, self.day)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates() {
        assert!(Date::new(2016, 1, 31).is_ok());
        assert!(Date::new(2016, 4, 31).is_err());
        assert!(Date::new(2016, 13, 1).is_err());
        assert!(Date::new(2016, 0, 1).is_err());
        assert!(Date::new(1800, 1, 1).is_err());
    }

    #[test]
    fn leap_years() {
        assert!(Date::new(2016, 2, 29).is_ok());
        assert!(Date::new(2015, 2, 29).is_err());
        assert!(Date::new(2000, 2, 29).is_ok()); // divisible by 400
        assert!(Date::new(1900, 2, 29).is_err()); // divisible by 100 only
    }

    #[test]
    fn ordering() {
        let a = Date::new(2015, 12, 31).unwrap();
        let b = Date::new(2016, 1, 1).unwrap();
        assert!(a < b);
        assert_eq!(a.days_until(&b), 1);
        assert_eq!(b.days_until(&a), -1);
    }

    #[test]
    fn serial_across_leap_day() {
        let a = Date::new(2016, 2, 28).unwrap();
        let b = Date::new(2016, 3, 1).unwrap();
        assert_eq!(a.days_until(&b), 2); // via Feb 29
        let a = Date::new(2015, 2, 28).unwrap();
        let b = Date::new(2015, 3, 1).unwrap();
        assert_eq!(a.days_until(&b), 1);
    }

    #[test]
    fn month_index_since_2014() {
        assert_eq!(Date::new(2014, 1, 15).unwrap().month_index(), 0);
        assert_eq!(Date::new(2014, 9, 1).unwrap().month_index(), 8);
        assert_eq!(Date::new(2016, 11, 30).unwrap().month_index(), 34);
    }

    #[test]
    fn add_months_clamps_day() {
        let d = Date::new(2016, 1, 31).unwrap();
        assert_eq!(d.add_months(1), Date::new(2016, 2, 29).unwrap());
        assert_eq!(d.add_months(3), Date::new(2016, 4, 30).unwrap());
        assert_eq!(d.add_months(12), Date::new(2017, 1, 31).unwrap());
        assert_eq!(d.add_months(-1), Date::new(2015, 12, 31).unwrap());
    }

    #[test]
    fn parse_slash_formats() {
        assert_eq!(Date::parse("1/4/16").unwrap(), Date::new(2016, 1, 4).unwrap());
        assert_eq!(
            Date::parse("11/12/14").unwrap(),
            Date::new(2014, 11, 12).unwrap()
        );
        assert_eq!(
            Date::parse("5/25/2016").unwrap(),
            Date::new(2016, 5, 25).unwrap()
        );
    }

    #[test]
    fn parse_month_abbrev() {
        assert_eq!(
            Date::parse("May-16").unwrap(),
            Date::new(2016, 5, 1).unwrap()
        );
        assert_eq!(
            Date::parse("sep-14").unwrap(),
            Date::new(2014, 9, 1).unwrap()
        );
    }

    #[test]
    fn parse_iso() {
        assert_eq!(
            Date::parse("2016-05-25").unwrap(),
            Date::new(2016, 5, 25).unwrap()
        );
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Date::parse("yesterday").is_err());
        assert!(Date::parse("13/40/16").is_err());
        assert!(Date::parse("May16").is_err());
        assert!(Date::parse("").is_err());
    }

    #[test]
    fn display_iso() {
        assert_eq!(Date::new(2016, 5, 3).unwrap().to_string(), "2016-05-03");
    }

    #[test]
    fn display_parse_round_trip() {
        let d = Date::new(2015, 11, 9).unwrap();
        assert_eq!(Date::parse(&d.to_string()).unwrap(), d);
    }
}
