//! Property tests: every manufacturer format round-trips the fields it
//! carries, for arbitrary records.

use disengage_reports::formats::disengagement::{
    BenzFormat, BoschFormat, DelphiFormat, GmCruiseFormat, NissanFormat, ReportFormat,
    TeslaFormat, VolkswagenFormat, WaymoFormat,
};
use disengage_reports::record::CarId;
use disengage_reports::{Date, DisengagementRecord, Manufacturer, Modality, RoadType, Weather};
use proptest::prelude::*;

fn arb_date() -> impl Strategy<Value = Date> {
    (2014u16..=2016, 1u8..=12, 1u8..=28)
        .prop_map(|(y, m, d)| Date::new(y, m, d).expect("valid"))
}

fn arb_description() -> impl Strategy<Value = String> {
    // Word-ish text free of the structural separators each format uses.
    "[a-z][a-z ]{0,60}[a-z]".prop_map(|s| s.trim().to_owned())
}

fn arb_road() -> impl Strategy<Value = Option<RoadType>> {
    proptest::option::of(prop_oneof![
        Just(RoadType::Street),
        Just(RoadType::Highway),
        Just(RoadType::Interstate),
        Just(RoadType::Freeway),
        Just(RoadType::ParkingLot),
        Just(RoadType::Suburban),
        Just(RoadType::Rural),
    ])
}

fn arb_weather() -> impl Strategy<Value = Option<Weather>> {
    proptest::option::of(prop_oneof![
        Just(Weather::Clear),
        Just(Weather::Rain),
        Just(Weather::Overcast),
        Just(Weather::Fog),
    ])
}

fn arb_record(manufacturer: Manufacturer) -> impl Strategy<Value = DisengagementRecord> {
    (
        arb_date(),
        0u32..30,
        prop_oneof![
            Just(Modality::Automatic),
            Just(Modality::Manual),
            Just(Modality::Planned)
        ],
        proptest::option::of(0.01f64..30.0),
        arb_description(),
        arb_road(),
        arb_weather(),
    )
        .prop_map(
            move |(date, car, modality, rt, description, road_type, weather)| {
                DisengagementRecord {
                    manufacturer,
                    car: CarId::Known(car),
                    date,
                    modality,
                    road_type,
                    weather,
                    reaction_time_s: rt.map(|t| (t * 100.0).round() / 100.0),
                    description,
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The full-schema pipe format round-trips everything.
    #[test]
    fn benz_round_trips_fully(r in arb_record(Manufacturer::MercedesBenz)) {
        let f = BenzFormat;
        let parsed = f.parse_line(&f.render(&r), 1).expect("parses");
        prop_assert_eq!(parsed, r);
    }

    /// Nissan carries everything except it renders into its own
    /// narrative layout; day precision and all optional fields survive.
    #[test]
    fn nissan_round_trips(r in arb_record(Manufacturer::Nissan)) {
        let f = NissanFormat;
        let parsed = f.parse_line(&f.render(&r), 1).expect("parses");
        prop_assert_eq!(parsed.date, r.date);
        prop_assert_eq!(parsed.car, r.car);
        prop_assert_eq!(parsed.description, r.description);
        prop_assert_eq!(parsed.reaction_time_s, r.reaction_time_s);
        prop_assert_eq!(parsed.road_type, r.road_type);
        prop_assert_eq!(parsed.weather, r.weather);
        // Planned renders as "system initiated": modality folds to
        // automatic; manual survives exactly.
        if r.modality == Modality::Manual {
            prop_assert_eq!(parsed.modality, Modality::Manual);
        } else {
            prop_assert_eq!(parsed.modality, Modality::Automatic);
        }
    }

    /// Waymo: month precision, no car, no weather; everything else
    /// survives.
    #[test]
    fn waymo_round_trips_carried_fields(r in arb_record(Manufacturer::Waymo)) {
        let f = WaymoFormat;
        let parsed = f.parse_line(&f.render(&r), 1).expect("parses");
        prop_assert_eq!(parsed.date, Date::month_start(r.date.year(), r.date.month()).expect("valid"));
        prop_assert_eq!(parsed.car, CarId::Redacted);
        prop_assert_eq!(parsed.description, r.description);
        prop_assert_eq!(parsed.reaction_time_s, r.reaction_time_s);
        prop_assert_eq!(parsed.road_type, r.road_type);
        if r.modality == Modality::Manual {
            prop_assert_eq!(parsed.modality, Modality::Manual);
        } else {
            prop_assert_eq!(parsed.modality, Modality::Automatic);
        }
    }

    /// Volkswagen: automatic-only takeover requests.
    #[test]
    fn volkswagen_round_trips_carried_fields(r in arb_record(Manufacturer::Volkswagen)) {
        let f = VolkswagenFormat;
        let parsed = f.parse_line(&f.render(&r), 1).expect("parses");
        prop_assert_eq!(parsed.date, r.date);
        prop_assert_eq!(parsed.description, r.description);
        prop_assert_eq!(parsed.reaction_time_s, r.reaction_time_s);
        prop_assert_eq!(parsed.modality, Modality::Automatic);
    }

    /// Bosch: planned-only, no reaction times.
    #[test]
    fn bosch_round_trips_carried_fields(r in arb_record(Manufacturer::Bosch)) {
        let f = BoschFormat;
        let parsed = f.parse_line(&f.render(&r), 1).expect("parses");
        prop_assert_eq!(parsed.date, r.date);
        prop_assert_eq!(parsed.car, r.car);
        prop_assert_eq!(parsed.description, r.description);
        prop_assert_eq!(parsed.road_type, r.road_type);
        prop_assert_eq!(parsed.weather, r.weather);
        prop_assert_eq!(parsed.modality, Modality::Planned);
        prop_assert_eq!(parsed.reaction_time_s, None);
    }

    /// Delphi: CSV row; carries everything but weather.
    #[test]
    fn delphi_round_trips_carried_fields(r in arb_record(Manufacturer::Delphi)) {
        let f = DelphiFormat;
        let parsed = f.parse_line(&f.render(&r), 1).expect("parses");
        prop_assert_eq!(parsed.date, r.date);
        prop_assert_eq!(parsed.car, r.car);
        prop_assert_eq!(parsed.description, r.description);
        prop_assert_eq!(parsed.modality, r.modality);
        prop_assert_eq!(parsed.road_type, r.road_type);
        prop_assert_eq!(parsed.reaction_time_s, r.reaction_time_s);
        prop_assert_eq!(parsed.weather, None);
    }

    /// GM Cruise: terse planned rows.
    #[test]
    fn gmcruise_round_trips_carried_fields(r in arb_record(Manufacturer::GmCruise)) {
        let f = GmCruiseFormat;
        let parsed = f.parse_line(&f.render(&r), 1).expect("parses");
        prop_assert_eq!(parsed.date, r.date);
        prop_assert_eq!(parsed.car, r.car);
        prop_assert_eq!(parsed.description, r.description);
        prop_assert_eq!(parsed.modality, Modality::Planned);
    }

    /// Tesla: pipe rows, auto/manual only.
    #[test]
    fn tesla_round_trips_carried_fields(r in arb_record(Manufacturer::Tesla)) {
        let f = TeslaFormat;
        let parsed = f.parse_line(&f.render(&r), 1).expect("parses");
        prop_assert_eq!(parsed.date, r.date);
        prop_assert_eq!(parsed.car, r.car);
        prop_assert_eq!(parsed.description, r.description);
        prop_assert_eq!(parsed.reaction_time_s, r.reaction_time_s);
        if r.modality == Modality::Manual {
            prop_assert_eq!(parsed.modality, Modality::Manual);
        } else {
            prop_assert_eq!(parsed.modality, Modality::Automatic);
        }
    }

    /// Every format rejects obviously malformed input rather than
    /// producing a bogus record.
    #[test]
    fn formats_reject_garbage(garbage in "[a-z @#]{0,40}") {
        for format in [
            &NissanFormat as &dyn ReportFormat,
            &WaymoFormat,
            &VolkswagenFormat,
            &BenzFormat,
            &BoschFormat,
            &DelphiFormat,
            &GmCruiseFormat,
            &TeslaFormat,
        ] {
            prop_assert!(format.parse_line(&garbage, 1).is_err(), "{garbage:?}");
        }
    }
}
