//! Property tests: every manufacturer format round-trips the fields it
//! carries, for arbitrary records.
//!
//! Formerly `proptest` strategies; now seeded loops over the in-tree
//! PRNG so the suite runs with zero external dependencies.

use disengage_reports::formats::disengagement::{
    BenzFormat, BoschFormat, DelphiFormat, GmCruiseFormat, NissanFormat, ReportFormat,
    TeslaFormat, VolkswagenFormat, WaymoFormat,
};
use disengage_reports::record::CarId;
use disengage_reports::{Date, DisengagementRecord, Manufacturer, Modality, RoadType, Weather};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CASES: usize = 48;

fn gen_date(rng: &mut StdRng) -> Date {
    Date::new(
        rng.gen_range(2014..=2016u16),
        rng.gen_range(1..=12u8),
        rng.gen_range(1..=28u8),
    )
    .expect("valid")
}

/// Word-ish text free of the structural separators each format uses
/// (the old `[a-z][a-z ]{0,60}[a-z]` strategy, trimmed).
fn gen_description(rng: &mut StdRng) -> String {
    let mid = rng.gen_range(0..=60usize);
    let mut s = String::with_capacity(mid + 2);
    s.push((b'a' + rng.gen_range(0..26u8)) as char);
    for _ in 0..mid {
        s.push(if rng.gen_bool(0.18) {
            ' '
        } else {
            (b'a' + rng.gen_range(0..26u8)) as char
        });
    }
    s.push((b'a' + rng.gen_range(0..26u8)) as char);
    // Internal runs of spaces are fine; leading/trailing are not.
    s.trim().to_owned()
}

fn gen_road(rng: &mut StdRng) -> Option<RoadType> {
    if rng.gen_bool(0.5) {
        return None;
    }
    Some(match rng.gen_range(0..7u8) {
        0 => RoadType::Street,
        1 => RoadType::Highway,
        2 => RoadType::Interstate,
        3 => RoadType::Freeway,
        4 => RoadType::ParkingLot,
        5 => RoadType::Suburban,
        _ => RoadType::Rural,
    })
}

fn gen_weather(rng: &mut StdRng) -> Option<Weather> {
    if rng.gen_bool(0.5) {
        return None;
    }
    Some(match rng.gen_range(0..4u8) {
        0 => Weather::Clear,
        1 => Weather::Rain,
        2 => Weather::Overcast,
        _ => Weather::Fog,
    })
}

fn gen_record(rng: &mut StdRng, manufacturer: Manufacturer) -> DisengagementRecord {
    let modality = match rng.gen_range(0..3u8) {
        0 => Modality::Automatic,
        1 => Modality::Manual,
        _ => Modality::Planned,
    };
    let reaction_time_s = if rng.gen_bool(0.5) {
        Some((rng.gen_range(0.01..30.0f64) * 100.0).round() / 100.0)
    } else {
        None
    };
    DisengagementRecord {
        manufacturer,
        car: CarId::Known(rng.gen_range(0..30u32)),
        date: gen_date(rng),
        modality,
        road_type: gen_road(rng),
        weather: gen_weather(rng),
        reaction_time_s,
        description: gen_description(rng),
    }
}

/// The modality a lossy auto/manual format should reconstruct: Planned
/// renders as "system initiated", folding into Automatic.
fn folded(m: Modality) -> Modality {
    if m == Modality::Manual {
        Modality::Manual
    } else {
        Modality::Automatic
    }
}

/// The full-schema pipe format round-trips everything.
#[test]
fn benz_round_trips_fully() {
    let mut rng = StdRng::seed_from_u64(0xF0B3);
    let f = BenzFormat;
    for _ in 0..CASES {
        let r = gen_record(&mut rng, Manufacturer::MercedesBenz);
        let parsed = f.parse_line(&f.render(&r), 1).expect("parses");
        assert_eq!(parsed, r);
    }
}

/// Nissan carries everything except it renders into its own narrative
/// layout; day precision and all optional fields survive.
#[test]
fn nissan_round_trips() {
    let mut rng = StdRng::seed_from_u64(0xF0A1);
    let f = NissanFormat;
    for _ in 0..CASES {
        let r = gen_record(&mut rng, Manufacturer::Nissan);
        let parsed = f.parse_line(&f.render(&r), 1).expect("parses");
        assert_eq!(parsed.date, r.date);
        assert_eq!(parsed.car, r.car);
        assert_eq!(parsed.description, r.description);
        assert_eq!(parsed.reaction_time_s, r.reaction_time_s);
        assert_eq!(parsed.road_type, r.road_type);
        assert_eq!(parsed.weather, r.weather);
        assert_eq!(parsed.modality, folded(r.modality));
    }
}

/// Waymo: month precision, no car, no weather; everything else
/// survives.
#[test]
fn waymo_round_trips_carried_fields() {
    let mut rng = StdRng::seed_from_u64(0xF0A7);
    let f = WaymoFormat;
    for _ in 0..CASES {
        let r = gen_record(&mut rng, Manufacturer::Waymo);
        let parsed = f.parse_line(&f.render(&r), 1).expect("parses");
        assert_eq!(
            parsed.date,
            Date::month_start(r.date.year(), r.date.month()).expect("valid")
        );
        assert_eq!(parsed.car, CarId::Redacted);
        assert_eq!(parsed.description, r.description);
        assert_eq!(parsed.reaction_time_s, r.reaction_time_s);
        assert_eq!(parsed.road_type, r.road_type);
        assert_eq!(parsed.modality, folded(r.modality));
    }
}

/// Volkswagen: automatic-only takeover requests.
#[test]
fn volkswagen_round_trips_carried_fields() {
    let mut rng = StdRng::seed_from_u64(0xF0F4);
    let f = VolkswagenFormat;
    for _ in 0..CASES {
        let r = gen_record(&mut rng, Manufacturer::Volkswagen);
        let parsed = f.parse_line(&f.render(&r), 1).expect("parses");
        assert_eq!(parsed.date, r.date);
        assert_eq!(parsed.description, r.description);
        assert_eq!(parsed.reaction_time_s, r.reaction_time_s);
        assert_eq!(parsed.modality, Modality::Automatic);
    }
}

/// Bosch: planned-only, no reaction times.
#[test]
fn bosch_round_trips_carried_fields() {
    let mut rng = StdRng::seed_from_u64(0xF0B0);
    let f = BoschFormat;
    for _ in 0..CASES {
        let r = gen_record(&mut rng, Manufacturer::Bosch);
        let parsed = f.parse_line(&f.render(&r), 1).expect("parses");
        assert_eq!(parsed.date, r.date);
        assert_eq!(parsed.car, r.car);
        assert_eq!(parsed.description, r.description);
        assert_eq!(parsed.road_type, r.road_type);
        assert_eq!(parsed.weather, r.weather);
        assert_eq!(parsed.modality, Modality::Planned);
        assert_eq!(parsed.reaction_time_s, None);
    }
}

/// Delphi: CSV row; carries everything but weather.
#[test]
fn delphi_round_trips_carried_fields() {
    let mut rng = StdRng::seed_from_u64(0xF0D3);
    let f = DelphiFormat;
    for _ in 0..CASES {
        let r = gen_record(&mut rng, Manufacturer::Delphi);
        let parsed = f.parse_line(&f.render(&r), 1).expect("parses");
        assert_eq!(parsed.date, r.date);
        assert_eq!(parsed.car, r.car);
        assert_eq!(parsed.description, r.description);
        assert_eq!(parsed.modality, r.modality);
        assert_eq!(parsed.road_type, r.road_type);
        assert_eq!(parsed.reaction_time_s, r.reaction_time_s);
        assert_eq!(parsed.weather, None);
    }
}

/// GM Cruise: terse planned rows.
#[test]
fn gmcruise_round_trips_carried_fields() {
    let mut rng = StdRng::seed_from_u64(0xF06C);
    let f = GmCruiseFormat;
    for _ in 0..CASES {
        let r = gen_record(&mut rng, Manufacturer::GmCruise);
        let parsed = f.parse_line(&f.render(&r), 1).expect("parses");
        assert_eq!(parsed.date, r.date);
        assert_eq!(parsed.car, r.car);
        assert_eq!(parsed.description, r.description);
        assert_eq!(parsed.modality, Modality::Planned);
    }
}

/// Tesla: pipe rows, auto/manual only.
#[test]
fn tesla_round_trips_carried_fields() {
    let mut rng = StdRng::seed_from_u64(0xF0E5);
    let f = TeslaFormat;
    for _ in 0..CASES {
        let r = gen_record(&mut rng, Manufacturer::Tesla);
        let parsed = f.parse_line(&f.render(&r), 1).expect("parses");
        assert_eq!(parsed.date, r.date);
        assert_eq!(parsed.car, r.car);
        assert_eq!(parsed.description, r.description);
        assert_eq!(parsed.reaction_time_s, r.reaction_time_s);
        assert_eq!(parsed.modality, folded(r.modality));
    }
}

/// Every format rejects obviously malformed input rather than producing
/// a bogus record.
#[test]
fn formats_reject_garbage() {
    const ALPHABET: &[u8] = b"abcdefghijklmnopqrstuvwxyz @#";
    let mut rng = StdRng::seed_from_u64(0xF06B);
    for _ in 0..CASES {
        let len = rng.gen_range(0..40usize);
        let garbage: String = (0..len)
            .map(|_| ALPHABET[rng.gen_range(0..ALPHABET.len())] as char)
            .collect();
        for format in [
            &NissanFormat as &dyn ReportFormat,
            &WaymoFormat,
            &VolkswagenFormat,
            &BenzFormat,
            &BoschFormat,
            &DelphiFormat,
            &GmCruiseFormat,
            &TeslaFormat,
        ] {
            assert!(format.parse_line(&garbage, 1).is_err(), "{garbage:?}");
        }
    }
}
