//! Description templates: the free-text cause narratives of the
//! synthetic logs.
//!
//! Templates are organized by the fault tag they describe and are
//! phrased the way the real filings are (Table II's verbatim samples are
//! all present). Each tag's templates embed that tag's dictionary
//! vocabulary so Stage III can recover the tag — and the *vague*
//! templates deliberately carry no dictionary vocabulary at all,
//! reproducing Tesla's 98.35%-Unknown and Volkswagen's 13.85%-Unknown
//! rows of Table IV.

use disengage_nlp::FaultTag;
use rand::Rng;

/// Templates for a classifiable fault tag.
///
/// # Panics
///
/// Panics when called with [`FaultTag::UnknownT`] — use
/// [`vague_templates`] for unclassifiable narratives.
pub fn templates_for(tag: FaultTag) -> &'static [&'static str] {
    match tag {
        FaultTag::Environment => &[
            "Disengage for a recklessly behaving road user",
            "undetected construction zone forced a takeover",
            "emergency vehicle approaching with sirens",
            "sudden lane closure ahead due to roadwork",
            "heavy rain degraded visibility",
            "sun glare at the intersection",
            "cyclist swerved suddenly into the lane",
            "jaywalking pedestrian stepped out between parked cars",
            "erratic road user drifting across lanes",
        ],
        FaultTag::RecognitionSystem => &[
            "The AV didn't see the lead vehicle",
            "perception missed the pedestrian at the crosswalk",
            "recognition failure on the traffic light state",
            "misclassified object on the roadway",
            "lane markings not recognized in faded paint",
            "false obstacle detection caused unnecessary braking",
            "failed to detect a pothole and bump in the road",
            "perception system misjudged the gap to the merging car",
            "traffic light not recognized against the low sun",
        ],
        FaultTag::Planner => &[
            "planner failed to anticipate the other driver's behavior",
            "improper motion planning near the intersection",
            "motion plan infeasible for the lane change",
            "path planning error in heavy traffic",
            "planner produced an unwanted maneuver",
            "late braking decision by the planner",
            "trajectory generation failed during the merge",
        ],
        FaultTag::IncorrectBehaviorPrediction => &[
            "incorrect behavior prediction for the approaching car",
            "behavior prediction wrong about the merging vehicle",
            "mispredicted other vehicle at the four-way stop",
            "predicted the cyclist incorrectly at the crosswalk",
        ],
        FaultTag::AvControllerDecision => &[
            "controller made a wrong decision during the merge",
            "incorrect control action applied at low speed",
            "controller chose an incorrect maneuver",
            "bad control decision in stop-and-go traffic",
        ],
        FaultTag::DesignBug => &[
            "the AV was not designed to handle an unforeseen situation",
            "unsupported scenario encountered at the roundabout",
            "design limitation exposed during reverse parking",
            "unhandled edge case in the detour routing",
        ],
        FaultTag::Software => &[
            "Software module froze",
            "software crash in the planning process",
            "software bug triggered a fault flag",
            "software hang detected by the supervisor",
            "process crashed and restarted",
            "null pointer dereference in the logging module",
            "software discrepancy between redundant modules",
        ],
        FaultTag::ComputerSystem => &[
            "processor overload during sensor fusion",
            "compute unit fault required a restart",
            "memory exhausted on the main computer",
            "hardware fault in the compute enclosure",
            "onboard computer overheated",
        ],
        FaultTag::HangCrash => &[
            "watchdog error",
            "watchdog timer expired",
            "system hang forced a takeover",
            "system froze and rebooted",
            "unexpected reboot of the main unit",
        ],
        FaultTag::Sensor => &[
            "sensor failed to localize in time",
            "gps signal lost under the overpass",
            "lidar dropout during the run",
            "radar misread the overhead sign",
            "camera blinded by low sun",
            "sensor malfunction on the front array",
            "calibration drift detected in the lidar",
        ],
        FaultTag::Network => &[
            "data rate too high for the onboard network",
            "network congestion delayed sensor frames",
            "can bus errors flooded the log",
            "messages dropped on the network backbone",
            "communication timeout between modules",
        ],
        FaultTag::AvControllerUnresponsive => &[
            "the AV controller did not respond to commands",
            "unresponsive controller during lane keeping",
            "steering command ignored by the controller",
            "actuator command not executed in time",
            "controller stopped responding",
        ],
        FaultTag::UnknownT => panic!("UnknownT has no templates; use vague_templates()"),
    }
}

/// Narratives carrying no dictionary vocabulary — the classifier lands
/// on `Unknown-T` for these, as it does for Tesla's terse filings.
pub fn vague_templates() -> &'static [&'static str] {
    &[
        "disengage event recorded, no further detail",
        "autopilot disengage logged",
        "mode transition to manual recorded",
        "operator ended the autonomous session",
        "disengage initiated, cause not specified",
        "event logged during routine operation",
        "takeover occurred, details unavailable",
    ]
}

/// Neutral suffixes appended to some descriptions for variety (chosen to
/// carry no dictionary vocabulary, so they never change the tag).
const NEUTRAL_SUFFIXES: &[&str] = &[
    "",
    ", driver safely disengaged and resumed manual operation",
    ", test driver took over",
    ", safety driver intervened",
    ", vehicle returned to manual operation",
];

/// Composes a description for a tag: a template plus an optional neutral
/// suffix.
pub fn compose<R: Rng + ?Sized>(tag: FaultTag, rng: &mut R) -> String {
    if tag == FaultTag::UnknownT {
        // Vague narratives get no suffix: even a "neutral" suffix can
        // carry a stray dictionary word, and unknowns must stay unknown.
        let bank = vague_templates();
        return bank[rng.gen_range(0..bank.len())].to_owned();
    }
    let bank = templates_for(tag);
    let template = bank[rng.gen_range(0..bank.len())];
    let suffix = NEUTRAL_SUFFIXES[rng.gen_range(0..NEUTRAL_SUFFIXES.len())];
    format!("{template}{suffix}")
}

/// Accident narrative fragments (modeled on the paper's two case
/// studies: low-speed collisions near intersections where other drivers
/// could not anticipate the AV).
pub fn accident_narratives() -> &'static [&'static str] {
    &[
        "AV yielded to a pedestrian and braked; the vehicle behind collided with the rear of the AV",
        "AV stopped before a right turn, crept forward to gauge traffic, and was struck from behind by a driver who could not anticipate the AV",
        "AV was proceeding slowly through the intersection when a manual vehicle side-swiped it while changing lanes",
        "manual vehicle rear-ended the AV while it waited to merge",
        "AV halted for cross traffic; the following driver expected it to proceed and bumped its rear bumper",
        "a manual vehicle clipped the AV's mirror while overtaking near the intersection",
        "AV was creeping at low speed in a parking lot when a reversing vehicle contacted its rear quarter",
    ]
}

/// Intersection-adjacent locations for accident reports (the dataset's
/// accidents cluster on urban streets near intersections).
pub fn accident_locations() -> &'static [&'static str] {
    &[
        "El Camino Real & Clark Ave, Mountain View CA",
        "South Shoreline Blvd & Highschool Way, Mountain View CA",
        "Castro St & Church St, Mountain View CA",
        "Folsom St & 5th St, San Francisco CA",
        "Harrison St & 8th St, San Francisco CA",
        "Lawrence Expy & Tasman Dr, Sunnyvale CA",
        "First St & Mission St, San Jose CA",
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use disengage_nlp::{Classifier, FailureCategory};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn every_template_classifies_to_its_tag() {
        let cl = Classifier::with_default_dictionary();
        for tag in FaultTag::ALL {
            if tag == FaultTag::UnknownT {
                continue;
            }
            for t in templates_for(tag) {
                let a = cl.classify(t);
                assert_eq!(a.tag, tag, "template {t:?} classified as {}", a.tag);
            }
        }
    }

    #[test]
    fn vague_templates_stay_unknown() {
        let cl = Classifier::with_default_dictionary();
        for t in vague_templates() {
            let a = cl.classify(t);
            assert_eq!(a.tag, FaultTag::UnknownT, "vague template {t:?} matched {}", a.tag);
            assert_eq!(a.category, FailureCategory::UnknownC);
        }
    }

    #[test]
    fn suffixes_never_flip_the_tag() {
        let cl = Classifier::with_default_dictionary();
        for tag in FaultTag::ALL {
            if tag == FaultTag::UnknownT {
                continue;
            }
            for t in templates_for(tag) {
                for suffix in NEUTRAL_SUFFIXES {
                    let text = format!("{t}{suffix}");
                    let a = cl.classify(&text);
                    assert_eq!(a.tag, tag, "{text:?} classified as {}", a.tag);
                }
            }
        }
    }

    #[test]
    fn compose_is_deterministic_under_seed() {
        let mut r1 = StdRng::seed_from_u64(3);
        let mut r2 = StdRng::seed_from_u64(3);
        assert_eq!(
            compose(FaultTag::Software, &mut r1),
            compose(FaultTag::Software, &mut r2)
        );
    }

    #[test]
    fn compose_unknown_uses_vague_bank() {
        let mut rng = StdRng::seed_from_u64(4);
        let cl = Classifier::with_default_dictionary();
        for _ in 0..20 {
            let d = compose(FaultTag::UnknownT, &mut rng);
            assert_eq!(cl.classify(&d).tag, FaultTag::UnknownT, "{d}");
        }
    }

    #[test]
    fn narrative_banks_nonempty() {
        assert!(accident_narratives().len() >= 5);
        assert!(accident_locations().len() >= 5);
    }
}
