//! Shard identity: the unit of incremental generation and caching.
//!
//! A shard is one (manufacturer, filing-year) cell of Table I — the
//! natural grain of the DMV releases themselves, where each
//! manufacturer files one disengagement report and its accident forms
//! per release window. Every shard carries a seed derived from the
//! corpus root seed and the shard's *stable identity* (an FNV-1a fold
//! of the manufacturer name and filing year — never its enumeration
//! position), so:
//!
//! * any shard is generatable in isolation, byte-identical to the same
//!   slice of a full-corpus run, and
//! * adding or removing a shard (a new filing year, a new manufacturer
//!   profile) never perturbs the seed — and therefore the content or
//!   cache fingerprint — of any other shard.
//!
//! Document indices are likewise stable: [`ShardSpec::doc_base`] is
//! computed from the full profile enumeration at the configured scale
//! (a pure function of profiles + scale, no RNG), so per-document seed
//! streams (OCR noise, chaos injection) and provenance subjects agree
//! between an isolated shard run and the full corpus.

use crate::profile::YearProfile;
use disengage_reports::{Manufacturer, ReportYear};

/// One generatable shard: a (manufacturer, filing-year) cell plus its
/// derived seed and its stable position in the document space.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardSpec {
    /// The filing manufacturer.
    pub manufacturer: Manufacturer,
    /// The DMV release window.
    pub year: ReportYear,
    /// Per-shard RNG seed: `derive_seed(corpus_seed, stable_id)`.
    pub seed: u64,
    /// Enumeration position (absorb/merge order only — never feeds
    /// seeds or fingerprints).
    pub index: usize,
    /// Global corpus index of this shard's first document.
    pub doc_base: usize,
    /// Documents this shard renders: one disengagement filing (when the
    /// cell has cars and miles) plus one accident form per accident.
    pub doc_count: usize,
}

impl ShardSpec {
    /// The shard's human-readable label (`waymo_2016`,
    /// `mercedes_benz_2015`, …) — the spelling `--shards=` accepts.
    pub fn label(&self) -> String {
        shard_label(self.manufacturer, self.year)
    }

    /// The shard's stable identity (see [`stable_shard_id`]).
    pub fn stable_id(&self) -> u64 {
        stable_shard_id(self.manufacturer, self.year)
    }
}

/// The canonical label for a (manufacturer, filing-year) cell.
pub fn shard_label(manufacturer: Manufacturer, year: ReportYear) -> String {
    format!(
        "{}_{}",
        disengage_obs::key_segment(manufacturer.name()),
        year.filing_year()
    )
}

/// Stable shard identity: FNV-1a over the manufacturer name and filing
/// year. Content-derived — independent of profile order, scale, and
/// every other shard — so it can seed per-shard RNG streams and salt
/// cache fingerprints without coupling shards to each other.
pub fn stable_shard_id(manufacturer: Manufacturer, year: ReportYear) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = FNV_OFFSET;
    for b in manufacturer.name().bytes() {
        h = (h ^ b as u64).wrapping_mul(FNV_PRIME);
    }
    for b in year.filing_year().to_le_bytes() {
        h = (h ^ b as u64).wrapping_mul(FNV_PRIME);
    }
    h
}

/// Documents a scaled (manufacturer, year) cell renders, without
/// generating it: one disengagement filing when the cell has active
/// cars and positive miles (the generator's own emptiness rule), plus
/// one accident form per accident. A pure function of the profile and
/// scale — this is what keeps [`ShardSpec::doc_base`] invariant across
/// shard filters and isolated-shard runs.
pub(crate) fn doc_count_for(scaled: &YearProfile) -> usize {
    let dis_doc = usize::from(scaled.cars > 0 && scaled.miles > 0.0);
    dis_doc + scaled.accidents as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stable_id_depends_on_cell_only() {
        let a = stable_shard_id(Manufacturer::Waymo, ReportYear::R2015);
        let b = stable_shard_id(Manufacturer::Waymo, ReportYear::R2016);
        let c = stable_shard_id(Manufacturer::Bosch, ReportYear::R2015);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, stable_shard_id(Manufacturer::Waymo, ReportYear::R2015));
    }

    #[test]
    fn labels_are_flat_lowercase() {
        assert_eq!(
            shard_label(Manufacturer::MercedesBenz, ReportYear::R2015),
            "mercedes_benz_2015"
        );
        assert_eq!(shard_label(Manufacturer::Waymo, ReportYear::R2016), "waymo_2016");
    }
}
