//! Calibrated synthetic CA DMV corpus (the Stage I data source).
//!
//! The paper's raw inputs — scanned disengagement and accident filings
//! from the CA DMV's 2016 and 2017 releases — are not redistributable, so
//! this crate generates a synthetic corpus **calibrated to every
//! aggregate the paper publishes**:
//!
//! * Table I's per-manufacturer, per-release fleet sizes, autonomous
//!   miles, disengagement counts, and accident counts ([`profile`]),
//! * Table IV's failure-category mixes and Table V's modality mixes,
//! * Table VI's accident attribution (25 Waymo / 14 GM Cruise / 1 each
//!   Delphi, Nissan, Uber),
//! * Fig. 10/11's reaction-time distributions (≈0.85 s mean, long tail,
//!   one ~4 h Volkswagen outlier),
//! * Fig. 12's low-speed, intersection-adjacent accident profile,
//! * the temporal dynamics behind Figs. 5 and 7–9 (monthly mileage ramp,
//!   DPM declining with cumulative miles).
//!
//! Generation is seeded and deterministic. Records are emitted both as
//! typed [`disengage_reports`] records (ground truth) and as rendered
//! [`disengage_reports::formats::RawDocument`]s in each manufacturer's
//! idiosyncratic raw format ([`rawdoc`]), ready for the OCR + parsing
//! stages.
//!
//! # Examples
//!
//! ```
//! use disengage_corpus::generator::{CorpusGenerator, CorpusConfig};
//!
//! let corpus = CorpusGenerator::new(CorpusConfig { seed: 7, scale: 0.05 }).generate();
//! assert!(corpus.truth.disengagements().len() > 100);
//! assert!(!corpus.documents.is_empty());
//! ```

pub mod allocation;
pub mod case_studies;
pub mod generator;
pub mod profile;
pub mod rawdoc;
pub mod shard;
pub mod templates;

pub use generator::{Corpus, CorpusConfig, CorpusGenerator};
pub use profile::{standard_profiles, ManufacturerProfile, YearProfile};
pub use shard::{shard_label, stable_shard_id, ShardSpec};
