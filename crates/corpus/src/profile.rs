//! Calibration profiles: every aggregate the paper publishes, encoded.

use disengage_reports::{Manufacturer, ReportYear};

/// Mix of failure categories for a manufacturer's disengagements
/// (fractions; Table IV, with plausible values for the manufacturers the
/// table omits, chosen to preserve the paper's global 64% ML share).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CategoryMix {
    /// Perception/recognition-side ML faults (includes environment
    /// surprises, per the paper's footnote 5).
    pub perception: f64,
    /// Planner/controller-side ML faults.
    pub planner: f64,
    /// Computing-system faults (hardware + software).
    pub system: f64,
    /// Unclassifiable.
    pub unknown: f64,
}

impl CategoryMix {
    /// Validates that the mix sums to ~1.
    pub fn is_normalized(&self) -> bool {
        (self.perception + self.planner + self.system + self.unknown - 1.0).abs() < 1e-6
    }
}

/// Mix of disengagement modalities (fractions; Table V).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModalityMix {
    /// System-initiated.
    pub automatic: f64,
    /// Driver-initiated.
    pub manual: f64,
    /// Planned test campaigns.
    pub planned: f64,
}

impl ModalityMix {
    /// Validates that the mix sums to ~1.
    pub fn is_normalized(&self) -> bool {
        (self.automatic + self.manual + self.planned - 1.0).abs() < 1e-6
    }
}

/// Weibull parameters for a manufacturer's driver reaction times
/// (Figs. 10 and 11), or `None` when the manufacturer reports no
/// reaction times (planned-test filers).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReactionProfile {
    /// Weibull shape.
    pub shape: f64,
    /// Weibull scale (seconds).
    pub scale: f64,
}

/// One manufacturer's activity within one DMV release window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct YearProfile {
    /// Which release.
    pub year: ReportYear,
    /// Fleet size (cars active in the window).
    pub cars: u32,
    /// Total autonomous miles (Table I).
    pub miles: f64,
    /// Total disengagements (Table I).
    pub disengagements: u64,
    /// Total accidents (Table I / Table VI).
    pub accidents: u64,
}

/// Full calibration profile for one manufacturer.
#[derive(Debug, Clone, PartialEq)]
pub struct ManufacturerProfile {
    /// The manufacturer.
    pub manufacturer: Manufacturer,
    /// Per-release activity (0, 1, or 2 entries).
    pub years: Vec<YearProfile>,
    /// Failure-category mix (Table IV).
    pub categories: CategoryMix,
    /// Modality mix (Table V).
    pub modalities: ModalityMix,
    /// Reaction-time distribution, when reported (Figs. 10–11).
    pub reactions: Option<ReactionProfile>,
    /// Per-car mileage skew: 1.0 = mild dispersion; higher values
    /// concentrate miles on a few workhorse cars.
    pub car_skew: f64,
    /// Exponent linking a cell's miles to its disengagement weight
    /// (1.0 = proportional; below 1 = burn-in behavior where low-mileage
    /// cars disengage relatively more).
    pub dis_miles_exponent: f64,
}

impl ManufacturerProfile {
    /// Total disengagements across both releases.
    pub fn total_disengagements(&self) -> u64 {
        self.years.iter().map(|y| y.disengagements).sum()
    }

    /// Total miles across both releases.
    pub fn total_miles(&self) -> f64 {
        self.years.iter().map(|y| y.miles).sum()
    }

    /// Total accidents across both releases.
    pub fn total_accidents(&self) -> u64 {
        self.years.iter().map(|y| y.accidents).sum()
    }
}

/// The complete calibration: one profile per manufacturer, matching
/// Table I cell-for-cell (dashes are zeros, with fleet sizes chosen for
/// the manufacturers whose counts the filings omit).
pub fn standard_profiles() -> Vec<ManufacturerProfile> {
    use Manufacturer::*;
    let y = |year, cars, miles, dis, acc| YearProfile {
        year,
        cars,
        miles,
        disengagements: dis,
        accidents: acc,
    };
    vec![
        ManufacturerProfile {
            manufacturer: MercedesBenz,
            years: vec![
                y(ReportYear::R2015, 2, 1739.08, 1024, 0),
                y(ReportYear::R2016, 2, 673.41, 336, 0),
            ],
            categories: CategoryMix {
                perception: 0.45,
                planner: 0.20,
                system: 0.35,
                unknown: 0.0,
            },
            modalities: ModalityMix {
                automatic: 0.4711,
                manual: 0.5289,
                planned: 0.0,
            },
            reactions: Some(ReactionProfile {
                shape: 0.75,
                scale: 0.65,
            }),
            car_skew: 1.0,
            dis_miles_exponent: 1.0,
        },
        ManufacturerProfile {
            manufacturer: Bosch,
            years: vec![
                y(ReportYear::R2015, 2, 935.1, 625, 0),
                y(ReportYear::R2016, 3, 983.0, 1442, 0),
            ],
            categories: CategoryMix {
                perception: 0.40,
                planner: 0.25,
                system: 0.35,
                unknown: 0.0,
            },
            modalities: ModalityMix {
                automatic: 0.0,
                manual: 0.0,
                planned: 1.0,
            },
            reactions: None,
            car_skew: 1.0,
            dis_miles_exponent: 1.0,
        },
        ManufacturerProfile {
            manufacturer: Delphi,
            years: vec![
                y(ReportYear::R2015, 2, 16661.0, 405, 1),
                y(ReportYear::R2016, 2, 3090.0, 167, 0),
            ],
            categories: CategoryMix {
                perception: 0.5017,
                planner: 0.3759,
                system: 0.1224,
                unknown: 0.0,
            },
            modalities: ModalityMix {
                automatic: 0.5,
                manual: 0.5,
                planned: 0.0,
            },
            reactions: Some(ReactionProfile {
                shape: 1.4,
                scale: 0.95,
            }),
            car_skew: 1.0,
            dis_miles_exponent: 1.0,
        },
        ManufacturerProfile {
            manufacturer: GmCruise,
            years: vec![
                y(ReportYear::R2015, 8, 285.4, 135, 0),
                y(ReportYear::R2016, 25, 9729.8, 149, 14),
            ],
            categories: CategoryMix {
                perception: 0.45,
                planner: 0.18,
                system: 0.35,
                unknown: 0.02,
            },
            modalities: ModalityMix {
                automatic: 0.0,
                manual: 0.0,
                planned: 1.0,
            },
            reactions: None,
            // GM Cruise's filings show extreme per-car concentration: a
            // few workhorse cars drove most of the 9,730 Y2 miles while
            // shakedown cars logged many disengagements over few miles.
            // This is what pushes its median per-car DPM (0.177 in Table
            // VII) far above its aggregate DPM (~0.015).
            car_skew: 14.0,
            dis_miles_exponent: 0.15,
        },
        ManufacturerProfile {
            manufacturer: Nissan,
            years: vec![
                y(ReportYear::R2015, 4, 1485.4, 106, 0),
                y(ReportYear::R2016, 3, 4099.0, 29, 1),
            ],
            categories: CategoryMix {
                perception: 0.4963,
                planner: 0.363,
                system: 0.1407,
                unknown: 0.0,
            },
            modalities: ModalityMix {
                automatic: 0.542,
                manual: 0.458,
                planned: 0.0,
            },
            reactions: Some(ReactionProfile {
                shape: 1.3,
                scale: 0.9,
            }),
            car_skew: 1.0,
            dis_miles_exponent: 1.0,
        },
        ManufacturerProfile {
            manufacturer: Tesla,
            years: vec![y(ReportYear::R2016, 5, 550.0, 182, 0)],
            categories: CategoryMix {
                perception: 0.0,
                planner: 0.0,
                system: 0.0165,
                unknown: 0.9835,
            },
            modalities: ModalityMix {
                automatic: 0.9835,
                manual: 0.0165,
                planned: 0.0,
            },
            reactions: Some(ReactionProfile {
                shape: 1.2,
                scale: 0.95,
            }),
            car_skew: 1.0,
            dis_miles_exponent: 1.0,
        },
        ManufacturerProfile {
            manufacturer: Volkswagen,
            years: vec![y(ReportYear::R2015, 2, 14946.11, 260, 0)],
            categories: CategoryMix {
                perception: 0.0308,
                planner: 0.0,
                system: 0.8308,
                unknown: 0.1384,
            },
            modalities: ModalityMix {
                automatic: 1.0,
                manual: 0.0,
                planned: 0.0,
            },
            reactions: Some(ReactionProfile {
                shape: 1.0,
                scale: 0.75,
            }),
            car_skew: 1.0,
            dis_miles_exponent: 1.0,
        },
        ManufacturerProfile {
            manufacturer: Waymo,
            years: vec![
                y(ReportYear::R2015, 49, 424_332.0, 341, 9),
                y(ReportYear::R2016, 70, 635_868.0, 123, 16),
            ],
            categories: CategoryMix {
                perception: 0.5345,
                planner: 0.1013,
                system: 0.3642,
                unknown: 0.0,
            },
            modalities: ModalityMix {
                automatic: 0.5032,
                manual: 0.4968,
                planned: 0.0,
            },
            reactions: Some(ReactionProfile {
                shape: 1.5,
                scale: 0.85,
            }),
            car_skew: 1.0,
            dis_miles_exponent: 1.0,
        },
        ManufacturerProfile {
            manufacturer: Uber,
            years: vec![y(ReportYear::R2016, 2, 0.0, 0, 1)],
            categories: CategoryMix {
                perception: 0.4,
                planner: 0.2,
                system: 0.4,
                unknown: 0.0,
            },
            modalities: ModalityMix {
                automatic: 0.5,
                manual: 0.5,
                planned: 0.0,
            },
            reactions: None,
            car_skew: 1.0,
            dis_miles_exponent: 1.0,
        },
        ManufacturerProfile {
            manufacturer: Honda,
            years: vec![y(ReportYear::R2016, 0, 0.0, 0, 0)],
            categories: CategoryMix {
                perception: 0.4,
                planner: 0.2,
                system: 0.4,
                unknown: 0.0,
            },
            modalities: ModalityMix {
                automatic: 0.5,
                manual: 0.5,
                planned: 0.0,
            },
            reactions: None,
            car_skew: 1.0,
            dis_miles_exponent: 1.0,
        },
        ManufacturerProfile {
            manufacturer: Ford,
            years: vec![y(ReportYear::R2016, 2, 590.0, 3, 0)],
            categories: CategoryMix {
                perception: 0.4,
                planner: 0.2,
                system: 0.4,
                unknown: 0.0,
            },
            modalities: ModalityMix {
                automatic: 0.5,
                manual: 0.5,
                planned: 0.0,
            },
            reactions: None,
            car_skew: 1.0,
            dis_miles_exponent: 1.0,
        },
        ManufacturerProfile {
            manufacturer: Bmw,
            years: vec![y(ReportYear::R2016, 1, 638.0, 1, 0)],
            categories: CategoryMix {
                perception: 0.4,
                planner: 0.2,
                system: 0.4,
                unknown: 0.0,
            },
            modalities: ModalityMix {
                automatic: 0.5,
                manual: 0.5,
                planned: 0.0,
            },
            reactions: None,
            car_skew: 1.0,
            dis_miles_exponent: 1.0,
        },
    ]
}

/// Paper-wide totals implied by the profiles, for calibration checks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CorpusTotals {
    /// Total autonomous miles.
    pub miles: f64,
    /// Total disengagements.
    pub disengagements: u64,
    /// Total accidents.
    pub accidents: u64,
}

/// Sums the profiles into corpus totals.
pub fn totals(profiles: &[ManufacturerProfile]) -> CorpusTotals {
    CorpusTotals {
        miles: profiles.iter().map(ManufacturerProfile::total_miles).sum(),
        disengagements: profiles
            .iter()
            .map(ManufacturerProfile::total_disengagements)
            .sum(),
        accidents: profiles
            .iter()
            .map(ManufacturerProfile::total_accidents)
            .sum(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_headline_totals() {
        let t = totals(&standard_profiles());
        // 1,116,605 autonomous miles; 5,328 disengagements; 42 accidents.
        assert!((t.miles - 1_116_605.0).abs() < 1_000.0, "miles = {}", t.miles);
        assert_eq!(t.disengagements, 5328);
        assert_eq!(t.accidents, 42);
    }

    #[test]
    fn table_one_spot_checks() {
        let p = standard_profiles();
        let waymo = p
            .iter()
            .find(|m| m.manufacturer == Manufacturer::Waymo)
            .unwrap();
        assert_eq!(waymo.years[0].disengagements, 341);
        assert_eq!(waymo.years[1].accidents, 16);
        assert_eq!(waymo.years[1].cars, 70);
        let bosch = p
            .iter()
            .find(|m| m.manufacturer == Manufacturer::Bosch)
            .unwrap();
        assert_eq!(bosch.years[1].disengagements, 1442);
    }

    #[test]
    fn all_mixes_normalized() {
        for p in standard_profiles() {
            assert!(
                p.categories.is_normalized(),
                "{}: category mix not normalized",
                p.manufacturer
            );
            assert!(
                p.modalities.is_normalized(),
                "{}: modality mix not normalized",
                p.manufacturer
            );
        }
    }

    #[test]
    fn planned_filers_have_no_reaction_times() {
        for p in standard_profiles() {
            if p.modalities.planned == 1.0 {
                assert!(p.reactions.is_none(), "{}", p.manufacturer);
            }
        }
    }

    #[test]
    fn accident_attribution_matches_table_six() {
        let p = standard_profiles();
        let acc = |m: Manufacturer| {
            p.iter()
                .find(|x| x.manufacturer == m)
                .unwrap()
                .total_accidents()
        };
        assert_eq!(acc(Manufacturer::Waymo), 25);
        assert_eq!(acc(Manufacturer::GmCruise), 14);
        assert_eq!(acc(Manufacturer::Delphi), 1);
        assert_eq!(acc(Manufacturer::Nissan), 1);
        assert_eq!(acc(Manufacturer::Uber), 1);
    }

    #[test]
    fn global_ml_share_near_sixty_four_percent() {
        // Weighted by disengagement counts, ML (perception + planner)
        // should land near the paper's 64% (we accept 58–68%).
        let p = standard_profiles();
        let mut ml = 0.0;
        let mut total = 0.0;
        for m in &p {
            let n = m.total_disengagements() as f64;
            ml += n * (m.categories.perception + m.categories.planner);
            total += n;
        }
        let share = ml / total;
        assert!((0.58..=0.68).contains(&share), "ML share = {share}");
    }

    #[test]
    fn fleet_sizes_sum_near_144() {
        // Table I: 61 cars in Y1 and 83 in Y2 across reporting
        // manufacturers. Our profiles add plausible fleets for the
        // dash-cell manufacturers, so totals come out moderately higher.
        let p = standard_profiles();
        let y1: u32 = p
            .iter()
            .flat_map(|m| &m.years)
            .filter(|y| y.year == ReportYear::R2015)
            .map(|y| y.cars)
            .sum();
        let y2: u32 = p
            .iter()
            .flat_map(|m| &m.years)
            .filter(|y| y.year == ReportYear::R2016)
            .map(|y| y.cars)
            .sum();
        assert!((61..=75).contains(&y1), "y1 fleet = {y1}");
        assert!((83..=120).contains(&y2), "y2 fleet = {y2}");
    }
}
