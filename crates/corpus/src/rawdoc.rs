//! Rendering ground-truth records into raw filings.

use disengage_reports::formats::disengagement::format_for;
use disengage_reports::formats::document::{DocumentKind, RawDocument};
use disengage_reports::formats::{render_accident_form, render_mileage_table};
use disengage_reports::record::AccidentRecord;
use disengage_reports::{DisengagementRecord, Manufacturer, MonthlyMileage, ReportYear};

/// Renders one (manufacturer, year) batch into a disengagement filing:
/// the manufacturer-format log lines followed by the mileage table.
pub fn render_disengagement_document(
    manufacturer: Manufacturer,
    year: ReportYear,
    records: &[DisengagementRecord],
    mileage: &[MonthlyMileage],
) -> RawDocument {
    let format = format_for(manufacturer);
    let mut text = String::new();
    for r in records {
        text.push_str(&format.render(r));
        text.push('\n');
    }
    if !mileage.is_empty() {
        text.push_str(&render_mileage_table(mileage));
    }
    RawDocument::new(manufacturer, year, DocumentKind::Disengagements, text)
}

/// Renders one accident record as an OL 316-style filing.
pub fn render_accident_document(record: &AccidentRecord) -> RawDocument {
    RawDocument::new(
        record.manufacturer,
        record.report_year(),
        DocumentKind::Accident,
        render_accident_form(record),
    )
}

/// Renders the full document set: one disengagement filing per
/// (manufacturer, year) batch plus one accident filing per accident.
pub fn render_documents(
    batches: &[(Manufacturer, ReportYear, Vec<DisengagementRecord>, Vec<MonthlyMileage>)],
    accidents: &[AccidentRecord],
) -> Vec<RawDocument> {
    let mut docs: Vec<RawDocument> = batches
        .iter()
        .map(|(m, y, records, mileage)| render_disengagement_document(*m, *y, records, mileage))
        .collect();
    docs.extend(accidents.iter().map(render_accident_document));
    docs
}

#[cfg(test)]
mod tests {
    use super::*;
    use disengage_reports::normalize::normalize_document;
    use disengage_reports::record::{CarId, CollisionKind, Severity};
    use disengage_reports::{Date, Modality, RoadType, Weather};

    fn record() -> DisengagementRecord {
        DisengagementRecord {
            manufacturer: Manufacturer::Nissan,
            car: CarId::Known(0),
            date: Date::new(2016, 1, 4).unwrap(),
            modality: Modality::Manual,
            road_type: Some(RoadType::Street),
            weather: Some(Weather::Clear),
            reaction_time_s: Some(0.8),
            description: "software module froze, driver safely disengaged".to_owned(),
        }
    }

    fn mileage() -> MonthlyMileage {
        MonthlyMileage {
            manufacturer: Manufacturer::Nissan,
            car: CarId::Known(0),
            month: Date::month_start(2016, 1).unwrap(),
            miles: 120.0,
        }
    }

    #[test]
    fn disengagement_document_round_trips() {
        let doc = render_disengagement_document(
            Manufacturer::Nissan,
            ReportYear::R2016,
            &[record(), record()],
            &[mileage()],
        );
        let n = normalize_document(&doc);
        assert_eq!(n.disengagements.len(), 2);
        assert_eq!(n.mileage.len(), 1);
        assert!(n.failures.is_empty(), "failures: {:?}", n.failures);
        assert_eq!(n.disengagements[0].description, record().description);
    }

    #[test]
    fn accident_document_round_trips() {
        let acc = AccidentRecord {
            manufacturer: Manufacturer::Waymo,
            car: CarId::Redacted,
            date: Date::new(2016, 5, 10).unwrap(),
            location: "Mountain View CA".to_owned(),
            av_speed_mph: Some(4.0),
            other_speed_mph: Some(10.0),
            autonomous_at_impact: true,
            kind: CollisionKind::RearEnd,
            severity: Severity::Minor,
            description: "rear collision while yielding".to_owned(),
        };
        let doc = render_accident_document(&acc);
        assert_eq!(doc.kind, DocumentKind::Accident);
        let n = normalize_document(&doc);
        assert_eq!(n.accidents.len(), 1);
        assert_eq!(n.accidents[0], acc);
    }

    #[test]
    fn render_documents_counts() {
        let docs = render_documents(
            &[(
                Manufacturer::Nissan,
                ReportYear::R2016,
                vec![record()],
                vec![mileage()],
            )],
            &[],
        );
        assert_eq!(docs.len(), 1);
        assert_eq!(docs[0].kind, DocumentKind::Disengagements);
    }
}
