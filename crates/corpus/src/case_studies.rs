//! The two Section II case studies as typed records.
//!
//! The paper opens with two real Mountain View accidents that motivate
//! the whole analysis; both are rear-end collisions at intersections in
//! which the AV's learning-based decisions set up a situation other road
//! users could not anticipate. They are reproduced here verbatim-in-
//! structure so analyses and examples can refer to them directly.

use disengage_reports::record::{AccidentRecord, CarId, CollisionKind, Severity};
use disengage_reports::{Date, DisengagementRecord, Manufacturer, Modality, RoadType, Weather};

/// Case Study I — "Real-Time Decisions" (Fig. 2, Example 1).
///
/// A Waymo prototype yielded to a pedestrian at an intersection; the test
/// driver proactively took control, had no option but to brake, and the
/// vehicle behind collided with the AV's rear.
pub fn case_study_1_accident() -> AccidentRecord {
    AccidentRecord {
        manufacturer: Manufacturer::Waymo,
        car: CarId::Redacted,
        date: Date::new(2015, 10, 8).expect("valid"),
        location: "South Shoreline Blvd & Highschool Way, Mountain View CA".to_owned(),
        av_speed_mph: Some(1.0),
        other_speed_mph: Some(10.0),
        autonomous_at_impact: false, // driver had taken control
        kind: CollisionKind::RearEnd,
        severity: Severity::Minor,
        description: "AV yielded to a pedestrian and braked; the vehicle behind collided \
                      with the rear of the AV"
            .to_owned(),
    }
}

/// The disengagement filed for Case Study I (the driver's proactive
/// takeover, logged as a reckless-road-user / behavior-prediction event).
pub fn case_study_1_disengagement() -> DisengagementRecord {
    DisengagementRecord {
        manufacturer: Manufacturer::Waymo,
        car: CarId::Redacted,
        date: Date::new(2015, 10, 1).expect("valid"),
        modality: Modality::Manual,
        road_type: Some(RoadType::Street),
        weather: Some(Weather::Clear),
        reaction_time_s: Some(0.9),
        description: "incorrect behavior prediction for the approaching car".to_owned(),
    }
}

/// Case Study II — "Anticipating AV Behavior" (Fig. 2, Example 2).
///
/// A Waymo prototype stopped before a right turn, crept forward to let
/// its recognition system gauge cross-traffic, and was rear-ended by a
/// driver who read the creep as commitment to the turn.
pub fn case_study_2_accident() -> AccidentRecord {
    AccidentRecord {
        manufacturer: Manufacturer::Waymo,
        car: CarId::Redacted,
        date: Date::new(2016, 5, 4).expect("valid"),
        location: "El Camino Real & Clark Ave, Mountain View CA".to_owned(),
        av_speed_mph: Some(4.0),
        other_speed_mph: Some(5.0),
        autonomous_at_impact: true,
        kind: CollisionKind::RearEnd,
        severity: Severity::Minor,
        description: "AV stopped before a right turn, crept forward to gauge traffic, and \
                      was struck from behind by a driver who could not anticipate the AV"
            .to_owned(),
    }
}

/// The disengagement report entry for Case Study II.
pub fn case_study_2_disengagement() -> DisengagementRecord {
    DisengagementRecord {
        manufacturer: Manufacturer::Waymo,
        car: CarId::Redacted,
        date: Date::new(2016, 5, 1).expect("valid"),
        modality: Modality::Manual,
        road_type: Some(RoadType::Street),
        weather: Some(Weather::Clear),
        reaction_time_s: None,
        description: "Disengage for a recklessly behaving road user".to_owned(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use disengage_nlp::{Classifier, FailureCategory, FaultTag};
    use disengage_reports::formats::{parse_accident_form, render_accident_form};

    #[test]
    fn case_studies_validate() {
        case_study_1_accident().validate().expect("cs1 valid");
        case_study_2_accident().validate().expect("cs2 valid");
        case_study_1_disengagement().validate().expect("cs1 dis valid");
        case_study_2_disengagement().validate().expect("cs2 dis valid");
    }

    #[test]
    fn both_are_low_speed_rear_end_intersection_collisions() {
        for acc in [case_study_1_accident(), case_study_2_accident()] {
            assert_eq!(acc.kind, CollisionKind::RearEnd);
            assert_eq!(acc.severity, Severity::Minor);
            assert!(acc.relative_speed_mph().expect("speeds present") <= 10.0);
            assert!(acc.location.contains("Mountain View"));
        }
    }

    #[test]
    fn disengagement_causes_classify_to_ml_design() {
        // Section II-C: the paper localizes both case studies to the
        // learning-based perception/decision systems.
        let cl = Classifier::with_default_dictionary();
        let a1 = cl.classify(&case_study_1_disengagement().description);
        assert_eq!(a1.tag, FaultTag::IncorrectBehaviorPrediction);
        assert_eq!(a1.category, FailureCategory::MlDesign);
        let a2 = cl.classify(&case_study_2_disengagement().description);
        assert_eq!(a2.tag, FaultTag::Environment);
        assert_eq!(a2.category, FailureCategory::MlDesign);
    }

    #[test]
    fn case_study_accidents_round_trip_the_ol316_form() {
        for acc in [case_study_1_accident(), case_study_2_accident()] {
            let form = render_accident_form(&acc);
            assert_eq!(parse_accident_form(&form).expect("parses"), acc);
        }
    }

    #[test]
    fn case_study_speeds_match_figure_2() {
        // Fig. 2 annotates 1 mph (AV) vs 10 mph in Example 1 and
        // 4 mph vs 5 mph in Example 2.
        assert_eq!(case_study_1_accident().av_speed_mph, Some(1.0));
        assert_eq!(case_study_1_accident().other_speed_mph, Some(10.0));
        assert_eq!(case_study_2_accident().av_speed_mph, Some(4.0));
        assert_eq!(case_study_2_accident().other_speed_mph, Some(5.0));
    }
}
