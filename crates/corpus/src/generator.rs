//! The corpus generator: profiles → typed ground-truth records → raw
//! documents.

use crate::allocation::{allocate_disengagements, allocate_miles, MileageGrid};
use crate::profile::{standard_profiles, ManufacturerProfile, YearProfile};
use crate::shard::{doc_count_for, ShardSpec};
use crate::templates::{accident_locations, accident_narratives, compose};
use disengage_nlp::FaultTag;
use disengage_reports::formats::RawDocument;
use disengage_reports::record::{AccidentRecord, CarId, CollisionKind, Severity};
use disengage_reports::{
    Date, DisengagementRecord, FailureDatabase, Manufacturer, Modality, MonthlyMileage,
    RoadType, Weather,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for corpus generation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CorpusConfig {
    /// RNG seed — the corpus is a pure function of this seed and `scale`.
    pub seed: u64,
    /// Scale factor on fleet sizes, miles, and event counts. `1.0`
    /// reproduces the paper's full corpus (5,328 disengagements); smaller
    /// values generate proportionally smaller corpora for fast tests.
    pub scale: f64,
}

impl Default for CorpusConfig {
    fn default() -> Self {
        CorpusConfig {
            seed: 0x5EED,
            scale: 1.0,
        }
    }
}

/// A generated corpus: ground truth plus the raw documents the pipeline
/// will digitize and parse.
#[derive(Debug, Clone)]
pub struct Corpus {
    /// The ground-truth consolidated database (what a perfect pipeline
    /// recovers).
    pub truth: FailureDatabase,
    /// The fault tag each disengagement was generated from, aligned with
    /// `truth.disengagements()` — the evaluation key for Stage III.
    pub intended_tags: Vec<FaultTag>,
    /// Raw documents in each manufacturer's format (input to Stage I/II).
    pub documents: Vec<RawDocument>,
}

/// Deterministic, profile-calibrated corpus generator.
#[derive(Debug, Clone)]
pub struct CorpusGenerator {
    config: CorpusConfig,
    profiles: Vec<ManufacturerProfile>,
}

impl CorpusGenerator {
    /// A generator over the paper's standard calibration.
    pub fn new(config: CorpusConfig) -> CorpusGenerator {
        CorpusGenerator {
            config,
            profiles: standard_profiles(),
        }
    }

    /// A generator over custom profiles (for what-if studies).
    pub fn with_profiles(config: CorpusConfig, profiles: Vec<ManufacturerProfile>) -> CorpusGenerator {
        CorpusGenerator { config, profiles }
    }

    /// The configuration in use.
    pub fn config(&self) -> CorpusConfig {
        self.config
    }

    /// Enumerates the corpus shards — one per (manufacturer,
    /// filing-year) cell, in profile order — with their derived seeds
    /// and stable document offsets. A pure function of the profiles and
    /// scale: no RNG is consumed, so the enumeration itself never
    /// perturbs shard content.
    ///
    /// # Panics
    ///
    /// Panics if `scale <= 0`.
    pub fn shards(&self) -> Vec<ShardSpec> {
        assert!(self.config.scale > 0.0, "scale must be positive");
        let mut specs = Vec::new();
        let mut doc_base = 0usize;
        for profile in &self.profiles {
            for year in &profile.years {
                let scaled = self.scale_year(year);
                let doc_count = doc_count_for(&scaled);
                specs.push(ShardSpec {
                    manufacturer: profile.manufacturer,
                    year: year.year,
                    seed: rand::derive_seed(
                        self.config.seed,
                        crate::shard::stable_shard_id(profile.manufacturer, year.year),
                    ),
                    index: specs.len(),
                    doc_base,
                    doc_count,
                });
                doc_base += doc_count;
            }
        }
        specs
    }

    /// Generates one shard in isolation: the cell's ground truth,
    /// intended tags, and rendered documents (the disengagement filing
    /// first, then its accident forms). The shard's RNG stream derives
    /// from [`ShardSpec::seed`] alone, so the output is byte-identical
    /// to the same slice of [`CorpusGenerator::generate`] no matter
    /// which other shards exist or run.
    ///
    /// # Panics
    ///
    /// Panics if `scale <= 0` or `spec` names a cell absent from this
    /// generator's profiles.
    pub fn generate_shard(&self, spec: &ShardSpec) -> Corpus {
        assert!(self.config.scale > 0.0, "scale must be positive");
        let profile = self
            .profiles
            .iter()
            .find(|p| p.manufacturer == spec.manufacturer)
            .unwrap_or_else(|| panic!("no profile for {}", spec.manufacturer));
        let year = profile
            .years
            .iter()
            .find(|y| y.year == spec.year)
            .unwrap_or_else(|| panic!("{} has no {:?} filing", spec.manufacturer, spec.year));
        let scaled = self.scale_year(year);
        let mut rng = StdRng::seed_from_u64(spec.seed);

        // A single 4-hour reaction-time outlier is planted in the
        // Volkswagen data (Section V-A4 reports one such entry). The
        // 2% per-record chance usually plants it mid-stream; if the
        // shard's stream never fires it, the last eligible record is
        // overwritten so the outlier exists at every seed and scale —
        // a per-shard guarantee now that no flag threads across shards.
        let mut vw_outlier_pending = true;
        let (mut records, tags, mileage) =
            self.generate_year(profile, &scaled, &mut vw_outlier_pending, &mut rng);
        if profile.manufacturer == Manufacturer::Volkswagen && vw_outlier_pending {
            if let Some(r) = records
                .iter_mut()
                .rev()
                .find(|r| r.reaction_time_s.is_some())
            {
                r.reaction_time_s = Some(14_400.0);
            }
        }
        let accidents = self.generate_accidents(profile, &scaled, &mut rng);

        let mut truth = FailureDatabase::new();
        for r in &records {
            truth.push_disengagement(r.clone());
        }
        for m in &mileage {
            truth.push_mileage(m.clone());
        }
        for a in &accidents {
            truth.push_accident(a.clone());
        }
        let mut documents = Vec::with_capacity(doc_count_for(&scaled));
        if !records.is_empty() || !mileage.is_empty() {
            documents.push(crate::rawdoc::render_disengagement_document(
                profile.manufacturer,
                year.year,
                &records,
                &mileage,
            ));
        }
        documents.extend(accidents.iter().map(crate::rawdoc::render_accident_document));
        debug_assert_eq!(
            documents.len(),
            spec.doc_count,
            "{}: enumerated doc_count must match generation",
            spec.label()
        );
        Corpus {
            truth,
            intended_tags: tags,
            documents,
        }
    }

    /// Generates the corpus: the deterministic concatenation of every
    /// shard, in enumeration order. Identical to generating each shard
    /// in isolation and folding — that equivalence is what makes
    /// sharded execution byte-identical to a monolithic run.
    ///
    /// # Panics
    ///
    /// Panics if `scale <= 0`.
    pub fn generate(&self) -> Corpus {
        let mut truth = FailureDatabase::new();
        let mut intended_tags = Vec::new();
        let mut documents = Vec::new();
        for spec in self.shards() {
            let shard = self.generate_shard(&spec);
            debug_assert_eq!(documents.len(), spec.doc_base);
            truth.merge(shard.truth);
            intended_tags.extend(shard.intended_tags);
            documents.extend(shard.documents);
        }
        Corpus {
            truth,
            intended_tags,
            documents,
        }
    }

    /// [`CorpusGenerator::generate`], recording Stage I telemetry into
    /// `obs`: total and per-manufacturer record counters, document
    /// counts, and the total-mileage gauge.
    pub fn generate_with(&self, obs: &disengage_obs::Collector) -> Corpus {
        let corpus = self.generate();
        obs.add(
            "corpus.disengagements",
            corpus.truth.disengagements().len() as u64,
        );
        obs.add("corpus.accidents", corpus.truth.accidents().len() as u64);
        obs.add("corpus.documents", corpus.documents.len() as u64);
        for r in corpus.truth.disengagements() {
            obs.incr(&format!(
                "corpus.dis.{}",
                disengage_obs::key_segment(r.manufacturer.name())
            ));
        }
        obs.gauge("corpus.total_miles", corpus.truth.total_miles());
        corpus
    }

    /// [`CorpusGenerator::generate_shard`], recording the shard's slice
    /// of the Stage I telemetry into `obs`: the same counters as
    /// [`CorpusGenerator::generate_with`], which sum across shards to
    /// the monolithic values. The `corpus.total_miles` gauge is *not*
    /// recorded here — gauges overwrite on absorb, so the corpus-wide
    /// value is the merge stage's job.
    pub fn generate_shard_with(
        &self,
        spec: &ShardSpec,
        obs: &disengage_obs::Collector,
    ) -> Corpus {
        let corpus = self.generate_shard(spec);
        obs.add(
            "corpus.disengagements",
            corpus.truth.disengagements().len() as u64,
        );
        obs.add("corpus.accidents", corpus.truth.accidents().len() as u64);
        obs.add("corpus.documents", corpus.documents.len() as u64);
        for r in corpus.truth.disengagements() {
            obs.incr(&format!(
                "corpus.dis.{}",
                disengage_obs::key_segment(r.manufacturer.name())
            ));
        }
        corpus
    }

    fn scale_year(&self, year: &YearProfile) -> YearProfile {
        let s = self.config.scale;
        if (s - 1.0).abs() < f64::EPSILON {
            return *year;
        }
        YearProfile {
            year: year.year,
            cars: if year.cars == 0 {
                0
            } else {
                ((year.cars as f64 * s).round() as u32).max(1)
            },
            miles: year.miles * s,
            disengagements: if year.disengagements == 0 {
                0
            } else {
                ((year.disengagements as f64 * s).round() as u64).max(1)
            },
            accidents: if year.accidents == 0 {
                0
            } else {
                ((year.accidents as f64 * s).round() as u64).max(1)
            },
        }
    }

    fn generate_year(
        &self,
        profile: &ManufacturerProfile,
        year: &YearProfile,
        vw_outlier_pending: &mut bool,
        rng: &mut StdRng,
    ) -> (Vec<DisengagementRecord>, Vec<FaultTag>, Vec<MonthlyMileage>) {
        let cars = year.cars as usize;
        if cars == 0 || year.miles <= 0.0 {
            return (Vec::new(), Vec::new(), Vec::new());
        }
        let grid = allocate_miles(year.miles, cars, year.year, 1.0, profile.car_skew, rng);
        let mileage = mileage_rows(profile.manufacturer, &grid);
        let counts = allocate_disengagements(
            year.disengagements,
            &grid,
            0.93,
            profile.dis_miles_exponent,
        );

        let total: u64 = counts.iter().flat_map(|row| row.iter()).sum();
        let mut modalities = modality_quota(&profile.modalities, total as usize, rng);
        let mut year_tags = tag_quota(&profile.categories, total as usize, rng);

        let mut records = Vec::new();
        let mut tags = Vec::new();
        for (car, row) in counts.iter().enumerate() {
            for (m, &n) in row.iter().enumerate() {
                let month = grid.months[m];
                // Position within the 27-month program (0..1) — drives
                // the positive reaction-time correlation with cumulative
                // miles (§V-A4). Keyed to the global month index so the
                // drift continues smoothly across the two release
                // windows.
                let miles_frac = (month.month_index() as f64 - 8.0) / 26.0;
                for _ in 0..n {
                    let tag = year_tags.pop().expect("quota sized to record count");
                    let modality = modalities.pop().expect("quota sized to record count");
                    let reaction_time_s = sample_reaction(
                        profile,
                        modality,
                        miles_frac,
                        vw_outlier_pending,
                        rng,
                    );
                    let day = rng.gen_range(1..=28);
                    let record = DisengagementRecord {
                        manufacturer: profile.manufacturer,
                        car: CarId::Known(car as u32),
                        date: Date::new(month.year(), month.month(), day)
                            .expect("day <= 28 is always valid"),
                        modality,
                        road_type: sample_road(rng),
                        weather: sample_weather(rng),
                        reaction_time_s,
                        description: compose(tag, rng),
                    };
                    records.push(record);
                    tags.push(tag);
                }
            }
        }
        (records, tags, mileage)
    }

    fn generate_accidents(
        &self,
        profile: &ManufacturerProfile,
        year: &YearProfile,
        rng: &mut StdRng,
    ) -> Vec<AccidentRecord> {
        let months = crate::allocation::window_months(year.year);
        let narratives = accident_narratives();
        let locations = accident_locations();
        (0..year.accidents)
            .map(|_| {
                let month = months[rng.gen_range(0..months.len())];
                let day = rng.gen_range(1..=28);
                // Fig. 12: low speeds, exponentially distributed.
                let av_speed = sample_exponential(5.0, rng).min(30.0);
                let other_speed = sample_exponential(8.5, rng).min(40.0);
                let kind = match rng.gen_range(0..100) {
                    0..=59 => CollisionKind::RearEnd,
                    60..=84 => CollisionKind::SideSwipe,
                    85..=94 => CollisionKind::Object,
                    _ => CollisionKind::Frontal,
                };
                let severity = match rng.gen_range(0..100) {
                    0..=79 => Severity::Minor,
                    80..=94 => Severity::Moderate,
                    _ => Severity::Major,
                };
                AccidentRecord {
                    manufacturer: profile.manufacturer,
                    car: if rng.gen_bool(0.5) {
                        CarId::Redacted
                    } else {
                        CarId::Known(rng.gen_range(0..year.cars.max(1)))
                    },
                    date: Date::new(month.year(), month.month(), day).expect("valid"),
                    location: locations[rng.gen_range(0..locations.len())].to_owned(),
                    av_speed_mph: Some((av_speed * 10.0).round() / 10.0),
                    other_speed_mph: Some((other_speed * 10.0).round() / 10.0),
                    autonomous_at_impact: rng.gen_bool(0.7),
                    kind,
                    severity,
                    description: narratives[rng.gen_range(0..narratives.len())].to_owned(),
                }
            })
            .collect()
    }
}

fn mileage_rows(manufacturer: Manufacturer, grid: &MileageGrid) -> Vec<MonthlyMileage> {
    let mut rows = Vec::new();
    for (car, row) in grid.miles.iter().enumerate() {
        for (m, &miles) in row.iter().enumerate() {
            if miles > 0.0 {
                rows.push(MonthlyMileage {
                    manufacturer,
                    car: CarId::Known(car as u32),
                    month: grid.months[m],
                    miles,
                });
            }
        }
    }
    rows
}

/// Largest-remainder apportionment: integer counts summing to `n`,
/// proportional to `shares` (which need not be normalized exactly).
fn apportion<const K: usize>(shares: [f64; K], n: usize) -> [usize; K] {
    let total: f64 = shares.iter().sum();
    let mut counts = [0usize; K];
    let mut fracs = [0f64; K];
    let mut assigned = 0usize;
    for i in 0..K {
        let exact = if total > 0.0 {
            shares[i] / total * n as f64
        } else {
            0.0
        };
        counts[i] = exact.floor() as usize;
        fracs[i] = exact - exact.floor();
        assigned += counts[i];
    }
    while assigned < n {
        let i = (0..K)
            .max_by(|&a, &b| fracs[a].total_cmp(&fracs[b]))
            .expect("K > 0");
        counts[i] += 1;
        fracs[i] = -1.0;
        assigned += 1;
    }
    counts
}

/// Fisher–Yates shuffle with the corpus generator's own source.
fn shuffle<T, R: Rng + ?Sized>(xs: &mut [T], rng: &mut R) {
    for i in (1..xs.len()).rev() {
        let j = rng.gen_range(0..=i);
        xs.swap(i, j);
    }
}

/// Allocates a year's fault tags by quota: the category mix is
/// apportioned exactly (Table IV holds at every seed, instead of
/// drifting with sampling noise on small fleets like Nissan's), then
/// each slot samples a specific tag from the within-category splits
/// that produce Fig. 6's tag distribution.
fn tag_quota<R: Rng + ?Sized>(
    mix: &crate::profile::CategoryMix,
    n: usize,
    rng: &mut R,
) -> Vec<FaultTag> {
    let counts = apportion([mix.perception, mix.planner, mix.system, mix.unknown], n);
    let mut out = Vec::with_capacity(n);
    for _ in 0..counts[0] {
        out.push(if rng.gen_bool(0.7) {
            FaultTag::RecognitionSystem
        } else {
            FaultTag::Environment
        });
    }
    for _ in 0..counts[1] {
        out.push(match rng.gen_range(0..100) {
            0..=59 => FaultTag::Planner,
            60..=84 => FaultTag::IncorrectBehaviorPrediction,
            85..=94 => FaultTag::AvControllerDecision,
            _ => FaultTag::DesignBug,
        });
    }
    for _ in 0..counts[2] {
        out.push(match rng.gen_range(0..100) {
            0..=39 => FaultTag::Software,
            40..=59 => FaultTag::ComputerSystem,
            60..=74 => FaultTag::HangCrash,
            75..=89 => FaultTag::Sensor,
            90..=94 => FaultTag::Network,
            _ => FaultTag::AvControllerUnresponsive,
        });
    }
    out.extend(std::iter::repeat(FaultTag::UnknownT).take(counts[3]));
    shuffle(&mut out, rng);
    out
}

/// Allocates a year's modalities by quota — largest-remainder
/// apportionment of the profile's mix over `n` records, then a seeded
/// shuffle so modality is uncorrelated with car and month. Table V's
/// percentages hold exactly (up to per-year rounding) at every seed,
/// instead of drifting with sampling noise on small fleets like
/// Nissan's.
fn modality_quota<R: Rng + ?Sized>(
    mix: &crate::profile::ModalityMix,
    n: usize,
    rng: &mut R,
) -> Vec<Modality> {
    let counts = apportion([mix.automatic, mix.manual, mix.planned], n);
    let mut out = Vec::with_capacity(n);
    for (m, c) in [Modality::Automatic, Modality::Manual, Modality::Planned]
        .into_iter()
        .zip(counts)
    {
        out.extend(std::iter::repeat(m).take(c));
    }
    shuffle(&mut out, rng);
    out
}

/// Road-type mix from Section III-C (31.7% city streets, 29.26%
/// highways, 14.63% interstates, 9.75% freeways, remainder parking /
/// suburban / rural). A third of records omit the field, as many real
/// filings do.
fn sample_road<R: Rng + ?Sized>(rng: &mut R) -> Option<RoadType> {
    if rng.gen_bool(1.0 / 3.0) {
        return None;
    }
    let u: f64 = rng.gen();
    Some(if u < 0.317 {
        RoadType::Street
    } else if u < 0.317 + 0.2926 {
        RoadType::Highway
    } else if u < 0.317 + 0.2926 + 0.1463 {
        RoadType::Interstate
    } else if u < 0.317 + 0.2926 + 0.1463 + 0.0975 {
        RoadType::Freeway
    } else if u < 0.317 + 0.2926 + 0.1463 + 0.0975 + 0.05 {
        RoadType::ParkingLot
    } else if u < 0.317 + 0.2926 + 0.1463 + 0.0975 + 0.05 + 0.05 {
        RoadType::Suburban
    } else {
        RoadType::Rural
    })
}

fn sample_weather<R: Rng + ?Sized>(rng: &mut R) -> Option<Weather> {
    if rng.gen_bool(0.4) {
        return None;
    }
    let u: f64 = rng.gen();
    Some(if u < 0.70 {
        Weather::Clear
    } else if u < 0.85 {
        Weather::Overcast
    } else if u < 0.97 {
        Weather::Rain
    } else {
        Weather::Fog
    })
}

/// Samples a driver reaction time: Weibull base (Fig. 11) with a mild
/// positive drift in cumulative miles (§V-A4's r ≈ 0.1–0.2), plus the
/// one ~4-hour Volkswagen outlier.
fn sample_reaction<R: Rng + ?Sized>(
    profile: &ManufacturerProfile,
    modality: Modality,
    miles_frac: f64,
    vw_outlier_pending: &mut bool,
    rng: &mut R,
) -> Option<f64> {
    let params = profile.reactions?;
    if modality == Modality::Planned {
        return None;
    }
    if profile.manufacturer == Manufacturer::Volkswagen && *vw_outlier_pending && rng.gen_bool(0.02)
    {
        *vw_outlier_pending = false;
        return Some(14_400.0); // the ~4 h entry the paper flags
    }
    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
    let base = params.scale * (-(1.0 - u).ln()).powf(1.0 / params.shape);
    let drifted = base * (1.0 + 0.5 * miles_frac);
    Some((drifted * 100.0).round() / 100.0)
}

fn sample_exponential<R: Rng + ?Sized>(mean: f64, rng: &mut R) -> f64 {
    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
    -mean * (1.0 - u).ln()
}

#[cfg(test)]
mod tests {
    use super::*;
    use disengage_reports::ReportYear;

    fn small_corpus() -> Corpus {
        CorpusGenerator::new(CorpusConfig {
            seed: 42,
            scale: 0.05,
        })
        .generate()
    }

    #[test]
    fn full_scale_counts_match_paper() {
        let corpus = CorpusGenerator::new(CorpusConfig::default()).generate();
        assert_eq!(corpus.truth.disengagements().len(), 5328);
        assert_eq!(corpus.truth.accidents().len(), 42);
        let miles = corpus.truth.total_miles();
        assert!(
            (miles - 1_116_605.0).abs() / 1_116_605.0 < 0.01,
            "miles = {miles}"
        );
        assert_eq!(corpus.intended_tags.len(), 5328);
    }

    #[test]
    fn deterministic_under_seed() {
        let a = small_corpus();
        let b = small_corpus();
        assert_eq!(a.truth.disengagements().len(), b.truth.disengagements().len());
        assert_eq!(a.truth.disengagements()[0], b.truth.disengagements()[0]);
        assert_eq!(a.intended_tags, b.intended_tags);
        assert_eq!(a.documents.len(), b.documents.len());
        assert_eq!(a.documents[0].text, b.documents[0].text);
    }

    #[test]
    fn different_seeds_differ() {
        let a = CorpusGenerator::new(CorpusConfig { seed: 1, scale: 0.05 }).generate();
        let b = CorpusGenerator::new(CorpusConfig { seed: 2, scale: 0.05 }).generate();
        assert_ne!(
            a.truth.disengagements()[0],
            b.truth.disengagements()[0]
        );
    }

    #[test]
    fn planned_filers_have_planned_modality_and_no_reactions() {
        let corpus = small_corpus();
        for r in corpus.truth.disengagements() {
            if matches!(
                r.manufacturer,
                Manufacturer::Bosch | Manufacturer::GmCruise
            ) {
                assert_eq!(r.modality, Modality::Planned);
                assert!(r.reaction_time_s.is_none());
            }
        }
    }

    #[test]
    fn volkswagen_automatic_only() {
        let corpus = small_corpus();
        for r in corpus.truth.disengagements() {
            if r.manufacturer == Manufacturer::Volkswagen {
                assert_eq!(r.modality, Modality::Automatic);
            }
        }
    }

    #[test]
    fn records_validate() {
        let corpus = small_corpus();
        for r in corpus.truth.disengagements() {
            r.validate().expect("generated record must validate");
        }
        for a in corpus.truth.accidents() {
            a.validate().expect("generated accident must validate");
        }
        for m in corpus.truth.mileage() {
            m.validate().expect("generated mileage must validate");
        }
    }

    #[test]
    fn dates_inside_release_windows() {
        let corpus = small_corpus();
        for r in corpus.truth.disengagements() {
            let d = r.date;
            assert!(
                d >= Date::new(2014, 9, 1).unwrap() && d <= Date::new(2016, 11, 28).unwrap(),
                "date {d} outside dataset window"
            );
            assert_eq!(r.report_year(), ReportYear::containing(&d));
        }
    }

    #[test]
    fn accident_speeds_low_and_positive() {
        let corpus = CorpusGenerator::new(CorpusConfig::default()).generate();
        let speeds: Vec<f64> = corpus
            .truth
            .accidents()
            .iter()
            .filter_map(|a| a.av_speed_mph)
            .collect();
        assert_eq!(speeds.len(), 42);
        assert!(speeds.iter().all(|&s| (0.0..=30.0).contains(&s)));
        // Most accidents are slow (Fig. 12a: bulk below 10 mph).
        let slow = speeds.iter().filter(|&&s| s < 10.0).count();
        assert!(slow as f64 / speeds.len() as f64 > 0.5);
    }

    #[test]
    fn reaction_times_present_for_reporting_manufacturers() {
        let corpus = CorpusGenerator::new(CorpusConfig::default()).generate();
        let waymo = corpus.truth.reaction_times(Manufacturer::Waymo);
        assert!(!waymo.is_empty());
        let mean = waymo.iter().sum::<f64>() / waymo.len() as f64;
        assert!((0.5..=1.5).contains(&mean), "waymo mean rt = {mean}");
        assert!(corpus
            .truth
            .reaction_times(Manufacturer::Bosch)
            .is_empty());
    }

    #[test]
    fn vw_outlier_planted_at_full_scale() {
        let corpus = CorpusGenerator::new(CorpusConfig::default()).generate();
        let vw = corpus.truth.reaction_times(Manufacturer::Volkswagen);
        assert!(
            vw.iter().any(|&t| t > 10_000.0),
            "expected the ~4 h outlier in {} VW reaction times",
            vw.len()
        );
    }

    #[test]
    fn tesla_mostly_unknown_tags() {
        let corpus = CorpusGenerator::new(CorpusConfig::default()).generate();
        let tesla: Vec<&FaultTag> = corpus
            .truth
            .disengagements()
            .iter()
            .zip(&corpus.intended_tags)
            .filter(|(r, _)| r.manufacturer == Manufacturer::Tesla)
            .map(|(_, t)| t)
            .collect();
        assert!(!tesla.is_empty());
        let unknown = tesla.iter().filter(|&&&t| t == FaultTag::UnknownT).count();
        assert!(
            unknown as f64 / tesla.len() as f64 > 0.9,
            "tesla unknown share = {}/{}",
            unknown,
            tesla.len()
        );
    }

    #[test]
    fn documents_cover_disengagements_and_accidents() {
        let corpus = small_corpus();
        use disengage_reports::formats::DocumentKind;
        let dis_docs = corpus
            .documents
            .iter()
            .filter(|d| d.kind == DocumentKind::Disengagements)
            .count();
        let acc_docs = corpus
            .documents
            .iter()
            .filter(|d| d.kind == DocumentKind::Accident)
            .count();
        assert!(dis_docs >= 8, "dis docs = {dis_docs}");
        assert_eq!(acc_docs, corpus.truth.accidents().len());
    }

    #[test]
    #[should_panic(expected = "scale must be positive")]
    fn zero_scale_panics() {
        CorpusGenerator::new(CorpusConfig { seed: 1, scale: 0.0 }).generate();
    }

    #[test]
    fn shard_enumeration_covers_every_table_cell() {
        let gen = CorpusGenerator::new(CorpusConfig {
            seed: 42,
            scale: 0.05,
        });
        let shards = gen.shards();
        // 12 manufacturers, 18 (manufacturer, filing-year) cells.
        assert_eq!(shards.len(), 18);
        let labels: Vec<String> = shards.iter().map(|s| s.label()).collect();
        assert!(labels.contains(&"waymo_2015".to_owned()));
        assert!(labels.contains(&"waymo_2016".to_owned()));
        assert!(labels.contains(&"volkswagen_2015".to_owned()));
        // Document offsets tile the corpus exactly.
        let corpus = gen.generate();
        let total: usize = shards.iter().map(|s| s.doc_count).sum();
        assert_eq!(total, corpus.documents.len());
        for w in shards.windows(2) {
            assert_eq!(w[0].doc_base + w[0].doc_count, w[1].doc_base);
        }
    }

    #[test]
    fn each_shard_is_byte_identical_to_its_slice_of_the_full_corpus() {
        let gen = CorpusGenerator::new(CorpusConfig {
            seed: 42,
            scale: 0.05,
        });
        let full = gen.generate();
        for spec in gen.shards() {
            let shard = gen.generate_shard(&spec);
            let slice = &full.documents[spec.doc_base..spec.doc_base + spec.doc_count];
            assert_eq!(shard.documents.len(), slice.len(), "{}", spec.label());
            for (a, b) in shard.documents.iter().zip(slice) {
                assert_eq!(a.text, b.text, "{}", spec.label());
                assert_eq!(a.kind, b.kind);
            }
        }
    }

    #[test]
    fn shard_seeds_are_stable_under_profile_removal() {
        // Dropping a profile must not move any surviving shard's seed —
        // seeds derive from content identity, never enumeration order.
        let config = CorpusConfig {
            seed: 42,
            scale: 0.05,
        };
        let all = CorpusGenerator::new(config);
        let mut fewer_profiles = standard_profiles();
        fewer_profiles.remove(0); // drop Mercedes-Benz
        let fewer = CorpusGenerator::with_profiles(config, fewer_profiles);
        for spec in fewer.shards() {
            let original = all
                .shards()
                .into_iter()
                .find(|s| s.manufacturer == spec.manufacturer && s.year == spec.year)
                .expect("surviving shard exists in the full enumeration");
            assert_eq!(spec.seed, original.seed, "{}", spec.label());
            let a = fewer.generate_shard(&spec);
            let b = all.generate_shard(&original);
            assert_eq!(a.truth.disengagements(), b.truth.disengagements());
            assert_eq!(a.documents.len(), b.documents.len());
        }
    }

    #[test]
    fn vw_outlier_planted_in_isolated_shard_at_any_seed() {
        for seed in [1u64, 2, 3, 0x5EED] {
            let gen = CorpusGenerator::new(CorpusConfig { seed, scale: 0.05 });
            let spec = gen
                .shards()
                .into_iter()
                .find(|s| s.manufacturer == Manufacturer::Volkswagen)
                .unwrap();
            let shard = gen.generate_shard(&spec);
            assert!(
                shard
                    .truth
                    .disengagements()
                    .iter()
                    .any(|r| r.reaction_time_s.is_some_and(|t| t > 10_000.0)),
                "seed {seed}: VW shard must carry the ~4 h outlier"
            );
        }
    }
}
