//! Allocation of totals across months and cars.
//!
//! Table I gives *totals* per manufacturer per release; the figures need
//! per-car monthly series. This module distributes totals with the
//! dynamics the paper observes: activity ramps up over a release window,
//! and disengagements-per-mile *decline* as cumulative miles accumulate
//! (Figs. 7–9).

use disengage_reports::{Date, ReportYear};
use rand::Rng;

/// Months (as month-start dates) covered by a DMV release window.
///
/// The dataset spans September 2014 – November 2016; release windows end
/// in November (filings are due by January 1 covering through November).
pub fn window_months(year: ReportYear) -> Vec<Date> {
    let (start, count) = match year {
        // Sep 2014 .. Nov 2015 (15 months).
        ReportYear::R2015 => (Date::month_start(2014, 9).expect("valid"), 15),
        // Dec 2015 .. Nov 2016 (12 months).
        ReportYear::R2016 => (Date::month_start(2015, 12).expect("valid"), 12),
    };
    (0..count).map(|i| start.add_months(i)).collect()
}

/// Normalized linear-ramp weights: activity grows over the window.
///
/// `growth = 0` is uniform; `growth = 1` makes the last month roughly
/// twice the first.
pub fn ramp_weights(n: usize, growth: f64) -> Vec<f64> {
    if n == 0 {
        return Vec::new();
    }
    let raw: Vec<f64> = (0..n)
        .map(|i| 1.0 + growth * i as f64 / n.max(1) as f64)
        .collect();
    let total: f64 = raw.iter().sum();
    raw.into_iter().map(|w| w / total).collect()
}

/// Splits an integer `total` across buckets proportional to `weights`
/// using the largest-remainder method — counts sum to `total` exactly.
///
/// # Panics
///
/// Panics if `weights` is empty while `total > 0`, or if any weight is
/// negative.
pub fn split_largest_remainder(total: u64, weights: &[f64]) -> Vec<u64> {
    if total == 0 {
        return vec![0; weights.len()];
    }
    assert!(!weights.is_empty(), "cannot split a positive total over no buckets");
    assert!(
        weights.iter().all(|&w| w >= 0.0),
        "weights must be non-negative"
    );
    let sum: f64 = weights.iter().sum();
    let norm: Vec<f64> = if sum == 0.0 {
        vec![1.0 / weights.len() as f64; weights.len()]
    } else {
        weights.iter().map(|w| w / sum).collect()
    };
    let ideal: Vec<f64> = norm.iter().map(|w| w * total as f64).collect();
    let mut counts: Vec<u64> = ideal.iter().map(|x| x.floor() as u64).collect();
    let assigned: u64 = counts.iter().sum();
    let mut remainders: Vec<(usize, f64)> = ideal
        .iter()
        .enumerate()
        .map(|(i, x)| (i, x - x.floor()))
        .collect();
    remainders.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite").then(a.0.cmp(&b.0)));
    for (i, _) in remainders.iter().take((total - assigned) as usize) {
        counts[*i] += 1;
    }
    counts
}

/// Per-car weights with dispersion controlled by `skew`.
///
/// `skew = 1` gives mild jitter (every car within ~0.4–1.6× of the
/// fleet average). Larger values raise the jitter to a power, producing
/// the heavy per-car mileage concentration some fleets show (a few
/// workhorse prototypes drive most miles while shakedown cars barely
/// move).
pub fn car_weights<R: Rng + ?Sized>(cars: usize, skew: f64, rng: &mut R) -> Vec<f64> {
    if cars == 0 {
        return Vec::new();
    }
    let raw: Vec<f64> = (0..cars)
        .map(|_| (0.4 + rng.gen::<f64>() * 1.2_f64).powf(skew))
        .collect();
    let total: f64 = raw.iter().sum();
    raw.into_iter().map(|w| w / total).collect()
}

/// A per-(car, month) mileage allocation.
#[derive(Debug, Clone, PartialEq)]
pub struct MileageGrid {
    /// Month-start dates (columns).
    pub months: Vec<Date>,
    /// `miles[car][month]`.
    pub miles: Vec<Vec<f64>>,
}

impl MileageGrid {
    /// Total miles across the grid.
    pub fn total(&self) -> f64 {
        self.miles.iter().flatten().sum()
    }

    /// Cumulative miles (all cars) by month, aligned with `months`.
    pub fn cumulative_by_month(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.months.len());
        let mut acc = 0.0;
        for m in 0..self.months.len() {
            for car in &self.miles {
                acc += car[m];
            }
            out.push(acc);
        }
        out
    }
}

/// Distributes `total_miles` over `cars × window months` with a ramp in
/// time and dispersion across cars. The grid sums to `total_miles`
/// exactly (up to float rounding).
pub fn allocate_miles<R: Rng + ?Sized>(
    total_miles: f64,
    cars: usize,
    year: ReportYear,
    growth: f64,
    car_skew: f64,
    rng: &mut R,
) -> MileageGrid {
    let months = window_months(year);
    if cars == 0 || total_miles <= 0.0 {
        return MileageGrid {
            months,
            miles: Vec::new(),
        };
    }
    let month_w = ramp_weights(months.len(), growth);
    let car_w = car_weights(cars, car_skew, rng);
    let mut miles = vec![vec![0.0; months.len()]; cars];
    for (c, cw) in car_w.iter().enumerate() {
        for (m, mw) in month_w.iter().enumerate() {
            // Mild multiplicative jitter, renormalized below.
            let jitter = 0.8 + rng.gen::<f64>() * 0.4;
            miles[c][m] = total_miles * cw * mw * jitter;
        }
    }
    // Renormalize to hit the calibrated total exactly.
    let raw_total: f64 = miles.iter().flatten().sum();
    let factor = total_miles / raw_total;
    for row in &mut miles {
        for cell in row {
            *cell = (*cell * factor * 10.0).round() / 10.0;
        }
    }
    MileageGrid { months, miles }
}

/// Distributes a disengagement `total` across the cells of a mileage
/// grid, weighted by miles × a monthly decay — so DPM *falls* as miles
/// accumulate, reproducing the negative correlation of Fig. 8.
///
/// `monthly_decay` is the month-over-month DPM multiplier (e.g. 0.93).
/// The returned counts sum to `total` exactly.
/// `miles_exponent` controls how disengagements scale with a cell's
/// miles: `1.0` is proportional; values below 1 give low-mileage cars
/// relatively more disengagements (burn-in behavior), which is what
/// drives the high median per-car DPM some fleets report.
pub fn allocate_disengagements(
    total: u64,
    grid: &MileageGrid,
    monthly_decay: f64,
    miles_exponent: f64,
) -> Vec<Vec<u64>> {
    let cars = grid.miles.len();
    let months = grid.months.len();
    if cars == 0 || months == 0 {
        return Vec::new();
    }
    // Stage 1: split across cars by total miles raised to the exponent
    // (sub-linear exponents give low-mileage cars relatively more
    // disengagements — burn-in behavior).
    let car_weights: Vec<f64> = grid
        .miles
        .iter()
        .map(|row| {
            let total: f64 = row.iter().sum();
            if total > 0.0 {
                total.powf(miles_exponent)
            } else {
                0.0
            }
        })
        .collect();
    let per_car = split_largest_remainder(total, &car_weights);
    // Stage 2: within each car, split across months by miles × decay.
    // Decay is keyed to the global month index so the two release
    // windows form one continuous improvement curve.
    per_car
        .iter()
        .zip(&grid.miles)
        .map(|(&car_total, row)| {
            let month_weights: Vec<f64> = row
                .iter()
                .enumerate()
                .map(|(m, &miles)| {
                    let global = grid.months[m].month_index() as f64;
                    miles * monthly_decay.powf(global)
                })
                .collect();
            split_largest_remainder(car_total, &month_weights)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn window_months_match_releases() {
        let y1 = window_months(ReportYear::R2015);
        assert_eq!(y1.len(), 15);
        assert_eq!(y1[0], Date::month_start(2014, 9).unwrap());
        assert_eq!(*y1.last().unwrap(), Date::month_start(2015, 11).unwrap());
        let y2 = window_months(ReportYear::R2016);
        assert_eq!(y2.len(), 12);
        assert_eq!(y2[0], Date::month_start(2015, 12).unwrap());
        assert_eq!(*y2.last().unwrap(), Date::month_start(2016, 11).unwrap());
    }

    #[test]
    fn ramp_weights_normalized_and_increasing() {
        let w = ramp_weights(10, 1.0);
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(w.windows(2).all(|p| p[0] < p[1]));
        let flat = ramp_weights(5, 0.0);
        assert!(flat.iter().all(|&x| (x - 0.2).abs() < 1e-12));
    }

    #[test]
    fn largest_remainder_exact() {
        let counts = split_largest_remainder(10, &[1.0, 1.0, 1.0]);
        assert_eq!(counts.iter().sum::<u64>(), 10);
        assert!(counts.iter().all(|&c| c == 3 || c == 4));
        let counts = split_largest_remainder(7, &[0.5, 0.25, 0.25]);
        assert_eq!(counts, vec![3, 2, 2]);
    }

    #[test]
    fn largest_remainder_zero_total_and_zero_weights() {
        assert_eq!(split_largest_remainder(0, &[1.0, 2.0]), vec![0, 0]);
        let counts = split_largest_remainder(4, &[0.0, 0.0]);
        assert_eq!(counts.iter().sum::<u64>(), 4);
    }

    #[test]
    fn car_weights_normalized() {
        let mut rng = StdRng::seed_from_u64(1);
        let w = car_weights(7, 1.0, &mut rng);
        assert_eq!(w.len(), 7);
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(w.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn allocate_miles_hits_total() {
        let mut rng = StdRng::seed_from_u64(2);
        let grid = allocate_miles(424_332.0, 49, ReportYear::R2015, 1.0, 1.0, &mut rng);
        assert_eq!(grid.miles.len(), 49);
        assert_eq!(grid.months.len(), 15);
        assert!(
            (grid.total() - 424_332.0).abs() < 50.0,
            "total = {}",
            grid.total()
        );
        // Cumulative series is nondecreasing.
        let cum = grid.cumulative_by_month();
        assert!(cum.windows(2).all(|w| w[1] >= w[0]));
    }

    #[test]
    fn allocate_miles_empty_fleet() {
        let mut rng = StdRng::seed_from_u64(3);
        let grid = allocate_miles(100.0, 0, ReportYear::R2016, 1.0, 1.0, &mut rng);
        assert_eq!(grid.total(), 0.0);
    }

    #[test]
    fn disengagement_allocation_sums_exactly() {
        let mut rng = StdRng::seed_from_u64(4);
        let grid = allocate_miles(10_000.0, 4, ReportYear::R2015, 1.0, 1.0, &mut rng);
        let d = allocate_disengagements(341, &grid, 0.93, 1.0);
        let total: u64 = d.iter().flatten().sum();
        assert_eq!(total, 341);
        assert_eq!(d.len(), 4);
        assert_eq!(d[0].len(), 15);
    }

    #[test]
    fn dpm_declines_over_time() {
        // With decay, the per-month DPM in the last third of the window
        // must be lower than in the first third.
        let mut rng = StdRng::seed_from_u64(5);
        let grid = allocate_miles(50_000.0, 10, ReportYear::R2015, 0.5, 1.0, &mut rng);
        let d = allocate_disengagements(2000, &grid, 0.90, 1.0);
        let months = grid.months.len();
        let third = months / 3;
        let mut early_dis = 0.0;
        let mut early_miles = 0.0;
        let mut late_dis = 0.0;
        let mut late_miles = 0.0;
        for (car, row) in grid.miles.iter().enumerate() {
            for m in 0..months {
                if m < third {
                    early_dis += d[car][m] as f64;
                    early_miles += row[m];
                } else if m >= months - third {
                    late_dis += d[car][m] as f64;
                    late_miles += row[m];
                }
            }
        }
        let early_dpm = early_dis / early_miles;
        let late_dpm = late_dis / late_miles;
        assert!(
            late_dpm < early_dpm * 0.7,
            "early {early_dpm}, late {late_dpm}"
        );
    }
}
