//! End-to-end integration: Stage I → II → III → IV over the full
//! pipeline, including the simulated-OCR digitization path.

use disengage::core::pipeline::{OcrMode, Pipeline, PipelineConfig};
use disengage::core::{figures, questions, tables, tagging};
use disengage::corpus::CorpusConfig;
use disengage::ocr::NoiseModel;

fn config(scale: f64) -> PipelineConfig {
    PipelineConfig {
        corpus: CorpusConfig { seed: 314, scale },
        ..Default::default()
    }
}

#[test]
fn passthrough_pipeline_is_lossless_and_exact() {
    let outcome = Pipeline::new(config(0.08)).run().expect("pipeline runs");
    assert!(outcome.parse_failures.is_empty());
    assert_eq!(
        outcome.database.disengagements().len(),
        outcome.corpus.truth.disengagements().len()
    );
    assert_eq!(
        outcome.database.accidents().len(),
        outcome.corpus.truth.accidents().len()
    );
    assert_eq!(
        outcome.database.mileage().len(),
        outcome.corpus.truth.mileage().len()
    );
    // Stage III recovers the generator's intent perfectly on clean text
    // (the dictionary covers every template).
    let acc = tagging::tagging_accuracy(&outcome.tagged, &outcome.corpus.intended_tags);
    assert_eq!(acc.tag_accuracy, 1.0, "tag accuracy {}", acc.tag_accuracy);
    assert_eq!(acc.category_accuracy, 1.0);
}

#[test]
fn simulated_ocr_pipeline_survives_light_noise() {
    let outcome = Pipeline::new(PipelineConfig {
        corpus: CorpusConfig {
            seed: 314,
            scale: 0.02,
        },
        ocr: OcrMode::Simulated {
            noise: NoiseModel::light(),
            correct: true,
        },
        ocr_seed: 9,
    })
    .run()
    .expect("pipeline runs");
    let stats = outcome.ocr.expect("ocr stats present");
    assert!(stats.mean_cer < 0.05, "cer = {}", stats.mean_cer);
    assert!(
        outcome.recovery_rate() > 0.8,
        "recovery = {}",
        outcome.recovery_rate()
    );
    // Tagging of recovered records stays highly accurate: descriptions
    // that survive parsing are nearly clean.
    let unknown = outcome
        .tagged
        .iter()
        .filter(|t| t.assignment.tag == disengage::nlp::FaultTag::UnknownT)
        .count();
    // Tesla's intentional unknowns are ~3.4% of the corpus; OCR noise
    // should not balloon that beyond ~3x.
    assert!(
        (unknown as f64) < outcome.tagged.len() as f64 * 0.12,
        "unknown tags: {unknown}/{}",
        outcome.tagged.len()
    );
}

#[test]
fn every_table_and_figure_computes_from_one_run() {
    let outcome = Pipeline::new(config(0.1)).run().expect("pipeline runs");
    let db = &outcome.database;
    let classifier = disengage::nlp::Classifier::with_default_dictionary();

    assert!(tables::table1(db).expect("t1").n_rows() >= 8);
    assert_eq!(tables::table2(&classifier).expect("t2").n_rows(), 4);
    assert_eq!(tables::table3().expect("t3").n_rows(), 13);
    assert!(tables::table4(&outcome.tagged).expect("t4").n_rows() >= 8);
    assert!(tables::table5(db).expect("t5").n_rows() >= 8);
    assert!(tables::table6(db).expect("t6").n_rows() >= 3);
    assert!(tables::table7(db).expect("t7").n_rows() >= 6);
    assert!(tables::table8(db).expect("t8").n_rows() >= 2);

    assert!(!figures::fig4(db).expect("fig4").boxes.is_empty());
    assert!(!figures::fig5(db).is_empty());
    assert!(!figures::fig6(&outcome.tagged).stacks.is_empty());
    assert!(!figures::fig7(db).expect("fig7").panels.is_empty());
    assert!(figures::fig8(db).expect("fig8").correlation.r < 0.0);
    assert!(!figures::fig9(db).is_empty());
    assert!(!figures::fig10(db).expect("fig10").boxes.is_empty());
    assert!(figures::fig11(db, disengage::reports::Manufacturer::Waymo).is_ok());
    for kind in [
        figures::SpeedKind::Av,
        figures::SpeedKind::Manual,
        figures::SpeedKind::Relative,
    ] {
        assert!(figures::fig12(db, kind).is_ok());
    }

    assert!(questions::q1_assessment(db).is_ok());
    let q2 = questions::q2_causes(&outcome.tagged);
    assert!(q2.global.n > 0);
    assert!(questions::q3_dynamics(db).is_ok());
    assert!(questions::q4_alertness(db).is_ok());
    assert!(questions::q5_comparison(db).is_ok());
}

#[test]
fn pipeline_is_deterministic() {
    let a = Pipeline::new(config(0.05)).run().expect("run a");
    let b = Pipeline::new(config(0.05)).run().expect("run b");
    assert_eq!(a.database.disengagements(), b.database.disengagements());
    assert_eq!(a.database.accidents(), b.database.accidents());
    assert_eq!(
        a.tagged.iter().map(|t| t.assignment.tag).collect::<Vec<_>>(),
        b.tagged.iter().map(|t| t.assignment.tag).collect::<Vec<_>>()
    );
}

#[test]
fn different_corpus_seeds_change_data_not_shape() {
    let a = Pipeline::new(PipelineConfig {
        corpus: CorpusConfig {
            seed: 1,
            scale: 0.05,
        },
        ..Default::default()
    })
    .run()
    .expect("run a");
    let b = Pipeline::new(PipelineConfig {
        corpus: CorpusConfig {
            seed: 2,
            scale: 0.05,
        },
        ..Default::default()
    })
    .run()
    .expect("run b");
    // Same calibrated totals...
    assert_eq!(
        a.database.disengagements().len(),
        b.database.disengagements().len()
    );
    // ...different realizations.
    assert_ne!(a.database.disengagements(), b.database.disengagements());
}
