//! Seeded chaos properties across the whole pipeline.
//!
//! Same discipline as `tests/properties.rs`: a few hundred cases drawn
//! from fixed seeds, exactly reproducible, zero external dependencies.
//! The contract under fault injection is threefold:
//!
//! 1. a no-fault plan is *inert* — the outcome is identical to a run
//!    with no plan at all;
//! 2. every injected fault is accounted for — corrected, quarantined,
//!    or absorbed, with the ledger reconciling exactly;
//! 3. the pipeline and the stats substrate *never panic*, no matter
//!    what the injectors produce (guarded by `catch_unwind`).

use disengage::chaos::{inject_documents, poison_dictionary, DegenerateKind, FaultPlan};
use disengage::core::pipeline::{Pipeline, PipelineConfig};
use disengage::core::telemetry::reconcile;
use disengage::corpus::CorpusConfig;
use disengage::nlp::{Classifier, FailureDictionary, FaultTag};
use disengage::stats::dist::Exponential;
use disengage::stats::fit::{fit_exponential, fit_exponentiated_weibull, fit_weibull};
use disengage::stats::ks::{ks_test, ks_two_sample};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::panic::{catch_unwind, AssertUnwindSafe};

fn config(seed: u64) -> PipelineConfig {
    PipelineConfig {
        corpus: CorpusConfig { seed, scale: 0.03 },
        ..Default::default()
    }
}

#[test]
fn no_fault_plan_is_inert() {
    for seed in 0..6u64 {
        let clean = Pipeline::new(config(seed)).run().expect("clean run");
        let zero = Pipeline::new(config(seed))
            .with_chaos(FaultPlan::new(0.0, seed ^ 0xABC))
            .run()
            .expect("rate-0 run");
        assert_eq!(
            format!("{:?}", clean.database),
            format!("{:?}", zero.database),
            "seed {seed}: rate-0 chaos changed the database"
        );
        assert_eq!(clean.tagged, zero.tagged, "seed {seed}");
        assert_eq!(clean.parse_failures, zero.parse_failures, "seed {seed}");
        assert!(zero.chaos.is_none(), "seed {seed}: inert plan audited");
    }
}

#[test]
fn every_fault_corrected_quarantined_or_absorbed_never_a_panic() {
    let mut rng = StdRng::seed_from_u64(0xFA17);
    for case in 0..8u64 {
        let rate = rng.gen_range(0.01..0.3);
        let plan = FaultPlan::new(rate, 0x1000 + case);
        let result = catch_unwind(AssertUnwindSafe(|| {
            Pipeline::new(config(case))
                .with_chaos(plan)
                .run()
                .expect("chaos run returns, never panics")
        }));
        let outcome = result.unwrap_or_else(|_| {
            panic!("case {case}: pipeline panicked under chaos rate {rate:.3}")
        });
        let audit = outcome.chaos.expect("active plan audits");
        assert!(
            audit.totals.reconciles(),
            "case {case} rate {rate:.3}: {:?}",
            audit.totals
        );
        for (kind, o) in &audit.per_kind {
            assert!(o.reconciles(), "case {case} kind {kind}: {o:?}");
        }
        let violations = reconcile(&outcome.telemetry);
        assert!(violations.is_empty(), "case {case}: {violations:?}");
        // The quarantine lane mirrors the failure queue one-to-one.
        assert_eq!(outcome.quarantined.len(), outcome.parse_failures.len());
    }
}

#[test]
fn chaos_runs_are_deterministic() {
    let plan = FaultPlan::new(0.12, 0xD5);
    let a = Pipeline::new(config(3)).with_chaos(plan).run().unwrap();
    let b = Pipeline::new(config(3)).with_chaos(plan).run().unwrap();
    assert_eq!(format!("{:?}", a.database), format!("{:?}", b.database));
    assert_eq!(a.tagged, b.tagged);
    assert_eq!(a.chaos, b.chaos);
}

#[test]
fn injection_only_touches_documents_it_logs() {
    // Documents with no logged fault come through byte-identical.
    for seed in 0..12u64 {
        let corpus = disengage::corpus::CorpusGenerator::new(CorpusConfig { seed, scale: 0.02 })
            .generate();
        let plan = FaultPlan::new(0.1, seed * 31 + 7);
        let (faulted, log) = inject_documents(&plan, &corpus.documents);
        assert_eq!(faulted.len(), corpus.documents.len());
        let touched: std::collections::BTreeSet<usize> =
            log.faults.iter().map(|f| f.doc).collect();
        for (d, (clean, chaos)) in corpus.documents.iter().zip(&faulted).enumerate() {
            if !touched.contains(&d) {
                assert_eq!(clean.text, chaos.text, "seed {seed} doc {d} silently changed");
            }
        }
    }
}

#[test]
fn stats_substrate_never_panics_on_degenerate_series() {
    for kind in DegenerateKind::ALL {
        for seed in 0..4u64 {
            let xs = kind.series(seed, 24);
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                let _ = fit_exponential(&xs);
                let _ = fit_weibull(&xs);
                let _ = fit_exponentiated_weibull(&xs);
                if let Ok(d) = Exponential::new(1.0) {
                    let _ = ks_test(&xs, &d);
                }
                let _ = ks_two_sample(&xs, &[1.0, 2.0, 3.0]);
            }));
            assert!(outcome.is_ok(), "{kind:?} seed {seed} panicked the stats layer");
        }
    }
}

#[test]
fn poisoned_classifier_always_answers() {
    let dict = FailureDictionary::default_bank();
    let mut rng = StdRng::seed_from_u64(0xC1A5);
    for case in 0..50u64 {
        let rate = rng.gen_range(0.2..=1.0);
        let (poisoned, dropped) = poison_dictionary(&FaultPlan::new(rate, case), &dict);
        assert_eq!(poisoned.len() + dropped as usize, dict.len());
        let classifier = Classifier::new(poisoned);
        // Arbitrary junk text, including empty and digit-only lines.
        let text: String = match case % 4 {
            0 => String::new(),
            1 => "#### 999913 ^^^^".to_owned(),
            2 => (0..rng.gen_range(1..20usize))
                .map(|_| {
                    let len = rng.gen_range(1..10usize);
                    (0..len)
                        .map(|_| (b'a' + rng.gen_range(0..26u8)) as char)
                        .collect::<String>()
                })
                .collect::<Vec<_>>()
                .join(" "),
            _ => "software module froze watchdog error".to_owned(),
        };
        let verdict = catch_unwind(AssertUnwindSafe(|| classifier.classify(&text)))
            .unwrap_or_else(|_| panic!("case {case}: classifier panicked on {text:?}"));
        assert!(
            FaultTag::ALL.contains(&verdict.tag),
            "case {case}: verdict outside the tag set"
        );
    }
}
