//! The flight recorder rides the same determinism contract as the
//! rest of the telemetry: it is always on, records per worker, and is
//! absorbed shard-style in task order — so its *canonical* dump
//! (timestamps zeroed, task stamps omitted, environment-fact
//! namespaces dropped) must be byte-identical at every `--jobs`
//! setting, on clean and chaos runs alike. The *full* dump is the
//! postmortem form: an interrupted session must leave a validating
//! `flight.json` whose postmortem names the aborted stage and the
//! spans that were still open at death.
//!
//! Warm-vs-cold flight identity is deliberately NOT promised: a warm
//! run genuinely did not execute the cached stages, so its ring holds
//! different history. These tests therefore run cacheless.

use disengage::chaos::FaultPlan;
use disengage::core::pipeline::{OcrMode, RunTrace};
use disengage::core::{CoreError, RunConfig, RunSession, Stage};
use disengage::corpus::CorpusConfig;
use disengage::obs::{flight, Collector};
use disengage::ocr::NoiseModel;
use std::path::{Path, PathBuf};

/// A unique, self-cleaning scratch directory per test.
struct TempDir(PathBuf);

impl TempDir {
    fn new(name: &str) -> TempDir {
        let dir = std::env::temp_dir().join(format!(
            "disengage-flight-determinism-{}-{name}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("scratch dir");
        TempDir(dir)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Simulated OCR at a small scale — the deepest pipeline (scanner,
/// OCR correction, chaos-capable parse) so the ring sees real
/// traffic from every stage.
fn small() -> RunConfig {
    RunConfig::new()
        .with_corpus(CorpusConfig {
            seed: 0x5EED,
            scale: 0.01,
        })
        .with_ocr(OcrMode::Simulated {
            noise: NoiseModel::light(),
            correct: true,
        })
        .with_ocr_seed(0xD0C5)
        .without_flight_dump()
}

/// Runs a config and renders its canonical flight dump.
fn canonical_dump(config: &RunConfig) -> String {
    let obs = Collector::new();
    let trace = RunTrace::new(&obs);
    RunSession::new(config.clone())
        .run_traced(&obs, &trace)
        .expect("session runs");
    let suspects = flight::suspects(trace.provenance(), 8);
    flight::render_dump(&obs, None, "run complete", &suspects, true)
}

#[test]
fn canonical_dump_is_byte_identical_across_worker_counts() {
    let sequential = canonical_dump(&small().with_jobs(1));
    let parallel = canonical_dump(&small().with_jobs(8));
    assert!(
        flight::validate_dump(&sequential).is_ok(),
        "canonical dump must validate"
    );
    assert_eq!(
        sequential, parallel,
        "canonical flight dump diverged between --jobs=1 and --jobs=8"
    );
}

#[test]
fn canonical_dump_is_byte_identical_across_worker_counts_under_chaos() {
    let config = small().with_chaos(FaultPlan::new(0.05, 7));
    let sequential = canonical_dump(&config.clone().with_jobs(1));
    let parallel = canonical_dump(&config.with_jobs(8));
    assert!(
        sequential.contains("chaos.inject"),
        "chaos run should record injection events:\n{sequential}"
    );
    assert_eq!(
        sequential, parallel,
        "chaos canonical flight dump diverged between --jobs=1 and --jobs=8"
    );
}

#[test]
fn repeated_runs_render_the_same_canonical_dump() {
    // Same config, two processes' worth of wall clock apart: the
    // canonical form must not smuggle any timing through.
    let first = canonical_dump(&small());
    std::thread::sleep(std::time::Duration::from_millis(25));
    let second = canonical_dump(&small());
    assert_eq!(first, second, "canonical flight dump is time-dependent");
}

#[test]
fn interrupted_run_leaves_a_doctorable_postmortem() {
    let scratch = TempDir::new("interrupt");
    let dump_path = scratch.path().join("flight.json");
    let config = small()
        .with_abort_after(Stage::Normalize)
        .with_flight_path(&dump_path);
    let obs = Collector::new();
    let trace = RunTrace::new(&obs);
    let err = RunSession::new(config)
        .run_traced(&obs, &trace)
        .expect_err("abort point must interrupt the run");
    assert!(
        matches!(err, CoreError::Interrupted { after: "normalize" }),
        "{err:?}"
    );

    let text = std::fs::read_to_string(&dump_path).expect("crash dump written");
    let dump = flight::validate_dump(&text).expect("crash dump validates");
    assert!(!dump.canonical, "crash dumps are the full form");
    assert_eq!(dump.reason, "interrupted after stage normalize");
    assert!(
        dump.open_spans.iter().any(|s| s == "pipeline"),
        "the root span must still be open at death: {:?}",
        dump.open_spans
    );
    assert!(
        dump.events
            .iter()
            .any(|e| matches!(&e.kind, disengage::obs::FlightKind::Event { name, detail }
                if name == "interrupt" && detail == "normalize")),
        "the interrupt event must be on the ring"
    );

    let post = flight::render_postmortem(&dump, 20);
    assert!(
        post.contains("interrupted after stage normalize"),
        "postmortem must name the aborted stage:\n{post}"
    );
    assert!(
        post.contains("pipeline"),
        "postmortem must list the open spans:\n{post}"
    );
}

#[test]
fn disabling_the_dump_writes_nothing() {
    let scratch = TempDir::new("disabled");
    let before: Vec<_> = std::fs::read_dir(scratch.path())
        .expect("scratch readable")
        .collect();
    assert!(before.is_empty());
    let config = small().with_abort_after(Stage::Corpus);
    let err = RunSession::new(config)
        .run_with(&Collector::new())
        .expect_err("abort point must interrupt the run");
    assert!(matches!(err, CoreError::Interrupted { after: "corpus" }));
    let after: Vec<_> = std::fs::read_dir(scratch.path())
        .expect("scratch readable")
        .collect();
    assert!(
        after.is_empty(),
        "without_flight_dump must leave no postmortem behind"
    );
}
