//! The determinism contract of the parallel pipeline: at any worker
//! count, `PipelineOutcome` — database, verdicts, failure queues,
//! OCR stats, and canonical telemetry alike — is byte-identical to the
//! sequential run, in clean and chaos modes both.

use disengage::chaos::FaultPlan;
use disengage::core::pipeline::{OcrMode, Pipeline, PipelineConfig, PipelineOutcome};
use disengage::core::telemetry::reconcile;
use disengage::corpus::CorpusConfig;
use disengage::ocr::NoiseModel;

fn config() -> PipelineConfig {
    PipelineConfig {
        corpus: CorpusConfig {
            seed: 0x5EED,
            scale: 0.01,
        },
        ocr: OcrMode::Simulated {
            noise: NoiseModel::light(),
            correct: true,
        },
        ocr_seed: 0xD0C5,
    }
}

fn run(jobs: usize, chaos: Option<FaultPlan>) -> PipelineOutcome {
    let mut pipeline = Pipeline::new(config()).with_jobs(jobs);
    if let Some(plan) = chaos {
        pipeline = pipeline.with_chaos(plan);
    }
    pipeline.run().expect("pipeline runs")
}

/// Everything the pipeline produced, as one comparable string.
/// Telemetry enters in canonical form — wall-clock timings are the
/// only fields allowed to differ between runs.
fn fingerprint(o: &PipelineOutcome) -> String {
    format!(
        "{:?}|{:?}|{:?}|{:?}|{:?}|{:?}|{}",
        o.database,
        o.tagged,
        o.parse_failures,
        o.quarantined,
        o.chaos,
        o.ocr,
        o.telemetry.clone().canonical().to_json()
    )
}

#[test]
fn clean_run_identical_at_every_worker_count() {
    let reference = run(1, None);
    let want = fingerprint(&reference);
    assert!(
        reconcile(&reference.telemetry).is_empty(),
        "{:?}",
        reconcile(&reference.telemetry)
    );
    for jobs in [2, 8] {
        let o = run(jobs, None);
        assert_eq!(fingerprint(&o), want, "jobs={jobs} diverged from jobs=1");
        assert!(reconcile(&o.telemetry).is_empty(), "jobs={jobs}");
    }
}

#[test]
fn chaos_run_identical_at_every_worker_count() {
    let plan = FaultPlan::new(0.05, 7);
    let reference = run(1, Some(plan));
    let want = fingerprint(&reference);
    assert!(
        reference.chaos.as_ref().is_some_and(|a| a.totals.injected > 0),
        "chaos plan injected nothing; the test is vacuous"
    );
    assert!(reconcile(&reference.telemetry).is_empty());
    for jobs in [2, 8] {
        let o = run(jobs, Some(plan));
        assert_eq!(
            fingerprint(&o),
            want,
            "chaos jobs={jobs} diverged from jobs=1"
        );
        assert!(reconcile(&o.telemetry).is_empty(), "jobs={jobs}");
    }
}

#[test]
fn jobs_zero_matches_sequential() {
    // 0 = all available cores: whatever the machine has, the output
    // must still match.
    let reference = run(1, None);
    let auto = run(0, None);
    assert_eq!(fingerprint(&auto), fingerprint(&reference));
}
