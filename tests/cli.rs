//! CLI contract of the `disengage` binary: `--help`/`-h` exit 0 with
//! usage on stdout, unknown or malformed `--` flags exit nonzero with
//! an error naming the flag plus the usage text — never silently
//! ignored (the pre-refactor parser treated unknown flags as
//! positionals and dropped them).

use std::process::{Command, Output};

fn disengage(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_disengage"))
        .args(args)
        .output()
        .expect("disengage binary runs")
}

#[test]
fn help_exits_zero_with_usage() {
    for flag in ["--help", "-h"] {
        let out = disengage(&[flag]);
        assert!(out.status.success(), "{flag} must exit 0");
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(stdout.contains("usage:"), "{flag} must print usage");
        assert!(
            stdout.contains("--cache-dir"),
            "{flag} must document the shared flags"
        );
    }
    // Help wins even alongside a real command.
    assert!(disengage(&["summary", "--help"]).status.success());
}

#[test]
fn unknown_flags_are_rejected_loudly() {
    for bad in ["--bogus", "--job=2", "--cachedir=x"] {
        let out = disengage(&["summary", bad]);
        assert!(!out.status.success(), "{bad} must exit nonzero");
        let stderr = String::from_utf8_lossy(&out.stderr);
        let flag = bad.split('=').next().unwrap();
        assert!(stderr.contains(flag), "error must name {flag}: {stderr}");
        assert!(stderr.contains("usage:"), "error must include usage");
    }
}

#[test]
fn malformed_values_are_rejected() {
    for bad in [
        ["summary", "--scale=nope"],
        ["summary", "--jobs=many"],
        ["summary", "--telemetry=loud"],
        ["summary", "--chaos=2.0"],
    ] {
        let out = disengage(&bad);
        assert!(!out.status.success(), "{bad:?} must exit nonzero");
    }
}

#[test]
fn missing_command_fails_with_usage() {
    let out = disengage(&[]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage:"));
}
