//! CLI contract of the `disengage` binary: `--help`/`-h` exit 0 with
//! usage on stdout, unknown or malformed `--` flags exit nonzero with
//! an error naming the flag plus the usage text — never silently
//! ignored (the pre-refactor parser treated unknown flags as
//! positionals and dropped them).

use std::process::{Command, Output};

fn disengage(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_disengage"))
        .args(args)
        .output()
        .expect("disengage binary runs")
}

#[test]
fn help_exits_zero_with_usage() {
    for flag in ["--help", "-h"] {
        let out = disengage(&[flag]);
        assert!(out.status.success(), "{flag} must exit 0");
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(stdout.contains("usage:"), "{flag} must print usage");
        assert!(
            stdout.contains("--cache-dir"),
            "{flag} must document the shared flags"
        );
    }
    // Help wins even alongside a real command.
    assert!(disengage(&["summary", "--help"]).status.success());
}

/// Every subcommand the binary dispatches must appear in `--help`.
/// This list mirrors the `match` in `src/bin/disengage.rs`; when a
/// command is added there, it must be added to `usage()` too, and this
/// test keeps the two from drifting.
#[test]
fn help_covers_every_dispatchable_subcommand() {
    let out = disengage(&["--help"]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    for command in [
        "summary",
        "export",
        "classify",
        "stpa-dot",
        "demo-miles",
        "project",
        "sweep-ocr",
        "explain",
        "profile",
        "check-folded",
        "check-trace",
        "doctor",
        "check-prom",
        "health",
    ] {
        assert!(
            stdout.contains(&format!("disengage {command}")),
            "usage text is missing the `{command}` subcommand"
        );
    }
    // The shard filter rides along with the other shared flags.
    assert!(stdout.contains("--shards"), "usage must document --shards");
}

#[test]
fn unknown_flags_are_rejected_loudly() {
    for bad in ["--bogus", "--job=2", "--cachedir=x"] {
        let out = disengage(&["summary", bad]);
        assert!(!out.status.success(), "{bad} must exit nonzero");
        let stderr = String::from_utf8_lossy(&out.stderr);
        let flag = bad.split('=').next().unwrap();
        assert!(stderr.contains(flag), "error must name {flag}: {stderr}");
        assert!(stderr.contains("usage:"), "error must include usage");
    }
}

#[test]
fn malformed_values_are_rejected() {
    for bad in [
        ["summary", "--scale=nope"],
        ["summary", "--jobs=many"],
        ["summary", "--telemetry=loud"],
        ["summary", "--chaos=2.0"],
        ["summary", "--cache-cap=lots"],
        ["summary", "--cache-cap=-1"],
        ["profile", "--profile=flame"],
    ] {
        let out = disengage(&bad);
        assert!(!out.status.success(), "{bad:?} must exit nonzero");
    }
}

/// `--cache-cap` is a shared flag: documented in the usage, accepted
/// with both spellings (including the 0 = unbounded sentinel), loud on
/// garbage.
#[test]
fn cache_cap_is_documented_and_accepted() {
    let help = disengage(&["--help"]);
    assert!(
        String::from_utf8_lossy(&help.stdout).contains("--cache-cap"),
        "usage must document --cache-cap"
    );
    let dir = std::env::temp_dir().join(format!("disengage-cli-cap-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cache = format!("--cache-dir={}", dir.display());
    for cap in ["--cache-cap=2", "--cache-cap=0"] {
        let out = disengage(&["summary", "--scale=0.01", &cache, cap]);
        assert!(
            out.status.success(),
            "{cap} must be accepted: {}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// `disengage profile` renders the stage × phase table by default, and
/// its folded export round-trips through `check-folded`.
#[test]
fn profile_command_renders_and_folded_round_trips() {
    let out = disengage(&["profile", "--scale=0.01"]);
    assert!(out.status.success(), "profile must exit 0");
    let stdout = String::from_utf8_lossy(&out.stdout);
    for needle in ["== profile ==", "stage_i_ocr", "digitize", "rasterize", "throughput"] {
        assert!(stdout.contains(needle), "table must mention {needle}:\n{stdout}");
    }

    let folded = disengage(&["profile", "--scale=0.01", "--profile=folded"]);
    assert!(folded.status.success());
    let dir = std::env::temp_dir().join(format!("disengage-cli-profile-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("profile.folded");
    std::fs::write(&path, &folded.stdout).expect("write folded");
    let check = disengage(&["check-folded", path.to_str().expect("utf-8 path")]);
    assert!(check.status.success(), "check-folded must accept our own export");
    assert!(String::from_utf8_lossy(&check.stdout).contains("valid folded stacks"));
    let _ = std::fs::remove_dir_all(&dir);
}

/// `--profile=json` emits a single JSON object that the in-tree parser
/// accepts, with the documented top-level sections.
#[test]
fn profile_json_parses_with_expected_sections() {
    let out = disengage(&["profile", "--scale=0.01", "--profile=json"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    let value = disengage::obs::json::Value::parse(text.trim()).expect("profile json parses");
    for section in ["stages", "phases", "throughput", "memory", "pool"] {
        assert!(value.get(section).is_some(), "missing `{section}` section");
    }
}

#[test]
fn check_folded_rejects_garbage() {
    let dir = std::env::temp_dir().join(format!("disengage-cli-folded-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("bad.folded");
    std::fs::write(&path, "no-weight-here\n").expect("write");
    let out = disengage(&["check-folded", path.to_str().expect("utf-8 path")]);
    assert!(!out.status.success(), "garbage must be rejected");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn missing_command_fails_with_usage() {
    let out = disengage(&[]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage:"));
}

/// `--flight` and `--prom` write files our own validators accept:
/// `doctor` renders the flight postmortem, `check-prom` validates the
/// exposition.
#[test]
fn flight_and_prom_exports_round_trip_through_their_validators() {
    let dir = std::env::temp_dir().join(format!("disengage-cli-obs-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let flight = dir.join("flight.json");
    let prom = dir.join("metrics.prom");
    let out = disengage(&[
        "summary",
        "--scale=0.01",
        &format!("--flight={}", flight.display()),
        &format!("--prom={}", prom.display()),
    ]);
    assert!(
        out.status.success(),
        "summary with exports must exit 0: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    let doctor = disengage(&["doctor", flight.to_str().expect("utf-8 path")]);
    assert!(doctor.status.success(), "doctor must accept our own dump");
    let post = String::from_utf8_lossy(&doctor.stdout);
    for needle in ["flight recorder postmortem", "reason: run complete", "pipeline"] {
        assert!(post.contains(needle), "postmortem must mention {needle}:\n{post}");
    }

    let check = disengage(&["check-prom", prom.to_str().expect("utf-8 path")]);
    assert!(check.status.success(), "check-prom must accept our own exposition");
    assert!(String::from_utf8_lossy(&check.stdout).contains("valid Prometheus exposition"));
    let _ = std::fs::remove_dir_all(&dir);
}

/// `doctor` and `check-prom` are loud on garbage and missing files.
#[test]
fn doctor_and_check_prom_reject_garbage() {
    let dir = std::env::temp_dir().join(format!("disengage-cli-garbage-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let bad = dir.join("bad.json");
    std::fs::write(&bad, "{\"schema\":\"other\"}").expect("write");
    assert!(!disengage(&["doctor", bad.to_str().expect("utf-8")]).status.success());
    assert!(!disengage(&["doctor", "/nonexistent/flight.json"]).status.success());
    let badprom = dir.join("bad.prom");
    std::fs::write(&badprom, "metric with spaces 1\n").expect("write");
    assert!(!disengage(&["check-prom", badprom.to_str().expect("utf-8")]).status.success());
    let _ = std::fs::remove_dir_all(&dir);
}

/// The health gate: clean runs pass the default rules and exit 0; a
/// heavy chaos run breaches the quarantine-rate rule and exits
/// nonzero with the breach named.
#[test]
fn health_gate_passes_clean_and_fails_chaos() {
    let clean = disengage(&["health", "--scale=0.01"]);
    assert!(
        clean.status.success(),
        "clean run must pass the default rules: {}",
        String::from_utf8_lossy(&clean.stdout)
    );
    let stdout = String::from_utf8_lossy(&clean.stdout);
    assert!(stdout.contains("== health =="));
    assert!(stdout.contains("PASS quarantine_rate"));

    let chaos = disengage(&["health", "--scale=0.01", "--chaos=0.2"]);
    assert!(
        !chaos.status.success(),
        "a 20%-rate chaos run must breach the quarantine-rate rule"
    );
    let stdout = String::from_utf8_lossy(&chaos.stdout);
    assert!(
        stdout.contains("FAIL quarantine_rate"),
        "breach must be named:\n{stdout}"
    );
}

/// `--health=FILE` loads custom rules; unparseable rule files are
/// rejected loudly.
#[test]
fn health_rule_files_are_loaded_and_validated() {
    let dir = std::env::temp_dir().join(format!("disengage-cli-health-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let rules = dir.join("rules.txt");
    std::fs::write(&rules, "# impossible bar\nno_records counter(parse.dis.parsed) == 0 fail\n")
        .expect("write");
    let out = disengage(&[
        "health",
        "--scale=0.01",
        &format!("--health={}", rules.display()),
    ]);
    assert!(
        !out.status.success(),
        "a parsed-records==0 rule must fail on a real run"
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("FAIL no_records"));

    let bad = dir.join("bad.txt");
    std::fs::write(&bad, "just two\n").expect("write");
    let out = disengage(&[
        "health",
        "--scale=0.01",
        &format!("--health={}", bad.display()),
    ]);
    assert!(!out.status.success(), "malformed rule files must be rejected");
    assert!(String::from_utf8_lossy(&out.stderr).contains("error:"));
    let _ = std::fs::remove_dir_all(&dir);
}
