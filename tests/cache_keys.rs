//! Cache-key sensitivity: every configuration field that can change a
//! stage's output must change that stage's fingerprint (and every
//! downstream fingerprint), and nothing else may.
//!
//! The keys are pure functions of the configuration
//! ([`disengage::core::RunSession::stage_keys`]), so a stale-artifact
//! bug here is silent data corruption downstream — the goldens at the
//! bottom additionally pin the exact FNV-1a values so an accidental
//! recipe change (field reordered, field dropped, format-version bump
//! forgotten) fails loudly instead of invalidating caches quietly.

use disengage::chaos::FaultPlan;
use disengage::core::pipeline::OcrMode;
use disengage::core::{RunConfig, RunSession, Stage, StageKeys};
use disengage::corpus::CorpusConfig;
use disengage::nlp::{Classifier, FailureDictionary, FaultTag};
use disengage::ocr::NoiseModel;

fn base() -> RunConfig {
    RunConfig::new().with_corpus(CorpusConfig {
        seed: 0x5EED,
        scale: 0.05,
    })
}

fn keys(config: RunConfig) -> StageKeys {
    RunSession::new(config).stage_keys(false)
}

/// Asserts `changed` differs from `reference` exactly at `from` and
/// every stage downstream of it, and matches upstream.
fn assert_ripples_from(reference: &StageKeys, changed: &StageKeys, from: Stage) {
    for stage in Stage::ALL {
        let (a, b) = (reference.for_stage(stage), changed.for_stage(stage));
        if stage < from {
            assert_eq!(a, b, "{stage:?} key must not move");
        } else if a.is_some() {
            assert_ne!(a, b, "{stage:?} key must move");
        }
    }
}

#[test]
fn corpus_fields_ripple_from_the_top() {
    let reference = keys(base());
    let seed = keys(base().with_corpus(CorpusConfig {
        seed: 0x5EEE,
        scale: 0.05,
    }));
    assert_ripples_from(&reference, &seed, Stage::Corpus);
    let scale = keys(base().with_corpus(CorpusConfig {
        seed: 0x5EED,
        scale: 0.06,
    }));
    assert_ripples_from(&reference, &scale, Stage::Corpus);
}

#[test]
fn every_ocr_field_moves_the_digitize_key() {
    let simulated = |noise, correct| {
        keys(base().with_ocr(OcrMode::Simulated { noise, correct }))
    };
    let reference = simulated(NoiseModel::light(), true);

    // Mode flip: passthrough vs simulated.
    assert_ripples_from(&keys(base()), &reference, Stage::Digitize);

    // Each noise field individually.
    let mut salt = NoiseModel::light();
    salt.salt += 0.001;
    assert_ripples_from(&reference, &simulated(salt, true), Stage::Digitize);
    let mut erosion = NoiseModel::light();
    erosion.erosion += 0.001;
    assert_ripples_from(&reference, &simulated(erosion, true), Stage::Digitize);
    let mut smear = NoiseModel::light();
    smear.smear += 0.001;
    assert_ripples_from(&reference, &simulated(smear, true), Stage::Digitize);

    // The post-correction toggle and the OCR seed.
    assert_ripples_from(&reference, &simulated(NoiseModel::light(), false), Stage::Digitize);
    let reseeded = keys(
        base()
            .with_ocr(OcrMode::Simulated {
                noise: NoiseModel::light(),
                correct: true,
            })
            .with_ocr_seed(0xD0C6),
    );
    assert_ripples_from(&reference, &reseeded, Stage::Digitize);
}

#[test]
fn every_fault_plan_field_moves_the_normalize_key() {
    let reference = keys(base().with_chaos(FaultPlan::new(0.05, 7)));

    // Arming chaos at all moves normalize (Stage I keys stay put).
    assert_ripples_from(&keys(base()), &reference, Stage::Normalize);

    // Rate and seed individually.
    let rate = keys(base().with_chaos(FaultPlan::new(0.06, 7)));
    assert_ripples_from(&reference, &rate, Stage::Normalize);
    let seed = keys(base().with_chaos(FaultPlan::new(0.05, 8)));
    assert_ripples_from(&reference, &seed, Stage::Normalize);

    // The repair budget. Under passthrough it first matters at the
    // normalize stage (the chaos repair ladder); under simulated OCR it
    // also feeds the digitize key — covered by the goldens below.
    let mut more_repairs = FaultPlan::new(0.05, 7);
    more_repairs.repair_attempts += 1;
    let attempts = keys(base().with_chaos(more_repairs));
    assert_ripples_from(&reference, &attempts, Stage::Normalize);

    // An inert plan keys identically to no plan at all.
    assert_eq!(keys(base()), keys(base().with_chaos(FaultPlan::new(0.0, 7))));
}

#[test]
fn repair_attempts_reach_the_digitize_key_under_simulated_ocr() {
    let with_attempts = |attempts| {
        let mut plan = FaultPlan::new(0.05, 7);
        plan.repair_attempts = attempts;
        keys(
            base()
                .with_ocr(OcrMode::Simulated {
                    noise: NoiseModel::light(),
                    correct: true,
                })
                .with_chaos(plan),
        )
    };
    assert_ripples_from(&with_attempts(2), &with_attempts(3), Stage::Digitize);
}

#[test]
fn dictionary_content_moves_only_the_tag_key() {
    let reference = keys(base());
    let mut dict = FailureDictionary::default_bank();
    dict.add_phrase(FaultTag::ALL[0], "entirely novel failure phrase");
    let poisoned = RunSession::with_classifier(base(), Classifier::new(dict)).stage_keys(false);
    assert_ripples_from(&reference, &poisoned, Stage::Tag);
}

#[test]
fn lineage_recording_is_part_of_every_key() {
    let session = RunSession::new(base());
    let untraced = session.stage_keys(false);
    let traced = session.stage_keys(true);
    for stage in Stage::ALL {
        if let (Some(a), Some(b)) = (untraced.for_stage(stage), traced.for_stage(stage)) {
            assert_ne!(a, b, "{stage:?} key must fold the lineage bit");
        }
    }
}

/// Golden fingerprints for one pinned configuration. If this test
/// fails without an intentional key-recipe change, a refactor silently
/// altered cache addressing; if the change IS intentional, bump
/// `disengage::core::artifact::FORMAT_VERSION` and re-pin.
#[test]
fn golden_fingerprints_are_pinned() {
    let passthrough = keys(base());
    let golden_passthrough = [
        (Stage::Corpus, "37f4214efaa298bc"),
        (Stage::Digitize, "540eef2b11c2c9db"),
        (Stage::Normalize, "3ba7523f3ccf2c4b"),
        (Stage::Tag, "d7278b032e90e16c"),
    ];
    for (stage, hex) in golden_passthrough {
        assert_eq!(
            passthrough.for_stage(stage).unwrap().to_hex(),
            hex,
            "passthrough {stage:?} fingerprint drifted"
        );
    }

    let chaos_ocr = keys(
        base()
            .with_ocr(OcrMode::Simulated {
                noise: NoiseModel::light(),
                correct: true,
            })
            .with_ocr_seed(0xD0C5)
            .with_chaos(FaultPlan::new(0.05, 7)),
    );
    let golden_chaos = [
        (Stage::Corpus, "37f4214efaa298bc"),
        (Stage::Digitize, "29f545f648d60fbe"),
        (Stage::Normalize, "b5046a5f536a9d69"),
        (Stage::Tag, "2334a082bbabdadb"),
    ];
    for (stage, hex) in golden_chaos {
        assert_eq!(
            chaos_ocr.for_stage(stage).unwrap().to_hex(),
            hex,
            "chaos+OCR {stage:?} fingerprint drifted"
        );
    }
}
