//! Regression suite for the order-coupled OCR seeding bug.
//!
//! Stage I used to advance one `StdRng` across the whole document
//! batch, so document k's noise depended on the byte lengths of
//! documents 0..k-1 — dropping or editing any earlier document
//! perturbed every later one, and no parallel schedule could reproduce
//! the stream. Seeds now derive per document from
//! `(ocr_seed, doc_index)`; these tests pin that contract.

use disengage::core::pipeline::{digitize_simulated_with, DigitizeConfig};
use disengage::corpus::{CorpusConfig, CorpusGenerator};
use disengage::obs::Collector;
use disengage::ocr::NoiseModel;
use disengage::reports::formats::RawDocument;

fn sample_documents() -> Vec<RawDocument> {
    let corpus = CorpusGenerator::new(CorpusConfig {
        seed: 314,
        scale: 0.01,
    })
    .generate();
    assert!(corpus.documents.len() >= 3, "corpus too small for the test");
    corpus.documents
}

fn digitize_config(base_index: usize) -> DigitizeConfig {
    DigitizeConfig {
        noise: NoiseModel::light(),
        correct: false,
        ocr_seed: 0xD0C5,
        base_index,
        repair_attempts: 1,
        jobs: 1,
    }
}

#[test]
fn doc_k_invariant_to_dropping_earlier_docs() {
    let docs = sample_documents();
    let (full, _) = digitize_simulated_with(digitize_config(0), &docs, &Collector::new());
    // Drop document 0 and re-digitize the tail at its original corpus
    // positions: every surviving document must come out byte-identical.
    let (tail, _) = digitize_simulated_with(digitize_config(1), &docs[1..], &Collector::new());
    assert_eq!(tail.len(), full.len() - 1);
    for (k, (t, f)) in tail.iter().zip(&full[1..]).enumerate() {
        assert_eq!(
            t.text,
            f.text,
            "doc {} changed when doc 0 was dropped",
            k + 1
        );
    }
}

#[test]
fn doc_k_invariant_to_content_of_earlier_docs() {
    let docs = sample_documents();
    let (full, _) = digitize_simulated_with(digitize_config(0), &docs, &Collector::new());
    // Rewrite document 0 (different byte length, different content);
    // with per-document seeds, documents 1.. must not notice.
    let mut edited = docs.clone();
    edited[0] = RawDocument::new(
        docs[0].manufacturer,
        docs[0].report_year,
        docs[0].kind,
        "a completely different, much shorter body",
    );
    let (perturbed, _) = digitize_simulated_with(digitize_config(0), &edited, &Collector::new());
    for (k, (p, f)) in perturbed[1..].iter().zip(&full[1..]).enumerate() {
        assert_eq!(
            p.text,
            f.text,
            "doc {} changed when doc 0's content changed",
            k + 1
        );
    }
}

#[test]
fn same_index_same_seed_regardless_of_neighbors() {
    let docs = sample_documents();
    // Digitizing one document alone at position k equals digitizing it
    // inside the full batch: the seed is a pure function of
    // (ocr_seed, index).
    let (full, _) = digitize_simulated_with(digitize_config(0), &docs, &Collector::new());
    let alone = std::slice::from_ref(&docs[2]);
    let (solo, _) = digitize_simulated_with(digitize_config(2), alone, &Collector::new());
    assert_eq!(solo[0].text, full[2].text);
}

#[test]
fn empty_batch_reports_zero_means_not_nan() {
    let obs = Collector::new();
    let (out, stats) = digitize_simulated_with(digitize_config(0), &[], &obs);
    assert!(out.is_empty());
    assert_eq!(stats.documents, 0);
    assert_eq!(stats.mean_cer, 0.0);
    assert_eq!(stats.mean_confidence, 0.0);
    assert!(!stats.mean_cer.is_nan() && !stats.mean_confidence.is_nan());
    assert_eq!(obs.report().gauge("ocr.mean_cer"), Some(0.0));
}

#[test]
fn correction_path_is_also_order_decoupled() {
    let docs = sample_documents();
    let config = DigitizeConfig {
        correct: true,
        ..digitize_config(0)
    };
    let (full, _) = digitize_simulated_with(config, &docs, &Collector::new());
    let tail_config = DigitizeConfig {
        correct: true,
        ..digitize_config(1)
    };
    let (tail, _) = digitize_simulated_with(tail_config, &docs[1..], &Collector::new());
    for (t, f) in tail.iter().zip(&full[1..]) {
        assert_eq!(t.text, f.text);
    }
}
