//! Randomized property tests across crate boundaries.
//!
//! Formerly `proptest` strategies; now seeded loops over the in-tree
//! PRNG so the suite runs with zero external dependencies. Each test
//! draws a few hundred cases from a fixed seed, so failures are exactly
//! reproducible.

use disengage::corpus::{CorpusConfig, CorpusGenerator};
use disengage::dataframe::csv;
use disengage::nlp::{Classifier, FaultTag};
use disengage::ocr::correct::edit_distance;
use disengage::ocr::{engine::OcrEngine, raster::rasterize};
use disengage::reports::formats::disengagement::format_for;
use disengage::reports::record::CarId;
use disengage::reports::{Date, DisengagementRecord, Manufacturer, Modality, RoadType, Weather};
use disengage::stats::quantile::{quantile, QuantileMethod};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn gen_date(rng: &mut StdRng) -> Date {
    Date::new(
        rng.gen_range(2014..=2016u16),
        rng.gen_range(1..=12u8),
        rng.gen_range(1..=28u8),
    )
    .expect("day <= 28 valid")
}

fn gen_word(rng: &mut StdRng, min: usize, max: usize) -> String {
    let len = rng.gen_range(min..=max);
    (0..len)
        .map(|_| (b'a' + rng.gen_range(0..26u8)) as char)
        .collect()
}

fn gen_description(rng: &mut StdRng) -> String {
    const CANNED: [&str; 5] = [
        "software module froze",
        "the AV didn't see the lead vehicle",
        "watchdog error",
        "planner failed to anticipate the cyclist",
        "gps signal lost under the overpass",
    ];
    if rng.gen_bool(0.5) {
        CANNED[rng.gen_range(0..CANNED.len())].to_owned()
    } else {
        let words = rng.gen_range(2..=7usize);
        (0..words)
            .map(|_| gen_word(rng, 3, 12))
            .collect::<Vec<_>>()
            .join(" ")
    }
}

fn gen_record(rng: &mut StdRng) -> DisengagementRecord {
    let modality = match rng.gen_range(0..3u8) {
        0 => Modality::Automatic,
        1 => Modality::Manual,
        _ => Modality::Planned,
    };
    let reaction_time_s = if rng.gen_bool(0.5) {
        Some((rng.gen_range(0.01..30.0f64) * 100.0).round() / 100.0)
    } else {
        None
    };
    let road_type = if rng.gen_bool(0.5) {
        Some(match rng.gen_range(0..3u8) {
            0 => RoadType::Street,
            1 => RoadType::Highway,
            _ => RoadType::Freeway,
        })
    } else {
        None
    };
    let weather = if rng.gen_bool(0.5) {
        Some(if rng.gen_bool(0.5) {
            Weather::Clear
        } else {
            Weather::Rain
        })
    } else {
        None
    };
    DisengagementRecord {
        manufacturer: Manufacturer::MercedesBenz,
        car: CarId::Known(rng.gen_range(0..8u32)),
        date: gen_date(rng),
        modality,
        road_type,
        weather,
        reaction_time_s,
        description: gen_description(rng),
    }
}

/// The pipe-table format (used by Mercedes-Benz and the sparse
/// reporters) round-trips arbitrary records exactly.
#[test]
fn benz_format_round_trips() {
    let mut rng = StdRng::seed_from_u64(0xB312);
    let format = format_for(Manufacturer::MercedesBenz);
    for _ in 0..256 {
        let record = gen_record(&mut rng);
        let line = format.render(&record);
        let parsed = format.parse_line(&line, 1).expect("round trip parses");
        assert_eq!(parsed, record);
    }
}

/// Clean rasterize→recognize is the identity over the covered
/// character set.
#[test]
fn ocr_identity_on_clean_pages() {
    const COVERED: &[u8] = b"abcdefghijklmnopqrstuvwxyz\
                             ABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789,:;/#()%=-";
    let mut rng = StdRng::seed_from_u64(0x0C12);
    let engine = OcrEngine::new();
    for _ in 0..64 {
        let words = rng.gen_range(1..6usize);
        let text = (0..words)
            .map(|_| {
                let len = rng.gen_range(1..=12usize);
                (0..len)
                    .map(|_| COVERED[rng.gen_range(0..COVERED.len())] as char)
                    .collect::<String>()
            })
            .collect::<Vec<_>>()
            .join(" ");
        let out = engine.recognize(&rasterize(&text));
        assert_eq!(out.text, text);
    }
}

/// Edit distance is a metric: symmetric, zero iff equal, triangle
/// inequality.
#[test]
fn edit_distance_is_a_metric() {
    let mut rng = StdRng::seed_from_u64(0xED17);
    for _ in 0..512 {
        let a = gen_word(&mut rng, 0, 8);
        let b = gen_word(&mut rng, 0, 8);
        let c = gen_word(&mut rng, 0, 8);
        assert_eq!(edit_distance(&a, &b), edit_distance(&b, &a));
        assert_eq!(edit_distance(&a, &a), 0);
        if edit_distance(&a, &b) == 0 {
            assert_eq!(a, b);
        }
        assert!(edit_distance(&a, &c) <= edit_distance(&a, &b) + edit_distance(&b, &c));
    }
}

/// The classifier is total and consistent: every description gets a
/// tag whose category matches the ontology.
#[test]
fn classifier_total_and_consistent() {
    let mut rng = StdRng::seed_from_u64(0xC1A5);
    let cl = Classifier::with_default_dictionary();
    for case in 0..256 {
        let desc = match case % 4 {
            // Mix printable-ASCII noise with word-ish text, as the
            // proptest `.{0,80}` strategy did.
            0 => {
                let len = rng.gen_range(0..80usize);
                (0..len)
                    .map(|_| (b' ' + rng.gen_range(0..95u8)) as char)
                    .collect()
            }
            _ => gen_description(&mut rng),
        };
        let a = cl.classify(&desc);
        assert_eq!(a.category, a.tag.category());
        if a.tag == FaultTag::UnknownT {
            assert_eq!(a.score, 0.0);
        } else {
            assert!(a.score > 0.0);
        }
    }
}

/// Quantiles are monotone in q and bounded by min/max for any sample.
#[test]
fn quantiles_monotone_and_bounded() {
    let mut rng = StdRng::seed_from_u64(0x0A41);
    for _ in 0..128 {
        let n = rng.gen_range(1..50usize);
        let xs: Vec<f64> = (0..n)
            .map(|_| (rng.gen_range(-1e6..1e6f64) * 100.0).round() / 100.0)
            .collect();
        let lo = quantile(&xs, 0.0, QuantileMethod::Linear).expect("q0");
        let hi = quantile(&xs, 1.0, QuantileMethod::Linear).expect("q1");
        let mut prev = lo;
        for i in 0..=10 {
            let q = i as f64 / 10.0;
            let v = quantile(&xs, q, QuantileMethod::Linear).expect("q");
            assert!(v >= prev - 1e-9);
            assert!(v >= lo - 1e-9 && v <= hi + 1e-9);
            prev = v;
        }
    }
}

/// CSV round-trips any frame of floats (dates of the analysis
/// artifacts ride through as strings, floats as floats).
#[test]
fn csv_round_trips_numeric_frames() {
    let mut rng = StdRng::seed_from_u64(0xC5F7);
    for _ in 0..64 {
        let n = rng.gen_range(1..40usize);
        let xs: Vec<f64> = (0..n)
            .map(|_| (rng.gen_range(-1e9..1e9f64) * 1000.0).round() / 1000.0)
            .collect();
        let df = disengage::dataframe::DataFrame::new(vec![(
            "x",
            disengage::dataframe::Column::from_f64s(&xs),
        )])
        .expect("frame");
        let text = csv::write_str(&df);
        let back = csv::read_str(&text).expect("parse back");
        assert_eq!(back.n_rows(), xs.len());
        for (i, &want) in xs.iter().enumerate() {
            let got = back.get(i, "x").expect("cell").as_f64().expect("float");
            assert!((got - want).abs() < 1e-9, "row {i}: {got} vs {want}");
        }
    }
}

/// Corpus scaling: any scale in (0, 1] produces counts proportional
/// to the calibration, and every record validates.
#[test]
fn corpus_scales_proportionally() {
    let mut rng = StdRng::seed_from_u64(0x5CA1);
    for _ in 0..24 {
        let seed = rng.gen_range(0..1000u64);
        let scale = rng.gen_range(0.02..0.3f64);
        let corpus = CorpusGenerator::new(CorpusConfig { seed, scale }).generate();
        let n = corpus.truth.disengagements().len() as f64;
        let expected = 5328.0 * scale;
        // Rounding per (manufacturer, year) bounds the deviation.
        assert!((n - expected).abs() < 40.0, "n = {n} expected {expected}");
        for r in corpus.truth.disengagements() {
            assert!(r.validate().is_ok());
        }
        assert_eq!(
            corpus.intended_tags.len(),
            corpus.truth.disengagements().len()
        );
    }
}
