//! Property-based tests across crate boundaries.

use disengage::corpus::{CorpusConfig, CorpusGenerator};
use disengage::dataframe::csv;
use disengage::nlp::{Classifier, FaultTag};
use disengage::ocr::correct::edit_distance;
use disengage::ocr::{engine::OcrEngine, raster::rasterize};
use disengage::reports::formats::disengagement::format_for;
use disengage::reports::record::CarId;
use disengage::reports::{Date, DisengagementRecord, Manufacturer, Modality, RoadType, Weather};
use disengage::stats::quantile::{quantile, QuantileMethod};
use proptest::prelude::*;

fn arb_date() -> impl Strategy<Value = Date> {
    (2014u16..=2016, 1u8..=12, 1u8..=28)
        .prop_map(|(y, m, d)| Date::new(y, m, d).expect("day <= 28 valid"))
}

fn arb_description() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("software module froze".to_owned()),
        Just("the AV didn't see the lead vehicle".to_owned()),
        Just("watchdog error".to_owned()),
        Just("planner failed to anticipate the cyclist".to_owned()),
        Just("gps signal lost under the overpass".to_owned()),
        "[a-z]{3,12}( [a-z]{3,12}){1,6}",
    ]
}

fn arb_record() -> impl Strategy<Value = DisengagementRecord> {
    (
        arb_date(),
        0u32..8,
        prop_oneof![
            Just(Modality::Automatic),
            Just(Modality::Manual),
            Just(Modality::Planned)
        ],
        proptest::option::of(0.01f64..30.0),
        arb_description(),
        proptest::option::of(prop_oneof![
            Just(RoadType::Street),
            Just(RoadType::Highway),
            Just(RoadType::Freeway)
        ]),
        proptest::option::of(prop_oneof![Just(Weather::Clear), Just(Weather::Rain)]),
    )
        .prop_map(|(date, car, modality, rt, description, road_type, weather)| {
            DisengagementRecord {
                manufacturer: Manufacturer::MercedesBenz,
                car: CarId::Known(car),
                date,
                modality,
                road_type,
                weather,
                reaction_time_s: rt.map(|t| (t * 100.0).round() / 100.0),
                description,
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The pipe-table format (used by Mercedes-Benz and the sparse
    /// reporters) round-trips arbitrary records exactly.
    #[test]
    fn benz_format_round_trips(record in arb_record()) {
        let format = format_for(Manufacturer::MercedesBenz);
        let line = format.render(&record);
        let parsed = format.parse_line(&line, 1).expect("round trip parses");
        prop_assert_eq!(parsed, record);
    }

    /// Clean rasterize→recognize is the identity over the covered
    /// character set.
    #[test]
    fn ocr_identity_on_clean_pages(words in proptest::collection::vec("[a-zA-Z0-9,:;/#()%=-]{1,12}", 1..6)) {
        let text = words.join(" ");
        let out = OcrEngine::new().recognize(&rasterize(&text));
        prop_assert_eq!(out.text, text);
    }

    /// Edit distance is a metric: symmetric, zero iff equal, triangle
    /// inequality.
    #[test]
    fn edit_distance_is_a_metric(a in "[a-z]{0,8}", b in "[a-z]{0,8}", c in "[a-z]{0,8}") {
        prop_assert_eq!(edit_distance(&a, &b), edit_distance(&b, &a));
        prop_assert_eq!(edit_distance(&a, &a), 0);
        if edit_distance(&a, &b) == 0 {
            prop_assert_eq!(a.clone(), b.clone());
        }
        prop_assert!(edit_distance(&a, &c) <= edit_distance(&a, &b) + edit_distance(&b, &c));
    }

    /// The classifier is total and consistent: every description gets a
    /// tag whose category matches the ontology.
    #[test]
    fn classifier_total_and_consistent(desc in ".{0,80}") {
        let cl = Classifier::with_default_dictionary();
        let a = cl.classify(&desc);
        prop_assert_eq!(a.category, a.tag.category());
        if a.tag == FaultTag::UnknownT {
            prop_assert_eq!(a.score, 0.0);
        } else {
            prop_assert!(a.score > 0.0);
        }
    }

    /// Quantiles are monotone in q and bounded by min/max for any sample.
    #[test]
    fn quantiles_monotone_and_bounded(mut xs in proptest::collection::vec(-1e6f64..1e6, 1..50)) {
        xs.iter_mut().for_each(|x| *x = (*x * 100.0).round() / 100.0);
        let lo = quantile(&xs, 0.0, QuantileMethod::Linear).expect("q0");
        let hi = quantile(&xs, 1.0, QuantileMethod::Linear).expect("q1");
        let mut prev = lo;
        for i in 0..=10 {
            let q = i as f64 / 10.0;
            let v = quantile(&xs, q, QuantileMethod::Linear).expect("q");
            prop_assert!(v >= prev - 1e-9);
            prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9);
            prev = v;
        }
    }

    /// CSV round-trips any frame of floats (dates of the analysis
    /// artifacts ride through as strings, floats as floats).
    #[test]
    fn csv_round_trips_numeric_frames(xs in proptest::collection::vec(-1e9f64..1e9, 1..40)) {
        let xs: Vec<f64> = xs.into_iter().map(|x| (x * 1000.0).round() / 1000.0).collect();
        let df = disengage::dataframe::DataFrame::new(vec![(
            "x",
            disengage::dataframe::Column::from_f64s(&xs),
        )]).expect("frame");
        let text = csv::write_str(&df);
        let back = csv::read_str(&text).expect("parse back");
        prop_assert_eq!(back.n_rows(), xs.len());
        for (i, &want) in xs.iter().enumerate() {
            let got = back.get(i, "x").expect("cell").as_f64().expect("float");
            prop_assert!((got - want).abs() < 1e-9, "row {}: {} vs {}", i, got, want);
        }
    }

    /// Corpus scaling: any scale in (0, 1] produces counts proportional
    /// to the calibration, and every record validates.
    #[test]
    fn corpus_scales_proportionally(seed in 0u64..1000, scale in 0.02f64..0.3) {
        let corpus = CorpusGenerator::new(CorpusConfig { seed, scale }).generate();
        let n = corpus.truth.disengagements().len() as f64;
        let expected = 5328.0 * scale;
        // Rounding per (manufacturer, year) bounds the deviation.
        prop_assert!((n - expected).abs() < 40.0, "n = {} expected {}", n, expected);
        for r in corpus.truth.disengagements() {
            prop_assert!(r.validate().is_ok());
        }
        prop_assert_eq!(corpus.intended_tags.len(), corpus.truth.disengagements().len());
    }
}
