//! End-to-end telemetry integration: one pipeline run must produce a
//! span tree covering all four stages, counters that reconcile across
//! stage boundaries, and a JSON document that parses back intact.

use disengage::core::pipeline::{OcrMode, Pipeline, PipelineConfig};
use disengage::core::telemetry::reconcile;
use disengage::corpus::CorpusConfig;
use disengage::obs::json::Value;
use disengage::obs::Collector;
use disengage::ocr::NoiseModel;

fn config(scale: f64) -> PipelineConfig {
    PipelineConfig {
        corpus: CorpusConfig { seed: 0x5EED, scale },
        ..Default::default()
    }
}

#[test]
fn span_tree_covers_all_four_stages() {
    let obs = Collector::new();
    let o = Pipeline::new(config(0.05)).run_with(&obs).unwrap();
    let t = &o.telemetry;
    let root = t.find_span("pipeline").expect("root span");
    assert!(root.closed, "root span must close before the snapshot");
    for stage in ["stage_i_corpus", "stage_i_ocr", "stage_ii_parse", "stage_iii_tag"] {
        let s = t.find_span(stage).unwrap_or_else(|| panic!("missing {stage}"));
        assert!(s.closed, "{stage} still open");
        assert!(s.duration_s >= 0.0);
    }
    // The root's children are the per-cell shard spans plus the merge
    // fold; the four stage spans nest inside each shard, and the tree
    // renders all of them.
    assert_eq!(root.children.len(), 18 + 1);
    let shard = &root.children[0];
    assert_eq!(shard.name, "shard");
    assert_eq!(shard.children.len(), 4);
    assert_eq!(root.children[18].name, "merge");
    let tree = t.render_tree();
    assert!(tree.contains("stage_iii_tag"), "{tree}");
}

#[test]
fn counters_reconcile_on_default_seed() {
    let obs = Collector::new();
    let o = Pipeline::new(config(0.1)).run_with(&obs).unwrap();
    let t = &o.telemetry;

    // Records in = parsed + failed.
    assert_eq!(
        t.counter("parse.dis.lines"),
        t.counter("parse.dis.parsed") + t.counter("parse.dis.failed")
    );
    // Every parsed record got exactly one verdict, and the per-tag
    // counters partition them.
    assert_eq!(t.counter("nlp.tagged"), t.counter("parse.dis.parsed"));
    assert_eq!(t.counter("nlp.tagged"), t.counter_prefix_sum("nlp.tag."));
    // Passthrough digitization is lossless end to end.
    assert_eq!(
        t.counter("corpus.disengagements"),
        o.corpus.truth.disengagements().len() as u64
    );
    assert_eq!(t.counter("corpus.disengagements"), t.counter("parse.dis.lines"));
    // Per-manufacturer parse counters sum to the total.
    assert_eq!(
        t.counter_prefix_sum("parse.dis.parsed."),
        t.counter("parse.dis.parsed")
    );
    // And the checker agrees.
    assert_eq!(reconcile(t), Vec::<String>::new());

    // Distribution + rate metrics are populated.
    let margins = t.histogram("nlp.vote_margin").expect("vote margins recorded");
    assert_eq!(margins.count, t.counter("nlp.tagged"));
    let unknown_rate = t.gauge("nlp.unknown_t_rate").expect("unknown rate set");
    assert!((0.0..=1.0).contains(&unknown_rate));
    assert_eq!(
        t.counter("nlp.unknown_t"),
        t.counter("nlp.tag.unknown_t"),
        "Unknown-T counted consistently"
    );
}

#[test]
fn simulated_ocr_records_quality_metrics() {
    let obs = Collector::new();
    let cfg = PipelineConfig {
        ocr: OcrMode::Simulated {
            noise: NoiseModel::heavy(),
            correct: true,
        },
        ..config(0.02)
    };
    let o = Pipeline::new(cfg).run_with(&obs).unwrap();
    let t = &o.telemetry;
    assert_eq!(t.gauge("pipeline.passthrough"), Some(0.0));
    assert_eq!(t.counter("ocr.documents"), o.corpus.documents.len() as u64);
    let cer = t.histogram("ocr.cer").expect("per-document CER recorded");
    assert_eq!(cer.count, t.counter("ocr.documents"));
    let stats = o.ocr.expect("simulated mode reports stats");
    assert!((cer.mean - stats.mean_cer).abs() < 1e-9);
    // The default noise model produces errors; correction must fire.
    assert!(t.counter("ocr.corrections") > 0, "no correction hits recorded");
    // Noise can drop lines, but the identities reconcile() checks in
    // simulated mode must still hold.
    assert_eq!(reconcile(t), Vec::<String>::new());
}

#[test]
fn telemetry_json_round_trips() {
    let obs = Collector::new();
    let o = Pipeline::new(config(0.02)).run_with(&obs).unwrap();
    let text = o.telemetry.to_json();
    let v = Value::parse(&text).expect("telemetry JSON parses back");
    assert_eq!(v, o.telemetry.to_value());
    // Machine consumers navigate these paths (repro_metrics.json).
    let spans = v.get("spans").unwrap().as_arr().unwrap();
    assert_eq!(spans[0].get("name").unwrap().as_str(), Some("pipeline"));
    let dur = spans[0].get("duration_s").unwrap().as_f64().unwrap();
    assert!(dur >= 0.0);
    let counters = v.get("counters").unwrap();
    assert_eq!(
        counters.get("corpus.disengagements").unwrap().as_f64(),
        Some(o.telemetry.counter("corpus.disengagements") as f64)
    );
}
