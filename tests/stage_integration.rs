//! Cross-stage integration: STPA overlay over live tagging results,
//! dictionary-learning tooling against the corpus, and dataframe
//! interchange of analysis artifacts.

use disengage::core::pipeline::{Pipeline, PipelineConfig};
use disengage::core::tables;
use disengage::corpus::CorpusConfig;
use disengage::dataframe::csv;
use disengage::nlp::ngram::top_ngrams;
use disengage::nlp::tfidf::TfIdf;
use disengage::nlp::FaultTag;
use disengage::stpa::overlay::overlay_for;
use disengage::stpa::{Component, ControlLoop, LoopId};

fn outcome() -> disengage::core::PipelineOutcome {
    Pipeline::new(PipelineConfig {
        corpus: CorpusConfig {
            seed: 88,
            scale: 0.06,
        },
        ..Default::default()
    })
    .run()
    .expect("pipeline runs")
}

#[test]
fn every_tagged_disengagement_localizes_on_the_control_structure() {
    let o = outcome();
    let mut unknown = 0usize;
    for t in &o.tagged {
        let overlay = overlay_for(t.assignment.tag);
        if t.assignment.tag == FaultTag::UnknownT {
            unknown += 1;
            assert!(overlay.components.is_empty());
        } else {
            assert!(
                !overlay.components.is_empty(),
                "{} localizes nowhere",
                t.assignment.tag
            );
            assert!(!overlay.loops.is_empty());
        }
    }
    // Unknowns exist (Tesla) but are a small minority overall.
    assert!(unknown > 0);
    assert!(unknown < o.tagged.len() / 5);
}

#[test]
fn perception_faults_dominate_cl1_and_cl2() {
    // The paper's conclusion: the perception/planning loops carry the
    // bulk of the failures. Count tags touching each loop.
    let o = outcome();
    let mut per_loop = std::collections::BTreeMap::new();
    for t in &o.tagged {
        for l in overlay_for(t.assignment.tag).loops {
            *per_loop.entry(l).or_insert(0usize) += 1;
        }
    }
    let cl1 = per_loop.get(&LoopId::Cl1).copied().unwrap_or(0);
    let cl3 = per_loop.get(&LoopId::Cl3).copied().unwrap_or(0);
    assert!(cl1 > 0);
    // CL-1 (full environment loop) sees at least as many implicated
    // faults as the driver-supervision loop.
    assert!(cl1 >= cl3, "cl1 = {cl1}, cl3 = {cl3}");
}

#[test]
fn control_loops_consistent_with_structure() {
    // Every component on a standard loop participates in at least one
    // edge of the standard structure.
    let s = disengage::stpa::ControlStructure::standard();
    for l in ControlLoop::standard() {
        for &c in &l.components {
            let touched = !s.edges_from(c).is_empty() || !s.edges_into(c).is_empty();
            assert!(touched, "{c} is on {} but touches no edges", l.id);
        }
    }
    // The planner participates in all three loops and is the component
    // the paper's case studies implicate.
    assert_eq!(
        ControlLoop::loops_containing(Component::PlannerController).len(),
        3
    );
}

#[test]
fn dictionary_mining_recovers_known_phrases() {
    // Run the dictionary-construction tooling over the generated corpus:
    // the top bigrams must include phrases the shipped dictionary has.
    let o = outcome();
    let descriptions: Vec<&str> = o
        .database
        .disengagements()
        .iter()
        .map(|r| r.description.as_str())
        .collect();
    let top = top_ngrams(descriptions.iter().copied(), 2, 5, 40);
    assert!(!top.is_empty());
    let joined: Vec<&str> = top.iter().map(|n| n.ngram.as_str()).collect();
    // Signature phrases from Table II / the template bank.
    assert!(
        joined.iter().any(|g| g.contains("perception missed")
            || g.contains("behavior prediction")
            || g.contains("software module")
            || g.contains("watchdog")
            || g.contains("road user")),
        "top bigrams: {joined:?}"
    );
}

#[test]
fn tfidf_separates_fault_classes() {
    // Aggregate descriptions per intended tag into one document per
    // class; tf-idf should rank each class's own vocabulary on top.
    let o = outcome();
    let mut per_tag: std::collections::BTreeMap<FaultTag, String> = Default::default();
    for (r, &tag) in o
        .corpus
        .truth
        .disengagements()
        .iter()
        .zip(&o.corpus.intended_tags)
    {
        per_tag.entry(tag).or_default().push_str(&r.description);
        per_tag.entry(tag).or_default().push(' ');
    }
    let tags: Vec<FaultTag> = per_tag.keys().copied().collect();
    let docs: Vec<&str> = per_tag.values().map(String::as_str).collect();
    let model = TfIdf::fit(docs.iter().copied());
    let idx = tags
        .iter()
        .position(|&t| t == FaultTag::HangCrash)
        .expect("hang/crash present");
    let top = model.top_terms(idx, 5);
    assert!(
        top.iter().any(|t| t.term == "watchdog" || t.term == "reboot" || t.term == "rebooted"),
        "hang/crash top terms: {top:?}"
    );
}

#[test]
fn analysis_tables_survive_csv_interchange() {
    let o = outcome();
    for (name, table) in [
        ("table1", tables::table1(&o.database).expect("t1")),
        ("table4", tables::table4(&o.tagged).expect("t4")),
        ("table5", tables::table5(&o.database).expect("t5")),
        ("table6", tables::table6(&o.database).expect("t6")),
        ("table7", tables::table7(&o.database).expect("t7")),
    ] {
        let text = csv::write_str(&table);
        let back = csv::read_str(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(back.n_rows(), table.n_rows(), "{name} rows");
        assert_eq!(back.n_cols(), table.n_cols(), "{name} cols");
    }
}
