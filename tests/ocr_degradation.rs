//! Failure injection: OCR noise sweeps and malformed-document handling.

use disengage::core::pipeline::{OcrMode, Pipeline, PipelineConfig};
use disengage::corpus::CorpusConfig;
use disengage::ocr::NoiseModel;
use disengage::reports::formats::{DocumentKind, RawDocument};
use disengage::reports::normalize::normalize_document;
use disengage::reports::{Manufacturer, ReportYear};

fn run(noise: NoiseModel, correct: bool) -> disengage::core::PipelineOutcome {
    Pipeline::new(PipelineConfig {
        corpus: CorpusConfig {
            seed: 500,
            scale: 0.015,
        },
        ocr: OcrMode::Simulated { noise, correct },
        ocr_seed: 12,
    })
    .run()
    .expect("pipeline runs")
}

#[test]
fn cer_monotone_in_noise() {
    let clean = run(NoiseModel::clean(), false);
    let light = run(NoiseModel::light(), false);
    let heavy = run(NoiseModel::heavy(), false);
    let cer = |o: &disengage::core::PipelineOutcome| o.ocr.expect("stats").mean_cer;
    assert!(cer(&clean) < 1e-9, "clean cer = {}", cer(&clean));
    assert!(cer(&light) > cer(&clean));
    assert!(cer(&heavy) > cer(&light));
}

#[test]
fn recovery_monotone_in_noise() {
    let clean = run(NoiseModel::clean(), false);
    let light = run(NoiseModel::light(), false);
    let heavy = run(NoiseModel::heavy(), false);
    assert!((clean.recovery_rate() - 1.0).abs() < 1e-9);
    assert!(light.recovery_rate() >= heavy.recovery_rate());
    assert!(heavy.recovery_rate() > 0.1, "heavy noise destroyed everything");
    // The manual-review queue grows with noise.
    assert!(heavy.parse_failures.len() > light.parse_failures.len());
}

#[test]
fn confidence_tracks_noise() {
    let light = run(NoiseModel::light(), false);
    let heavy = run(NoiseModel::heavy(), false);
    let conf = |o: &disengage::core::PipelineOutcome| o.ocr.expect("stats").mean_confidence;
    assert!(conf(&light) > conf(&heavy));
    assert!(conf(&heavy) > 0.5);
}

#[test]
fn recovered_records_are_valid_even_under_noise() {
    let heavy = run(NoiseModel::heavy(), true);
    for r in heavy.database.disengagements() {
        r.validate().expect("recovered record validates");
    }
    for a in heavy.database.accidents() {
        a.validate().expect("recovered accident validates");
    }
    for m in heavy.database.mileage() {
        m.validate().expect("recovered mileage validates");
    }
}

#[test]
fn wholly_garbled_documents_become_failures_not_panics() {
    let garbled = RawDocument::new(
        Manufacturer::Waymo,
        ReportYear::R2016,
        DocumentKind::Disengagements,
        "@@@@ ##### !!!!\nnot a log line at all\n",
    );
    let n = normalize_document(&garbled);
    assert_eq!(n.disengagements.len(), 0);
    assert_eq!(n.failures.len(), 2);
    assert_eq!(n.yield_rate(), 0.0);

    let garbled_accident = RawDocument::new(
        Manufacturer::Waymo,
        ReportYear::R2016,
        DocumentKind::Accident,
        "smudged beyond recognition",
    );
    let n = normalize_document(&garbled_accident);
    assert!(n.accidents.is_empty());
    assert_eq!(n.failures.len(), 1);
}

#[test]
fn empty_document_yields_nothing() {
    let empty = RawDocument::new(
        Manufacturer::Tesla,
        ReportYear::R2016,
        DocumentKind::Disengagements,
        "",
    );
    let n = normalize_document(&empty);
    assert_eq!(n.record_count(), 0);
    assert!(n.failures.is_empty());
    assert_eq!(n.yield_rate(), 1.0);
}
