//! Calibration: the full-scale pipeline must reproduce the paper's
//! published aggregates — Table I cell counts, Table IV category mixes,
//! Table V modality mixes, Table VI accident attribution, the Fig. 8
//! correlation, the reaction-time findings, and the headline claims.
//!
//! These are *shape* assertions with tolerances, *exact* where the
//! corpus is calibrated by construction (counts).

use disengage::core::pipeline::{Pipeline, PipelineConfig};
use disengage::core::{figures, questions};
use disengage::reports::{Manufacturer, Modality};
use std::sync::OnceLock;

fn outcome() -> &'static disengage::core::PipelineOutcome {
    static OUTCOME: OnceLock<disengage::core::PipelineOutcome> = OnceLock::new();
    OUTCOME.get_or_init(|| {
        Pipeline::new(PipelineConfig::default())
            .run()
            .expect("full-scale pipeline runs")
    })
}

#[test]
fn headline_totals_match_the_paper_exactly() {
    let o = outcome();
    assert_eq!(o.database.disengagements().len(), 5328);
    assert_eq!(o.database.accidents().len(), 42);
    let miles = o.database.total_miles();
    assert!(
        (miles - 1_116_605.0).abs() / 1_116_605.0 < 0.005,
        "miles = {miles}"
    );
}

#[test]
fn table1_counts_match_per_manufacturer() {
    let o = outcome();
    let db = &o.database;
    // (manufacturer, total disengagements, total accidents, ~miles)
    let expected = [
        (Manufacturer::MercedesBenz, 1360, 0, 2412.5),
        (Manufacturer::Bosch, 2067, 0, 1918.1),
        (Manufacturer::Delphi, 572, 1, 19751.0),
        (Manufacturer::GmCruise, 284, 14, 10015.2),
        (Manufacturer::Nissan, 135, 1, 5584.4),
        (Manufacturer::Tesla, 182, 0, 550.0),
        (Manufacturer::Volkswagen, 260, 0, 14946.1),
        (Manufacturer::Waymo, 464, 25, 1_060_200.0),
    ];
    for (m, dis, acc, miles) in expected {
        assert_eq!(db.disengagements_for(m).len(), dis, "{m} disengagements");
        assert_eq!(db.accidents_for(m).len(), acc, "{m} accidents");
        let got = db.miles_for(m);
        assert!(
            (got - miles).abs() / miles < 0.01,
            "{m} miles {got} vs {miles}"
        );
    }
}

#[test]
fn table4_category_mix_matches_paper_rows() {
    let o = outcome();
    let q2 = questions::q2_causes(&o.tagged);
    // Paper Table IV rows (planner%, perception%, system%, unknown%).
    let expected = [
        (Manufacturer::Delphi, 37.59, 50.17, 12.24, 0.0),
        (Manufacturer::Nissan, 36.3, 49.63, 14.07, 0.0),
        (Manufacturer::Tesla, 0.0, 0.0, 1.65, 98.35),
        (Manufacturer::Volkswagen, 0.0, 3.08, 83.08, 13.85),
        (Manufacturer::Waymo, 10.13, 53.45, 36.42, 0.0),
    ];
    for (m, planner, perception, system, unknown) in expected {
        let s = &q2.by_manufacturer[&m];
        let tol = 6.0; // percentage points (sampling + classifier noise)
        assert!(
            (s.planner * 100.0 - planner).abs() < tol,
            "{m} planner {:.1} vs {planner}",
            s.planner * 100.0
        );
        assert!(
            (s.perception * 100.0 - perception).abs() < tol,
            "{m} perception {:.1} vs {perception}",
            s.perception * 100.0
        );
        assert!(
            (s.system * 100.0 - system).abs() < tol,
            "{m} system {:.1} vs {system}",
            s.system * 100.0
        );
        assert!(
            (s.unknown * 100.0 - unknown).abs() < tol,
            "{m} unknown {:.1} vs {unknown}",
            s.unknown * 100.0
        );
    }
    // The global ML share: the paper's 64%.
    let ml = q2.global_excluding_tesla.ml_total() * 100.0;
    assert!((58.0..=70.0).contains(&ml), "ML share = {ml:.1}%");
}

#[test]
fn table5_modality_mix_matches_paper_rows() {
    let o = outcome();
    let db = &o.database;
    // (manufacturer, automatic%, manual%, planned%)
    let expected = [
        (Manufacturer::MercedesBenz, 47.11, 52.89, 0.0),
        (Manufacturer::Bosch, 0.0, 0.0, 100.0),
        (Manufacturer::GmCruise, 0.0, 0.0, 100.0),
        (Manufacturer::Nissan, 54.2, 45.8, 0.0),
        (Manufacturer::Tesla, 98.35, 1.65, 0.0),
        (Manufacturer::Volkswagen, 100.0, 0.0, 0.0),
        (Manufacturer::Waymo, 50.32, 49.67, 0.0),
    ];
    for (m, auto, manual, planned) in expected {
        let records = db.disengagements_for(m);
        let n = records.len() as f64;
        let pct = |mo: Modality| records.iter().filter(|r| r.modality == mo).count() as f64 / n * 100.0;
        let tol = 6.0;
        assert!((pct(Modality::Automatic) - auto).abs() < tol, "{m} auto");
        assert!((pct(Modality::Manual) - manual).abs() < tol, "{m} manual");
        assert!((pct(Modality::Planned) - planned).abs() < tol, "{m} planned");
    }
}

#[test]
fn table6_dpa_matches_paper() {
    let o = outcome();
    let db = &o.database;
    // Paper Table VI: Waymo DPA 18, Delphi 572, Nissan 135, GMCruise 20.
    let expected = [
        (Manufacturer::Waymo, 18.0, 3.0),
        (Manufacturer::Delphi, 572.0, 1.0),
        (Manufacturer::Nissan, 135.0, 1.0),
        (Manufacturer::GmCruise, 20.0, 2.0),
    ];
    for (m, dpa, tol) in expected {
        let got = db.dpa(m).expect("accidents reported");
        assert!(
            (got - dpa).abs() <= tol,
            "{m} DPA {got} vs paper {dpa}"
        );
    }
}

#[test]
fn fig8_correlation_matches_paper_shape() {
    let o = outcome();
    let f = figures::fig8(&o.database).expect("fig8");
    // Paper: r = -0.87 at p = 7e-56 over the pooled monthly points.
    assert!(
        (-0.95..=-0.70).contains(&f.correlation.r),
        "r = {}",
        f.correlation.r
    );
    assert!(f.correlation.p_value < 1e-20, "p = {}", f.correlation.p_value);
}

#[test]
fn reaction_time_findings_match() {
    let o = outcome();
    let q4 = questions::q4_alertness(&o.database).expect("q4");
    // Paper: mean 0.85 s (consistent with Fambro's 0.82 s test-vehicle
    // baseline); we accept 0.7–1.1 s.
    assert!(
        (0.7..=1.1).contains(&q4.mean_reaction_s),
        "mean = {}",
        q4.mean_reaction_s
    );
    // The ~4 h Volkswagen outlier exists and wrecks the untrimmed mean.
    assert!(q4.untrimmed_mean_s > q4.mean_reaction_s);
    // Alertness decays with miles for Waymo and Mercedes-Benz (paper:
    // r = 0.19 and 0.11 at 99% confidence).
    for m in [Manufacturer::Waymo, Manufacturer::MercedesBenz] {
        let c = q4.miles_correlation.get(&m).expect("correlation exists");
        assert!(c.r > 0.02, "{m} r = {}", c.r);
        assert!(c.p_value < 0.05, "{m} p = {}", c.p_value);
    }
}

#[test]
fn q5_ratio_range_spans_orders_of_magnitude() {
    let o = outcome();
    let q5 = questions::q5_comparison(&o.database).expect("q5");
    let (lo, hi) = q5.human_ratio_range.expect("ratios exist");
    // Paper: 15–4000x. Shape: low end O(10), high end O(1000), GM Cruise
    // the extreme, Waymo the best.
    assert!((5.0..=40.0).contains(&lo), "lo = {lo}");
    assert!(hi > 300.0, "hi = {hi}");
    let waymo = q5
        .rows
        .iter()
        .find(|r| r.manufacturer == Manufacturer::Waymo)
        .expect("waymo row");
    let gm = q5
        .rows
        .iter()
        .find(|r| r.manufacturer == Manufacturer::GmCruise)
        .expect("gm row");
    assert!(waymo.vs_human.unwrap() < gm.vs_human.unwrap());
    // Waymo ~4.2x worse than airlines per mission (paper: 4.22), within
    // a loose band; and better than surgical robots (ratio < 1).
    let va = waymo.vs_airline.unwrap();
    assert!((1.0..=15.0).contains(&va), "vs airline = {va}");
    assert!(waymo.vs_surgical.unwrap() < 1.0);
}

#[test]
fn waymo_and_gm_significant_at_90_percent() {
    // §V-B1: "Our calculations for two out of the 4 manufacturers (i.e.,
    // Waymo and GMCruise) were made at > 90% significance."
    let o = outcome();
    let q5 = questions::q5_comparison(&o.database).expect("q5");
    for m in [Manufacturer::Waymo, Manufacturer::GmCruise] {
        let row = q5.rows.iter().find(|r| r.manufacturer == m).expect("row");
        assert!(
            row.significance_p.unwrap() < 0.10,
            "{m} p = {:?}",
            row.significance_p
        );
    }
}

#[test]
fn stage_three_recovers_generator_intent() {
    let o = outcome();
    let acc =
        disengage::core::tagging::tagging_accuracy(&o.tagged, &o.corpus.intended_tags);
    assert_eq!(acc.n, 5328);
    assert!(acc.tag_accuracy > 0.99, "tag accuracy {}", acc.tag_accuracy);
    assert!(acc.category_accuracy > 0.99);
}
