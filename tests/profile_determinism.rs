//! The self-profiler must be observably free: profiling is always
//! compiled in, every profile metric is wall-clock-derived, and the
//! byte-identity contracts (stable-json telemetry across runs, worker
//! counts, and cache temperatures; configuration-pure stage keys)
//! must hold with it running. `TelemetryReport::canonical()` strips
//! the whole `profile.*` namespace; these tests prove that stripping
//! is sufficient.

use disengage::core::pipeline::OcrMode;
use disengage::core::{RunConfig, RunSession};
use disengage::corpus::CorpusConfig;
use disengage::obs::profile;
use disengage::obs::{Collector, ProfileReport};
use disengage::ocr::NoiseModel;
use std::path::{Path, PathBuf};
use std::time::Duration;

/// A unique, self-cleaning cache directory per test.
struct TempCache(PathBuf);

impl TempCache {
    fn new(name: &str) -> TempCache {
        let dir = std::env::temp_dir().join(format!(
            "disengage-profile-determinism-{}-{name}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        TempCache(dir)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempCache {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Simulated OCR at a small scale: the configuration under which the
/// profiler records its deepest phase tree (rasterize → degrade →
/// correlate → repair → cer per document).
fn simulated() -> RunConfig {
    RunConfig::new()
        .with_corpus(CorpusConfig {
            seed: 0x5EED,
            scale: 0.01,
        })
        .with_ocr(OcrMode::Simulated {
            noise: NoiseModel::light(),
            correct: true,
        })
        .with_ocr_seed(0xD0C5)
}

fn run_collecting(config: &RunConfig) -> Collector {
    let obs = Collector::new();
    RunSession::new(config.clone())
        .run_with(&obs)
        .expect("session runs");
    obs
}

/// Two runs whose wall clocks are *artificially* forced apart — one
/// gets hours of fake phase time and the process memory gauges, the
/// other nothing — must still render byte-identical canonical
/// telemetry. This is satellite proof that `canonical()` strips every
/// profile metric, not just the ones a fast run happens to produce.
#[test]
fn canonical_telemetry_survives_artificial_wall_clock_skew() {
    let config = simulated();
    let a = run_collecting(&config);
    let b = run_collecting(&config);

    // Skew run B: a phase tree that never existed in run A, with
    // durations no real run could produce, plus the memory gauges.
    profile::record_phase_at(&b, &["artificial"], Duration::from_secs(3600));
    profile::record_phase_at(&b, &["artificial", "skew"], Duration::from_secs(1800));
    profile::record_process_gauges(&b);

    let (raw_a, raw_b) = (a.report().to_json(), b.report().to_json());
    assert_ne!(raw_a, raw_b, "raw reports should differ (else vacuous)");
    assert_eq!(
        a.report().canonical().to_json(),
        b.report().canonical().to_json(),
        "canonical telemetry must be byte-identical despite the skew"
    );
}

/// Stage cache fingerprints are pure functions of the configuration:
/// profiling (and any amount of recorded profile data) must not move
/// them, and a warm replay must be byte-identical to the cold run
/// that populated the cache — canonical telemetry included.
#[test]
fn cache_fingerprints_and_warm_replays_ignore_profiling() {
    let cache = TempCache::new("warm");
    let config = simulated().with_cache_dir(cache.path());

    let keys_before = RunSession::new(config.clone()).stage_keys(false);
    let cold = run_collecting(&config);
    let keys_after = RunSession::new(config.clone()).stage_keys(false);
    assert_eq!(
        format!("{keys_before:?}"),
        format!("{keys_after:?}"),
        "profiling a run must not perturb the stage fingerprints"
    );

    let warm = run_collecting(&config);
    assert!(
        warm.report().counter("cache.hit") > 0,
        "second run must replay from the cache"
    );
    assert_eq!(
        cold.report().canonical().to_json(),
        warm.report().canonical().to_json(),
        "warm canonical telemetry diverged from cold"
    );
}

/// The set of phase paths must not depend on the worker count: phases
/// opened inside pool closures root at their own thread's stack, so
/// `jobs=1` and `jobs=4` record the same tree (only the wall-clock
/// values inside it differ, and those are stripped).
#[test]
fn phase_paths_are_identical_at_every_worker_count() {
    let paths = |jobs: usize| -> Vec<String> {
        let obs = run_collecting(&simulated().with_jobs(jobs));
        let mut p: Vec<String> = obs
            .report()
            .histograms
            .keys()
            .filter(|k| k.starts_with(profile::PROFILE_PREFIX))
            .cloned()
            .collect();
        p.sort();
        p
    };
    let sequential = paths(1);
    assert!(
        sequential.iter().any(|p| p.ends_with(";rasterize")),
        "expected per-document OCR phases, got {sequential:?}"
    );
    assert_eq!(paths(4), sequential, "phase paths depend on --jobs");

    let canonical = |jobs: usize| {
        run_collecting(&simulated().with_jobs(jobs))
            .report()
            .canonical()
            .to_json()
    };
    assert_eq!(
        canonical(1),
        canonical(4),
        "canonical telemetry diverged across worker counts"
    );
}

/// The acceptance bar for the profiler's usefulness: on a simulated
/// OCR run, the named per-document phases must attribute at least 90%
/// of Stage I OCR wall time, and the folded-stack export of the same
/// run must parse.
#[test]
fn digitize_phases_cover_stage_i_and_fold_cleanly() {
    let obs = run_collecting(&simulated());
    let report = obs.report();

    let stage = report
        .find_span("stage_i_ocr")
        .expect("stage_i_ocr span exists");
    let profile = ProfileReport::from_report(&report);
    let coverage = profile
        .coverage("digitize", stage.duration_s)
        .expect("digitize has children");
    assert!(
        coverage >= 0.9,
        "named OCR phases cover only {:.1}% of stage_i_ocr",
        coverage * 100.0
    );

    let folded = report.to_folded();
    let stacks = disengage::obs::validate_folded(&folded).expect("folded export parses");
    assert!(stacks >= 5, "expected a real phase tree, got:\n{folded}");
    for leaf in ["digitize;rasterize", "digitize;correlate", "digitize;cer"] {
        assert!(
            folded.lines().any(|l| l.starts_with(leaf)),
            "folded export missing {leaf}:\n{folded}"
        );
    }
}
