//! Dictionary-learning ablation: reproduce the paper's dictionary-
//! construction workflow on the synthetic corpus and compare the learned
//! dictionary with the shipped (paper-derived) one.

use disengage::corpus::{CorpusConfig, CorpusGenerator};
use disengage::nlp::learn::{learn_dictionary, train_and_evaluate, LearnOptions};
use disengage::nlp::{Classifier, FaultTag};

fn labeled_corpus(seed: u64) -> Vec<(FaultTag, String)> {
    let corpus = CorpusGenerator::new(CorpusConfig { seed, scale: 0.1 }).generate();
    corpus
        .truth
        .disengagements()
        .iter()
        .zip(&corpus.intended_tags)
        .map(|(r, &t)| (t, r.description.clone()))
        .collect()
}

#[test]
fn learned_dictionary_recovers_most_tags() {
    let data = labeled_corpus(104);
    let (train, eval): (Vec<_>, Vec<_>) = data
        .iter()
        .cloned()
        .enumerate()
        .partition(|(i, _)| i % 2 == 0);
    let train: Vec<(FaultTag, String)> = train.into_iter().map(|(_, x)| x).collect();
    let eval: Vec<(FaultTag, String)> = eval.into_iter().map(|(_, x)| x).collect();
    let result = train_and_evaluate(&train, &eval, LearnOptions::default());
    assert!(result.n > 200);
    // The learned dictionary is mined, not hand-curated, so it trails the
    // shipped dictionary — but must still recover the large majority.
    assert!(
        result.tag_accuracy > 0.6,
        "learned tag accuracy {}",
        result.tag_accuracy
    );
    assert!(
        result.category_accuracy > 0.7,
        "learned category accuracy {}",
        result.category_accuracy
    );
}

#[test]
fn shipped_dictionary_beats_learned_on_tags() {
    let data = labeled_corpus(102);
    let (train, eval): (Vec<_>, Vec<_>) = data
        .iter()
        .cloned()
        .enumerate()
        .partition(|(i, _)| i % 2 == 0);
    let train: Vec<(FaultTag, String)> = train.into_iter().map(|(_, x)| x).collect();
    let eval: Vec<(FaultTag, String)> = eval.into_iter().map(|(_, x)| x).collect();

    let learned = train_and_evaluate(&train, &eval, LearnOptions::default());

    let shipped = Classifier::with_default_dictionary();
    let mut hits = 0usize;
    for (want, text) in &eval {
        if shipped.classify(text).tag == *want {
            hits += 1;
        }
    }
    let shipped_accuracy = hits as f64 / eval.len() as f64;
    assert!(
        shipped_accuracy >= learned.tag_accuracy,
        "shipped {shipped_accuracy} < learned {}",
        learned.tag_accuracy
    );
    assert!(shipped_accuracy > 0.95, "shipped accuracy {shipped_accuracy}");
}

#[test]
fn richer_learning_options_do_not_hurt() {
    let data = labeled_corpus(103);
    let small = learn_dictionary(
        &data,
        LearnOptions {
            terms_per_tag: 3,
            bigrams_per_tag: 2,
            min_bigram_count: 3,
        },
    );
    let large = learn_dictionary(
        &data,
        LearnOptions {
            terms_per_tag: 12,
            bigrams_per_tag: 8,
            min_bigram_count: 2,
        },
    );
    assert!(large.len() > small.len());
    // Richer vocabulary classifies at least as many training examples.
    let small_cl = Classifier::new(small);
    let large_cl = Classifier::new(large);
    let acc = |cl: &Classifier| {
        data.iter()
            .filter(|(want, text)| cl.classify(text).tag == *want)
            .count() as f64
            / data.len() as f64
    };
    assert!(acc(&large_cl) + 0.02 >= acc(&small_cl));
}
