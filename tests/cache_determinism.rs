//! Warm-vs-cold determinism of the artifact cache: a run that replays
//! Stages I–II (or everything) from `.disengage-cache` must be
//! byte-identical to the run that computed them — same database, same
//! tags, same canonical telemetry, same lineage JSONL, same stdout —
//! clean or under chaos, at any worker count. The only permitted
//! difference is the `cache.*` counter family, which is an environment
//! fact, not an output.

use disengage::chaos::FaultPlan;
use disengage::core::pipeline::{OcrMode, PipelineOutcome, RunTrace};
use disengage::core::{RunConfig, RunSession};
use disengage::corpus::CorpusConfig;
use disengage::nlp::{Classifier, FailureDictionary, FaultTag};
use disengage::obs::Collector;
use disengage::ocr::NoiseModel;
use std::path::{Path, PathBuf};

/// A unique, self-cleaning cache directory per test.
struct TempCache(PathBuf);

impl TempCache {
    fn new(name: &str) -> TempCache {
        let dir = std::env::temp_dir().join(format!(
            "disengage-cache-determinism-{}-{name}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        TempCache(dir)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempCache {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn small() -> RunConfig {
    RunConfig::new().with_corpus(CorpusConfig {
        seed: 0x5EED,
        scale: 0.05,
    })
}

/// Everything a run externalizes, as comparable bytes: the recovered
/// database, tags, quarantine lane, canonical (wall-clock-zeroed,
/// cache-counter-free) telemetry, and the lineage JSONL.
struct RunBytes {
    outcome_repr: String,
    canonical_telemetry: String,
    lineage: String,
    hits: u64,
    misses: u64,
    corrupt: u64,
    torn_reclaimed: u64,
}

fn run_traced(config: &RunConfig) -> (PipelineOutcome, RunBytes) {
    let obs = Collector::new();
    let trace = RunTrace::new(&obs);
    let o = RunSession::new(config.clone())
        .run_traced(&obs, &trace)
        .expect("session runs");
    let bytes = RunBytes {
        outcome_repr: format!(
            "{:?}|{:?}|{:?}|{:?}|{:?}",
            o.database, o.tagged, o.record_ids, o.parse_failures, o.quarantined
        ),
        canonical_telemetry: o.telemetry.clone().canonical().to_json(),
        lineage: trace.provenance().to_jsonl(),
        hits: o.telemetry.counter("cache.hit"),
        misses: o.telemetry.counter("cache.miss"),
        corrupt: o.telemetry.counter("cache.corrupt"),
        torn_reclaimed: o.telemetry.counter("cache.torn.reclaimed"),
    };
    (o, bytes)
}

fn assert_identical(cold: &RunBytes, warm: &RunBytes) {
    assert_eq!(
        cold.outcome_repr, warm.outcome_repr,
        "warm outcome diverged from cold"
    );
    assert_eq!(
        cold.canonical_telemetry, warm.canonical_telemetry,
        "warm canonical telemetry diverged from cold"
    );
    assert_eq!(cold.lineage, warm.lineage, "warm lineage diverged from cold");
    assert!(!cold.lineage.is_empty(), "traced run recorded no lineage");
}

#[test]
fn warm_equals_cold_passthrough() {
    let cache = TempCache::new("passthrough");
    let config = small().with_cache_dir(cache.path());

    let (_, cold) = run_traced(&config);
    // Passthrough digitization is never store-cached, so three stages
    // miss cold and hit warm — once per shard (18 manufacturer × year
    // cells).
    assert_eq!((cold.hits, cold.misses), (0, 3 * 18));

    let (_, warm) = run_traced(&config);
    assert_eq!((warm.hits, warm.misses), (3 * 18, 0));
    assert_eq!(warm.corrupt, 0);
    assert_identical(&cold, &warm);
}

#[test]
fn warm_equals_cold_under_chaos_ocr_and_any_worker_count() {
    let cache = TempCache::new("chaos-ocr");
    let config = small()
        .with_ocr(OcrMode::Simulated {
            noise: NoiseModel::light(),
            correct: true,
        })
        .with_ocr_seed(0xD0C5)
        .with_chaos(FaultPlan::new(0.05, 7))
        .with_cache_dir(cache.path());

    // Cold on the default pool; warm pinned to one worker. `jobs` is
    // not part of any cache key, so the warm run must both find the
    // artifacts and replay them byte-identically.
    let (cold_o, cold) = run_traced(&config.clone().with_jobs(0));
    assert_eq!((cold.hits, cold.misses), (0, 4 * 18));
    assert!(cold_o.chaos.is_some(), "chaos audit must survive the run");

    let (warm_o, warm) = run_traced(&config.clone().with_jobs(1));
    assert_eq!((warm.hits, warm.misses), (4 * 18, 0));
    assert_identical(&cold, &warm);
    // The chaos audit itself is part of the cached normalize artifact.
    assert_eq!(
        format!("{:?}", cold_o.chaos),
        format!("{:?}", warm_o.chaos)
    );
    assert_eq!(
        format!("{:?}", cold_o.ocr),
        format!("{:?}", warm_o.ocr)
    );
}

#[test]
fn stage_iii_change_still_replays_stages_i_and_ii() {
    let cache = TempCache::new("partial");
    let config = small()
        .with_ocr(OcrMode::Simulated {
            noise: NoiseModel::light(),
            correct: true,
        })
        .with_cache_dir(cache.path());

    let (_, cold) = run_traced(&config);
    assert_eq!((cold.hits, cold.misses), (0, 4 * 18));

    // A dictionary edit is a pure Stage III change: every shard's
    // corpus, digitize (the expensive OCR pass), and normalize
    // artifacts replay from cache; only tag recomputes under its new
    // key.
    let mut dict = FailureDictionary::default_bank();
    dict.add_phrase(FaultTag::ALL[0], "entirely novel failure phrase");
    let obs = Collector::new();
    let trace = RunTrace::new(&obs);
    let o = RunSession::with_classifier(config.clone(), Classifier::new(dict))
        .run_traced(&obs, &trace)
        .expect("session runs");
    assert_eq!(o.telemetry.counter("cache.hit"), 3 * 18);
    assert_eq!(o.telemetry.counter("cache.miss"), 18);
    assert_eq!(o.telemetry.counter("cache.hit.digitize"), 18, "OCR was skipped");
    assert_eq!(o.telemetry.counter("cache.miss.tag"), 18);
}

#[test]
fn corrupted_artifacts_recompute_silently_and_identically() {
    let cache = TempCache::new("corrupt");
    let config = small().with_cache_dir(cache.path());

    let (_, cold) = run_traced(&config);
    assert_eq!(cold.corrupt, 0);

    // Vandalize every cached artifact a different way: truncate one,
    // bit-flip another, replace the third with garbage.
    let mut files: Vec<PathBuf> = Vec::new();
    for stage in ["corpus", "normalize", "tag"] {
        let dir = cache.path().join(stage);
        for entry in std::fs::read_dir(&dir).expect("stage dir exists") {
            files.push(entry.expect("dir entry").path());
        }
    }
    assert_eq!(files.len(), 3 * 18, "one artifact per store-cached stage per shard");
    files.sort();
    let original = std::fs::read(&files[0]).expect("artifact readable");
    std::fs::write(&files[0], &original[..original.len() / 2]).expect("truncate");
    let mut flipped = std::fs::read(&files[1]).expect("artifact readable");
    let mid = flipped.len() / 2;
    flipped[mid] ^= 0x40;
    std::fs::write(&files[1], flipped).expect("bit-flip");
    std::fs::write(&files[2], b"not an artifact").expect("garbage");

    // The damaged run must not panic, must detect every corruption
    // (startup recovery frame-validates the directory and reclaims
    // torn artifacts before the first probe), and must still produce
    // the cold run's exact bytes.
    let (_, damaged) = run_traced(&config);
    assert_eq!(damaged.torn_reclaimed, 3, "every vandalized artifact reclaimed");
    assert_eq!((damaged.hits, damaged.misses), (3 * 18 - 3, 3));
    assert_identical(&cold, &damaged);

    // And it healed the store: the next run hits everything again.
    let (_, healed) = run_traced(&config);
    assert_eq!((healed.hits, healed.misses, healed.corrupt), (3 * 18, 0, 0));
    assert_eq!(healed.torn_reclaimed, 0);
    assert_identical(&cold, &healed);
}

#[test]
fn interrupted_run_resumes_byte_identically() {
    use disengage::core::{CoreError, Stage};

    // The reference: a cold, uncached, uninterrupted run.
    let (_, cold) = run_traced(&small());

    // The crash: die right after the normalize artifact commits.
    let cache = TempCache::new("interrupted");
    let config = small()
        .with_cache_dir(cache.path())
        .with_abort_after(Stage::Normalize)
        .with_flight_path(cache.path().join("flight.json"));
    // Traced, like the reference and the resume: lineage recording is
    // part of every stage key, so all three halves must agree on it.
    let obs = Collector::new();
    let trace = RunTrace::new(&obs);
    let err = RunSession::new(config.clone())
        .run_traced(&obs, &trace)
        .expect_err("abort point must fire");
    assert!(
        matches!(err, CoreError::Interrupted { after: "normalize" }),
        "{err:?}"
    );

    // The restart: same directory, no abort. Every shard's corpus and
    // normalize artifacts replay from the crashed run's commits
    // (passthrough digitize is never store-cached), tag recomputes,
    // and every byte matches the run that never crashed.
    let mut resume = config;
    resume.abort_after = None;
    let (_, warm) = run_traced(&resume);
    assert_eq!((warm.hits, warm.misses), (2 * 18, 18));
    assert_identical(&cold, &warm);
}

#[test]
fn interrupted_faulted_run_resumes_byte_identically() {
    use disengage::cache::ArtifactStore;
    use disengage::chaos::IoFaultPlan;
    use disengage::core::artifact::FORMAT_VERSION;
    use disengage::core::{CoreError, Stage};

    let (_, cold) = run_traced(&small());

    // The crash, this time with the store under seeded I/O fire and
    // a crashed peer's litter already on disk.
    let cache = TempCache::new("interrupted-faulted");
    disengage::chaos::plant_litter(cache.path(), 0xBAD);
    let config = small()
        .with_cache_dir(cache.path())
        .with_io_faults(IoFaultPlan::new(0.3, 0xFA11))
        .with_abort_after(Stage::Corpus)
        .with_flight_path(cache.path().join("flight.json"));
    let obs = Collector::new();
    let trace = RunTrace::new(&obs);
    let err = RunSession::new(config.clone())
        .run_traced(&obs, &trace)
        .expect_err("abort point must fire");
    assert!(matches!(err, CoreError::Interrupted { after: "corpus" }), "{err:?}");

    // The restart keeps its own fault plan armed: injected faults may
    // cost replays (a read probe can exhaust its retries and
    // recompute) but never change a byte of output.
    let mut resume = config;
    resume.abort_after = None;
    resume.io_faults = Some(IoFaultPlan::new(0.3, 0xFA12));
    let (_, warm) = run_traced(&resume);
    assert_identical(&cold, &warm);

    // And the directory ends clean: litter reclaimed, nothing torn,
    // no lock or tmp left behind.
    let audit = ArtifactStore::at(cache.path(), FORMAT_VERSION).audit_files();
    assert!(
        audit.is_clean(),
        "torn {:?} tmp {:?} locks {:?}",
        audit.torn,
        audit.tmp,
        audit.locks
    );
}

/// End-to-end stdout byte-identity through the `disengage` binary —
/// the user-visible form of the warm/cold contract. (`stable-json`
/// telemetry zeroes wall-clock fields and drops `cache.*` counters, so
/// the rendered report is comparable too.)
#[test]
fn binary_stdout_is_byte_identical_warm_vs_cold() {
    let cache = TempCache::new("binary");
    let run = || {
        std::process::Command::new(env!("CARGO_BIN_EXE_disengage"))
            .args([
                "summary",
                "--scale=0.05",
                "--telemetry=stable-json",
                &format!("--cache-dir={}", cache.path().display()),
            ])
            .output()
            .expect("disengage binary runs")
    };
    let cold = run();
    assert!(cold.status.success(), "cold run failed: {cold:?}");
    let warm = run();
    assert!(warm.status.success(), "warm run failed: {warm:?}");
    assert_eq!(
        String::from_utf8_lossy(&cold.stdout),
        String::from_utf8_lossy(&warm.stdout),
        "binary stdout diverged between cold and warm"
    );
}
