//! Shard independence: the properties that make sharded streaming
//! execution safe. A single shard generated in isolation must be
//! byte-identical to its slice of the full-corpus run; an exclusion
//! filter must yield the exact complement; and the merge fold must not
//! depend on *when* shards finish, only on the enumeration order the
//! session absorbs them in.

use disengage::core::pipeline::{PipelineOutcome, RunTrace};
use disengage::core::{CoreError, RunConfig, RunSession};
use disengage::corpus::CorpusConfig;
use disengage::obs::Collector;

fn small() -> RunConfig {
    RunConfig::new().with_corpus(CorpusConfig {
        seed: 0x5EED,
        scale: 0.05,
    })
}

fn run(config: &RunConfig) -> PipelineOutcome {
    let obs = Collector::new();
    let trace = RunTrace::new(&obs);
    RunSession::new(config.clone())
        .run_traced(&obs, &trace)
        .expect("session runs")
}

/// Running one shard alone reproduces exactly its contiguous slice of
/// the full run: same record ids, same parsed records, same tags.
#[test]
fn single_shard_is_byte_identical_to_its_slice_of_the_full_run() {
    let full = run(&small());
    let single = run(&small().with_shards(vec!["waymo_2016".to_owned()]));
    assert!(
        !single.record_ids.is_empty(),
        "waymo_2016 must parse records at this scale"
    );

    let start = full
        .record_ids
        .iter()
        .position(|id| id == &single.record_ids[0])
        .expect("shard's first record appears in the full run");
    let end = start + single.record_ids.len();
    assert_eq!(
        single.record_ids,
        full.record_ids[start..end],
        "shard record ids are a contiguous slice of the full run"
    );
    assert_eq!(
        format!("{:?}", single.database.disengagements()),
        format!("{:?}", &full.database.disengagements()[start..end]),
        "shard records diverge from the full run's slice"
    );
    assert_eq!(
        format!("{:?}", single.tagged),
        format!("{:?}", &full.tagged[start..end]),
        "shard tags diverge from the full run's slice"
    );
}

/// `--shards=-waymo_2016` is the exact complement of
/// `--shards=waymo_2016`: together they partition the full run's
/// records, preserving order.
#[test]
fn exclusion_filter_is_the_exact_complement() {
    let full = run(&small());
    let single = run(&small().with_shards(vec!["waymo_2016".to_owned()]));
    let rest = run(&small().with_shards(vec!["-waymo_2016".to_owned()]));

    assert_eq!(
        single.record_ids.len() + rest.record_ids.len(),
        full.record_ids.len()
    );
    let mut recombined = full.record_ids.clone();
    let start = recombined
        .iter()
        .position(|id| id == &single.record_ids[0])
        .expect("shard slice located");
    recombined.drain(start..start + single.record_ids.len());
    assert_eq!(
        rest.record_ids, recombined,
        "exclusion run must equal the full run minus the shard's slice"
    );
}

/// An unknown label is a loud, typed error — not a silent empty run.
#[test]
fn unknown_shard_label_is_rejected() {
    let obs = Collector::new();
    let trace = RunTrace::new(&obs);
    let err = RunSession::new(small().with_shards(vec!["delorean_1985".to_owned()]))
        .run_traced(&obs, &trace)
        .expect_err("unknown label must fail");
    assert!(
        matches!(err, CoreError::UnknownShard { ref label } if label == "delorean_1985"),
        "{err:?}"
    );
}

/// The reduced (digest-only) entry point agrees with the full run —
/// it drops the bulk per shard, not the numbers.
#[test]
fn reduced_digest_matches_the_full_run() {
    let full = run(&small());
    let obs = Collector::new();
    let digest = RunSession::new(small()).run_reduced(&obs).expect("reduced run");
    assert_eq!(digest.shards, 18);
    assert_eq!(digest.documents, full.corpus.documents.len());
    assert_eq!(digest.disengagements, full.database.disengagements().len());
    assert_eq!(digest.tagged, full.tagged.len());
    assert!((digest.total_miles - full.corpus.truth.total_miles()).abs() < 1e-9);
}

/// Counter and histogram folds are invariant to the order shards are
/// absorbed in, as long as every shard is absorbed exactly once. (The
/// session absorbs in enumeration order for the order-*sensitive*
/// parts — float sums, logs, spans; this test pins the order-free
/// core the merge fold's totals rest on.)
#[test]
fn counter_and_histogram_folds_are_absorption_order_invariant() {
    let build_shards = || {
        let outer = Collector::new();
        let shards: Vec<Collector> = (0..6u64)
            .map(|i| {
                let s = outer.shard();
                s.add("records", 10 + i);
                s.incr("shards.seen");
                // Dyadic samples: exactly representable, so even the
                // left-to-right float sum cannot depend on order.
                s.record("latency", 0.25 * (i + 1) as f64);
                s.record("latency", 0.5);
                s
            })
            .collect();
        (outer, shards)
    };

    let (forward, shards) = build_shards();
    for s in shards {
        forward.absorb(s);
    }
    let (reverse, shards) = build_shards();
    for s in shards.into_iter().rev() {
        reverse.absorb(s);
    }

    let a = forward.report();
    let b = reverse.report();
    assert_eq!(a.counter("records"), b.counter("records"));
    assert_eq!(a.counter("shards.seen"), 6);
    assert_eq!(b.counter("shards.seen"), 6);
    let ha = a.histogram("latency").expect("histogram recorded");
    let hb = b.histogram("latency").expect("histogram recorded");
    assert_eq!(ha.count, hb.count);
    assert_eq!(ha.sum.to_bits(), hb.sum.to_bits(), "dyadic sums must match bitwise");
    assert_eq!(ha.min.to_bits(), hb.min.to_bits());
    assert_eq!(ha.max.to_bits(), hb.max.to_bits());
    assert_eq!(ha.p95.to_bits(), hb.p95.to_bits());
}

/// Byte-identity at any worker count survives the shard refactor:
/// `--jobs` bounds how many shards are in flight, and must never leak
/// into the output.
#[test]
fn sharded_run_is_byte_identical_at_any_jobs() {
    let serial = run(&small().with_jobs(1));
    let wide = run(&small().with_jobs(4));
    assert_eq!(
        format!("{:?}|{:?}|{:?}", serial.database, serial.tagged, serial.record_ids),
        format!("{:?}|{:?}|{:?}", wide.database, wide.tagged, wide.record_ids),
    );
    assert_eq!(
        serial.telemetry.clone().canonical().to_json(),
        wide.telemetry.clone().canonical().to_json(),
        "canonical telemetry must not depend on --jobs"
    );
}
