//! Lineage and execution-trace integration: the provenance log must be
//! byte-identical at any worker count (clean and under chaos), `explain`
//! must produce a full Stage I–IV chain for the three exemplar classes,
//! and the Chrome-trace export must validate and cover every pool task
//! with per-worker tids.
//!
//! Small scales keep the suite fast; determinism at scale 1.0 is
//! enforced by `scripts/verify.sh` diffing full `repro` runs.

use disengage::chaos::FaultPlan;
use disengage::core::pipeline::{Pipeline, PipelineConfig, RunTrace};
use disengage::core::telemetry::execution_trace_json;
use disengage::corpus::CorpusConfig;
use disengage::obs::json::Value;
use disengage::obs::{validate_chrome_trace, Collector, Subject};
use std::collections::BTreeSet;

fn config(scale: f64) -> PipelineConfig {
    PipelineConfig {
        corpus: CorpusConfig { seed: 11, scale },
        ..Default::default()
    }
}

fn lineage(scale: f64, chaos: Option<FaultPlan>, jobs: usize) -> (String, RunTrace, Collector) {
    let obs = Collector::new();
    let trace = RunTrace::new(&obs);
    let mut pipeline = Pipeline::new(config(scale)).with_jobs(jobs);
    if let Some(plan) = chaos {
        pipeline = pipeline.with_chaos(plan);
    }
    pipeline.run_traced(&obs, &trace).expect("pipeline runs");
    let jsonl = trace.provenance().to_jsonl();
    (jsonl, trace, obs)
}

#[test]
fn clean_lineage_is_byte_identical_across_worker_counts() {
    let (one, _, _) = lineage(0.05, None, 1);
    let (eight, _, _) = lineage(0.05, None, 8);
    assert!(!one.is_empty());
    assert_eq!(one, eight, "clean lineage diverged between jobs=1 and jobs=8");
}

#[test]
fn chaos_lineage_is_byte_identical_across_worker_counts() {
    let plan = FaultPlan::new(0.1, 7);
    let (one, _, _) = lineage(0.05, Some(plan), 1);
    let (eight, _, _) = lineage(0.05, Some(plan), 8);
    assert!(!one.is_empty());
    assert_eq!(one, eight, "chaos lineage diverged between jobs=1 and jobs=8");
}

#[test]
fn lineage_lines_parse_and_carry_stable_fields_without_wall_clock() {
    let (jsonl, _, _) = lineage(0.05, Some(FaultPlan::new(0.1, 7)), 0);
    let mut events = BTreeSet::new();
    for line in jsonl.lines() {
        let v = Value::parse(line).expect(line);
        let Value::Obj(fields) = v else {
            panic!("lineage line is not an object: {line}");
        };
        // Stable leading field order, and no wall-clock keys anywhere.
        assert_eq!(fields[0].0, "subject", "{line}");
        assert_eq!(fields[1].0, "stage", "{line}");
        assert_eq!(fields[2].0, "event", "{line}");
        for (key, _) in &fields {
            assert!(
                !matches!(key.as_str(), "ts" | "time" | "timestamp" | "elapsed"),
                "wall-clock field `{key}` breaks the byte-identity contract: {line}"
            );
        }
        if let Value::Str(kind) = &fields[2].1 {
            events.insert(kind.clone());
        }
    }
    // The chaos run exercises the full event taxonomy up to Stage III.
    for kind in [
        "fault_injected",
        "fault_outcome",
        "normalized",
        "quarantined",
        "dict_vote",
        "tagged",
    ] {
        assert!(events.contains(kind), "missing {kind} in {events:?}");
    }
}

#[test]
fn explain_covers_corrected_quarantined_and_clean_records() {
    let (_, trace, _) = lineage(0.05, Some(FaultPlan::new(0.3, 7)), 0);
    let prov = trace.provenance();
    let exemplars = prov.exemplars();
    let labels: Vec<&str> = exemplars.iter().map(|(l, _)| *l).collect();
    assert_eq!(
        labels,
        ["corrected", "quarantined", "clean"],
        "rate 0.3 must produce all three exemplar classes"
    );
    for (label, subject) in &exemplars {
        let chain = prov.explain(subject).expect(subject);
        assert!(chain.starts_with(subject.as_str()), "{chain}");
        match *label {
            "corrected" => assert!(
                chain.contains("chaos") || chain.contains("stage_i_ocr"),
                "corrected exemplar shows no Stage I/chaos events:\n{chain}"
            ),
            "quarantined" => {
                assert!(chain.contains("quarantined"), "{chain}")
            }
            _ => assert!(
                chain.contains("stage_ii_parse") && chain.contains("stage_iii_tag"),
                "clean exemplar must span parse and tag stages:\n{chain}"
            ),
        }
    }
    // A record exemplar explains through to its Stage III verdict.
    let (_, record) = exemplars.iter().find(|(l, _)| *l == "clean").unwrap();
    let chain = trace.provenance().explain(record).unwrap();
    assert!(chain.contains("tagged"), "{chain}");
    assert!(chain.contains("normalized"), "{chain}");
}

#[test]
fn record_ids_align_with_tagged_output_and_are_unique() {
    let obs = Collector::new();
    let trace = RunTrace::disabled();
    let o = Pipeline::new(config(0.05))
        .run_traced(&obs, &trace)
        .unwrap();
    assert_eq!(o.record_ids.len(), o.database.disengagements().len());
    assert_eq!(o.record_ids.len(), o.tagged.len());
    let unique: BTreeSet<_> = o.record_ids.iter().collect();
    assert_eq!(unique.len(), o.record_ids.len(), "record ids collide");
    // Ids are subjects the provenance layer can round-trip.
    for id in &o.record_ids {
        let rendered = id.to_string();
        assert_eq!(
            Subject::parse(&rendered),
            Some(Subject::Record(id.clone())),
            "{rendered}"
        );
    }
}

#[test]
fn chrome_trace_export_validates_and_covers_every_pool_task() {
    let (_, trace, obs) = lineage(0.05, Some(FaultPlan::new(0.1, 7)), 3);
    let report = obs.report();
    let json = execution_trace_json(&report, trace.timeline());
    let events = validate_chrome_trace(&json).expect("trace must validate");
    let tasks = trace.timeline().tasks();
    assert!(!tasks.is_empty());
    // Every pool task appears as an event on its worker's tid
    // (tid = worker + 1; tid 0 is the telemetry span tree).
    let Value::Arr(items) = Value::parse(&json).unwrap() else {
        panic!("trace is not an array");
    };
    assert_eq!(events, items.len());
    let tids: BTreeSet<u64> = items
        .iter()
        .filter_map(|e| match e {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == "tid").and_then(
                |(_, v)| match v {
                    Value::Num(n) => Some(*n as u64),
                    _ => None,
                },
            ),
            _ => None,
        })
        .collect();
    for t in &tasks {
        assert!(
            tids.contains(&(t.worker as u64 + 1)),
            "worker {} has no tid in {tids:?}",
            t.worker
        );
    }
    assert!(tids.contains(&0), "span tree missing from tid 0");
    // Three workers → pool tids stay within 1..=3.
    assert!(tids.iter().all(|&t| t <= 3), "{tids:?}");
}
