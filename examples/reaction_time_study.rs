//! Reaction-time study (Question 4 / Figs. 10–11): how quickly do AV
//! safety drivers take control, how does that compare with ordinary
//! drivers, and which distribution family describes the data?
//!
//! ```text
//! cargo run --release --example reaction_time_study
//! ```

use disengage::core::constants::{HUMAN_REACTION_OWNED_S, REACTION_OUTLIER_CUTOFF_S};
use disengage::core::pipeline::{Pipeline, PipelineConfig};
use disengage::core::questions;
use disengage::reports::Manufacturer;
use disengage::stats::fit::{fit_exponential, fit_exponentiated_weibull, fit_weibull, prefer_by_aic};
use disengage::stats::ks::ks_test;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let outcome = Pipeline::new(PipelineConfig::default()).run()?;
    let db = &outcome.database;

    let q4 = questions::q4_alertness(db)?;
    println!(
        "mean reaction time: {:.2} s over {} samples (paper: 0.85 s)",
        q4.mean_reaction_s, q4.n
    );
    println!(
        "untrimmed mean {:.1} s — dominated by one ~4 h entry the paper flags as a recording error",
        q4.untrimmed_mean_s
    );
    println!(
        "human baseline in one's own vehicle: {HUMAN_REACTION_OWNED_S:.2} s — AV supervision demands non-AV alertness\n"
    );

    println!("== does alertness decay as the system improves? ==");
    for (m, c) in &q4.miles_correlation {
        println!(
            "{:<16} reaction vs cumulative miles: r = {:+.3} (p = {:.3}, n = {})",
            m.name(),
            c.r,
            c.p_value,
            c.n
        );
    }

    println!("\n== model selection per manufacturer (Fig. 11) ==");
    for m in [
        Manufacturer::MercedesBenz,
        Manufacturer::Waymo,
        Manufacturer::Nissan,
        Manufacturer::Delphi,
    ] {
        let times: Vec<f64> = db
            .reaction_times(m)
            .into_iter()
            .filter(|&t| t > 0.0 && t <= REACTION_OUTLIER_CUTOFF_S)
            .collect();
        if times.len() < 30 {
            continue;
        }
        let exp = fit_exponential(&times)?;
        let weibull = fit_weibull(&times)?;
        let ew = fit_exponentiated_weibull(&times)?;
        let best = if prefer_by_aic(&ew, &weibull) && prefer_by_aic(&ew, &exp) {
            "exponentiated-weibull"
        } else if prefer_by_aic(&weibull, &exp) {
            "weibull"
        } else {
            "exponential"
        };
        let ks = ks_test(&times, &ew.dist)?;
        println!(
            "{:<16} n={:<5} AIC exp {:>8.1} | weibull {:>8.1} | exp-weibull {:>8.1}  -> {best}",
            m.name(),
            times.len(),
            exp.aic,
            weibull.aic,
            ew.aic,
        );
        println!(
            "{:<16} exp-weibull params: k={:.2} λ={:.2} α={:.2}; KS D={:.3} (p={:.3})",
            "",
            ew.dist.shape(),
            ew.dist.scale(),
            ew.dist.alpha(),
            ks.statistic,
            ks.p_value
        );
    }

    Ok(())
}
