//! Quickstart: run the end-to-end pipeline and print the headline
//! findings of the paper.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use disengage::core::{questions, report, tables, RunConfig, RunSession};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The default configuration regenerates the full calibrated corpus:
    // 12 manufacturers, 144+ vehicles, ~1.12M autonomous miles, 5,328
    // disengagements, 42 accidents. Add `.with_cache_dir(...)` to make
    // reruns replay Stages I-III from the artifact cache.
    let outcome = RunSession::new(RunConfig::new()).run()?;

    println!(
        "pipeline recovered {} disengagements, {} accidents, {:.0} autonomous miles\n",
        outcome.database.disengagements().len(),
        outcome.database.accidents().len(),
        outcome.database.total_miles()
    );

    // Table I: the fleet summary.
    let table1 = tables::table1(&outcome.database)?;
    println!("{}", report::render_table("Table I", &table1));

    // The paper's four headline findings.
    let q2 = questions::q2_causes(&outcome.tagged);
    println!(
        "finding 1: {:.0}% of disengagements trace to the machine-learning stack (paper: 64%)",
        q2.global_excluding_tesla.ml_total() * 100.0
    );

    let q4 = questions::q4_alertness(&outcome.database)?;
    println!(
        "finding 2: drivers reacted in {:.2} s on average — human non-AV baseline {:.2} s",
        q4.mean_reaction_s, q4.human_baseline_s
    );

    let q5 = questions::q5_comparison(&outcome.database)?;
    if let Some((lo, hi)) = q5.human_ratio_range {
        println!(
            "finding 3: per mile, AVs had {lo:.0}-{hi:.0}x more accidents than human drivers (paper: 15-4000x)"
        );
    }

    let q3 = questions::q3_dynamics(&outcome.database)?;
    println!(
        "finding 4: DPM falls with cumulative miles, r = {:.2} (paper: -0.87) — but no manufacturer has reached the zero-DPM asymptote",
        q3.log_log_correlation.r
    );

    Ok(())
}
