//! Fleet reliability study: per-manufacturer disengagement rates, their
//! trend with cumulative testing, and a what-if with a custom fleet.
//!
//! ```text
//! cargo run --release --example fleet_reliability
//! ```

use disengage::core::pipeline::{Pipeline, PipelineConfig};
use disengage::core::{figures, metrics};
use disengage::corpus::profile::{CategoryMix, ModalityMix, YearProfile};
use disengage::corpus::{CorpusConfig, CorpusGenerator, ManufacturerProfile};
use disengage::reports::{Manufacturer, ReportYear};
use disengage::stats::boxplot::box_stats;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let outcome = Pipeline::new(PipelineConfig::default()).run()?;
    let db = &outcome.database;

    println!("== per-manufacturer disengagement rates ==");
    for m in db.manufacturers() {
        let Ok(dpm) = metrics::dpm(db, m) else {
            continue;
        };
        let per_car = metrics::per_car_dpm(db, m);
        if per_car.is_empty() {
            continue;
        }
        let b = box_stats(&per_car)?;
        println!(
            "{:<16} fleet DPM {:.5}  per-car median {:.5}  IQR [{:.5}, {:.5}]",
            m.name(),
            dpm,
            b.median,
            b.q1,
            b.q3
        );
    }

    println!("\n== improvement with testing (Fig. 9 fits) ==");
    for series in figures::fig9(db) {
        if let Some(fit) = &series.fit {
            let direction = if fit.exponent < 0.0 { "improving" } else { "regressing" };
            println!(
                "{:<16} DPM ~ miles^{:.2}  ({direction} over {} active months)",
                series.manufacturer.name(),
                fit.exponent,
                series.points.len()
            );
        }
    }

    // What-if: a hypothetical entrant that tests 50k miles in one year
    // with a fleet of 10 and a modern (perception-heavy) failure mix.
    println!("\n== what-if: hypothetical entrant, 50k miles, 10 cars ==");
    let entrant = ManufacturerProfile {
        manufacturer: Manufacturer::Ford, // reuse an identity for the demo
        years: vec![YearProfile {
            year: ReportYear::R2016,
            cars: 10,
            miles: 50_000.0,
            disengagements: 400,
            accidents: 2,
        }],
        categories: CategoryMix {
            perception: 0.6,
            planner: 0.25,
            system: 0.15,
            unknown: 0.0,
        },
        modalities: ModalityMix {
            automatic: 0.5,
            manual: 0.5,
            planned: 0.0,
        },
        reactions: Some(disengage::corpus::profile::ReactionProfile {
            shape: 1.4,
            scale: 0.8,
        }),
        car_skew: 1.0,
        dis_miles_exponent: 1.0,
    };
    let corpus = CorpusGenerator::with_profiles(
        CorpusConfig { seed: 77, scale: 1.0 },
        vec![entrant],
    )
    .generate();
    let db = &corpus.truth;
    let per_car = metrics::per_car_dpm(db, Manufacturer::Ford);
    let b = box_stats(&per_car)?;
    println!(
        "entrant fleet DPM {:.5}, per-car median {:.5}; DPA {:?}",
        metrics::dpm(db, Manufacturer::Ford)?,
        b.median,
        db.dpa(Manufacturer::Ford)
    );
    println!(
        "for context, Waymo's calibrated per-car median DPM is ~4.4e-4 — the entrant is ~{:.0}x behind",
        b.median / 4.4e-4
    );

    Ok(())
}
