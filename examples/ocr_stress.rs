//! OCR stress study: sweep scanner-noise severity and watch Stage I/II
//! quality fall — character error rate up, record recovery down, the
//! manual-review queue growing. Reproduces the failure mode the paper
//! hit with low-resolution scans (where Tesseract failed and the authors
//! transcribed by hand).
//!
//! ```text
//! cargo run --release --example ocr_stress
//! ```

use disengage::core::pipeline::{OcrMode, Pipeline, PipelineConfig};
use disengage::corpus::CorpusConfig;
use disengage::ocr::NoiseModel;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("noise sweep over a 2% corpus (erosion = 6x salt, like a fading scan):\n");
    println!("{:>8}  {:>8}  {:>10}  {:>10}  {:>8}  {:>12}", "salt", "erosion", "CER", "confidence", "recovery", "manual queue");
    for step in 0..=6 {
        let salt = step as f64 * 0.004;
        let erosion = salt * 6.0;
        let noise = if step == 0 {
            NoiseModel::clean()
        } else {
            NoiseModel::new(salt, erosion)
        };
        for correct in [false, true] {
            let outcome = Pipeline::new(PipelineConfig {
                corpus: CorpusConfig {
                    seed: 21,
                    scale: 0.02,
                },
                ocr: OcrMode::Simulated { noise, correct },
                ocr_seed: 4,
            })
            .run()?;
            let stats = outcome.ocr.expect("simulated mode reports stats");
            println!(
                "{:>8.3}  {:>8.3}  {:>10.4}  {:>10.3}  {:>7.1}%  {:>6} lines{}",
                salt,
                erosion,
                stats.mean_cer,
                stats.mean_confidence,
                outcome.recovery_rate() * 100.0,
                outcome.parse_failures.len(),
                if correct { "  (with dictionary correction)" } else { "" }
            );
        }
    }
    println!(
        "\ndictionary post-correction recovers part of the loss — the same role the paper's \
         manual-transcription fallback plays."
    );
    Ok(())
}
