//! Fleet-scale projection (§V-C1 and the paper's conclusions, made
//! executable): extrapolate DPM trends, compute the demonstration gap,
//! and project accident volume if AVs replaced every car trip.
//!
//! ```text
//! cargo run --release --example fleet_projection
//! ```

use disengage::core::constants::HUMAN_APM;
use disengage::core::pipeline::{Pipeline, PipelineConfig};
use disengage::core::whatif::{demonstration_gap, fleet_scale_projection, miles_to_target_dpm};
use disengage::reports::Manufacturer;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let outcome = Pipeline::new(PipelineConfig::default()).run()?;
    let db = &outcome.database;

    println!("== projecting DPM trends to a 1e-4 disengagements/mile target ==");
    for m in [
        Manufacturer::Waymo,
        Manufacturer::Nissan,
        Manufacturer::GmCruise,
        Manufacturer::Bosch,
    ] {
        match miles_to_target_dpm(db, m, 1e-4) {
            Ok(p) => {
                print!(
                    "{:<16} DPM ~ miles^{:+.2}; now {:.2e} at {:.0} mi -> ",
                    m.name(),
                    p.fit.exponent,
                    p.current_dpm,
                    p.current_miles
                );
                match p.additional_miles() {
                    Some(0.0) => println!("target already met"),
                    Some(extra) if extra.is_finite() => {
                        println!("needs ~{:.1}M more miles", extra / 1e6)
                    }
                    _ => println!("trend never reaches the target"),
                }
            }
            Err(e) => println!("{:<16} {e}", m.name()),
        }
    }

    println!("\n== the demonstration gap (Kalra-Paddock, human APM target) ==");
    for confidence in [0.90, 0.95, 0.99] {
        let g = demonstration_gap(db, confidence)?;
        println!(
            "{:.0}% confidence: need {:>10.2}M failure-free miles = {:>6.1} programs like 2014-2016, ~{:.1} years at that pace",
            confidence * 100.0,
            g.required_miles / 1e6,
            g.programs_needed,
            g.years_at_current_pace
        );
    }

    println!("\n== if every U.S. car trip were an AV trip (96B trips/year) ==");
    for (label, apm) in [
        ("at today's Waymo rate", 2.35e-5),
        ("at today's GM Cruise rate", 1.95e-3),
        ("at the human-driver rate", HUMAN_APM),
    ] {
        let p = fleet_scale_projection(apm)?;
        println!(
            "{label:<28} {:>12.0} accidents/year  ({:.0}x aviation's annual count)",
            p.annual_av_accidents, p.ratio_to_aviation
        );
    }
    println!(
        "\neven at human-level rates the AV fleet would produce thousands of times more \
         accident events per year than aviation — the paper's closing scale argument."
    );

    Ok(())
}
