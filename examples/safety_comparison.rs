//! Safety comparison (Question 5 / Tables VII–VIII) plus the
//! Kalra–Paddock "driving to safety" analysis: how many miles would it
//! take to *demonstrate* human-level reliability?
//!
//! ```text
//! cargo run --release --example safety_comparison
//! ```

use disengage::core::constants::{AIRLINE_APM, HUMAN_APM, SURGICAL_ROBOT_APM};
use disengage::core::pipeline::{Pipeline, PipelineConfig};
use disengage::core::{questions, report};
use disengage::stats::kalra_paddock::{
    demonstration_miles, failure_free_miles, rate_confidence_interval,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let outcome = Pipeline::new(PipelineConfig::default()).run()?;
    let db = &outcome.database;

    let q5 = questions::q5_comparison(db)?;
    println!("{}", report::render_q5(&q5));

    println!("== per-mission view (Table VIII baselines) ==");
    println!("airline accidents/departure: {AIRLINE_APM:.1e}");
    println!("surgical-robot adverse events/procedure: {SURGICAL_ROBOT_APM:.1e}");
    for row in &q5.rows {
        if let (Some(apmi), Some(va), Some(vs)) = (row.apmi, row.vs_airline, row.vs_surgical) {
            println!(
                "{:<16} APMi {:.2e}  = {:.1}x airlines, {:.2}x surgical robots",
                row.manufacturer.name(),
                apmi,
                va,
                vs
            );
        }
    }

    println!("\n== exact confidence intervals on accident rates ==");
    for m in db.manufacturers() {
        let accidents = db.accidents_for(m).len() as u64;
        let miles = db.miles_for(m);
        if accidents == 0 || miles <= 0.0 {
            continue;
        }
        let ci = rate_confidence_interval(accidents, miles, 0.90)?;
        println!(
            "{:<16} {} accidents / {:>9.0} mi: APM {:.2e}  90% CI [{:.2e}, {:.2e}]",
            m.name(),
            accidents,
            miles,
            ci.rate,
            ci.lower,
            ci.upper
        );
    }

    println!("\n== Kalra-Paddock: miles to demonstrate human-level reliability ==");
    for confidence in [0.90, 0.95, 0.99] {
        let m0 = failure_free_miles(HUMAN_APM, confidence)?;
        let m5 = demonstration_miles(HUMAN_APM, confidence, 5)?;
        println!(
            "at {:.0}% confidence: {:>12.0} failure-free miles, or {:>12.0} miles tolerating 5 accidents",
            confidence * 100.0,
            m0,
            m5
        );
    }
    println!(
        "\nthe whole 2014-2016 program drove {:.1}M autonomous miles — demonstration-scale testing \
         requires orders of magnitude more, which is the paper's closing argument",
        db.total_miles() / 1e6
    );

    Ok(())
}
