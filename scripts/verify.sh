#!/usr/bin/env bash
# Offline verification: tier-1 build + tests with warnings denied, the
# full workspace test suite, and the repro harness's telemetry
# self-check (nonzero exit if the pipeline's counters fail to
# reconcile). No network access is required at any step.
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true
export RUSTFLAGS="-D warnings"

echo "== tier-1: cargo build --release =="
cargo build --release --offline

echo "== tier-1: cargo test -q =="
cargo test -q --offline

echo "== workspace: cargo test --workspace -q =="
cargo test --workspace -q --offline

echo "== repro telemetry self-check (counter reconciliation) =="
cargo run --release --offline -p disengage-bench --bin repro -- \
    table1 --telemetry=json >/dev/null

echo "verify: OK"
