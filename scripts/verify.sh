#!/usr/bin/env bash
# Offline verification: tier-1 build + tests with warnings denied, the
# full workspace test suite, the repro harness's telemetry self-check
# (nonzero exit if the pipeline's counters fail to reconcile), a
# seeded chaos smoke campaign (nonzero exit on any panic, unreconciled
# fault ledger, or rate-0 divergence from the clean run), and the
# parallel-determinism byte-diffs (repro output and metrics at
# --jobs=1 vs the default worker pool, clean and chaos). No network
# access is required at any step.
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true
export RUSTFLAGS="-D warnings"

echo "== tier-1: cargo build --release =="
cargo build --release --offline

echo "== tier-1: cargo test -q =="
cargo test -q --offline

echo "== workspace: cargo test --workspace -q =="
cargo test --workspace -q --offline

echo "== repro telemetry self-check (counter reconciliation) =="
cargo run --release --offline -p disengage-bench --bin repro -- \
    table1 --telemetry=json >/dev/null

echo "== chaos smoke: seeded fault-injection campaign =="
cargo run --release --offline -p disengage-bench --bin repro -- \
    --chaos=0.05,7 >/dev/null
test -s chaos_report.json || {
    echo "verify: chaos campaign wrote no chaos_report.json" >&2
    exit 1
}

echo "== chaos smoke: rate 0 must match the clean run =="
cargo run --release --offline -p disengage-bench --bin repro -- \
    --chaos=0 >/dev/null

echo "== parallel determinism: repro --jobs=1 vs the default pool =="
# Stage I-III are deterministic at every worker count; stdout and the
# canonical (wall-clock-zeroed) metrics must match byte for byte.
cargo run --release --offline -p disengage-bench --bin repro -- \
    --jobs=1 --telemetry=stable-json > repro_output.jobs1.txt
mv repro_metrics.json repro_metrics.jobs1.json
cargo run --release --offline -p disengage-bench --bin repro -- \
    --telemetry=stable-json > repro_output.txt
diff repro_output.jobs1.txt repro_output.txt
diff repro_metrics.jobs1.json repro_metrics.json
rm -f repro_output.jobs1.txt repro_metrics.jobs1.json

echo "== parallel determinism: chaos campaign at --jobs=1 vs --jobs=8 =="
cargo run --release --offline -p disengage-bench --bin repro -- \
    --chaos=0.05,7 --jobs=1 > chaos_output.jobs1.txt
mv chaos_report.json chaos_report.jobs1.json
cargo run --release --offline -p disengage-bench --bin repro -- \
    --chaos=0.05,7 --jobs=8 > chaos_output.txt
diff chaos_output.jobs1.txt chaos_output.txt
diff chaos_report.jobs1.json chaos_report.json
rm -f chaos_output.jobs1.txt chaos_output.txt chaos_report.jobs1.json

echo "== parallel speedup bench (enforced on 4+ cores) =="
cargo run --release --offline -p disengage-bench --bin parbench -- \
    --require-speedup

echo "verify: OK"
