#!/usr/bin/env bash
# Offline verification: tier-1 build + tests with warnings denied, the
# full workspace test suite, the repro harness's telemetry self-check
# (nonzero exit if the pipeline's counters fail to reconcile), and a
# seeded chaos smoke campaign (nonzero exit on any panic, unreconciled
# fault ledger, or rate-0 divergence from the clean run). No network
# access is required at any step.
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true
export RUSTFLAGS="-D warnings"

echo "== tier-1: cargo build --release =="
cargo build --release --offline

echo "== tier-1: cargo test -q =="
cargo test -q --offline

echo "== workspace: cargo test --workspace -q =="
cargo test --workspace -q --offline

echo "== repro telemetry self-check (counter reconciliation) =="
cargo run --release --offline -p disengage-bench --bin repro -- \
    table1 --telemetry=json >/dev/null

echo "== chaos smoke: seeded fault-injection campaign =="
cargo run --release --offline -p disengage-bench --bin repro -- \
    --chaos=0.05,7 >/dev/null
test -s chaos_report.json || {
    echo "verify: chaos campaign wrote no chaos_report.json" >&2
    exit 1
}

echo "== chaos smoke: rate 0 must match the clean run =="
cargo run --release --offline -p disengage-bench --bin repro -- \
    --chaos=0 >/dev/null

echo "verify: OK"
