#!/usr/bin/env bash
# Offline verification: tier-1 build + tests with warnings denied, the
# full workspace test suite, the repro harness's telemetry self-check
# (nonzero exit if the pipeline's counters fail to reconcile), a
# seeded chaos smoke campaign (nonzero exit on any panic, unreconciled
# fault ledger, or rate-0 divergence from the clean run), the
# parallel-determinism byte-diffs (repro output, metrics, and the
# provenance lineage log at --jobs=1 vs the default worker pool, clean
# and chaos), a `disengage explain` smoke over all three exemplar
# classes, and Chrome-trace export validation. No network access is
# required at any step.
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true
export RUSTFLAGS="-D warnings"

echo "== tier-1: cargo build --release =="
cargo build --release --offline

echo "== tier-1: cargo test -q =="
cargo test -q --offline

echo "== workspace: cargo test --workspace -q =="
cargo test --workspace -q --offline

echo "== repro telemetry self-check (counter reconciliation) =="
cargo run --release --offline -p disengage-bench --bin repro -- \
    table1 --telemetry=json >/dev/null

echo "== chaos smoke: seeded fault-injection campaign =="
cargo run --release --offline -p disengage-bench --bin repro -- \
    --chaos=0.05,7 >/dev/null
test -s chaos_report.json || {
    echo "verify: chaos campaign wrote no chaos_report.json" >&2
    exit 1
}

echo "== chaos smoke: rate 0 must match the clean run =="
cargo run --release --offline -p disengage-bench --bin repro -- \
    --chaos=0 >/dev/null

echo "== parallel determinism: repro --jobs=1 vs the default pool =="
# Stage I-III are deterministic at every worker count; stdout, the
# canonical (wall-clock-zeroed) metrics, and the provenance log must
# match byte for byte.
cargo run --release --offline -p disengage-bench --bin repro -- \
    --jobs=1 --telemetry=stable-json --lineage=lineage.jsonl > repro_output.jobs1.txt
mv repro_metrics.json repro_metrics.jobs1.json
mv lineage.jsonl lineage.jobs1.jsonl
cargo run --release --offline -p disengage-bench --bin repro -- \
    --telemetry=stable-json --lineage=lineage.jsonl > repro_output.txt
diff repro_output.jobs1.txt repro_output.txt
diff repro_metrics.jobs1.json repro_metrics.json
diff lineage.jobs1.jsonl lineage.jsonl
test -s lineage.jsonl || {
    echo "verify: clean run wrote an empty lineage log" >&2
    exit 1
}
rm -f repro_output.jobs1.txt repro_metrics.jobs1.json lineage.jobs1.jsonl

echo "== parallel determinism: chaos campaign at --jobs=1 vs --jobs=8 =="
cargo run --release --offline -p disengage-bench --bin repro -- \
    --chaos=0.05,7 --jobs=1 --lineage=lineage.jsonl > chaos_output.jobs1.txt
mv chaos_report.json chaos_report.jobs1.json
mv lineage.jsonl lineage.jobs1.jsonl
cargo run --release --offline -p disengage-bench --bin repro -- \
    --chaos=0.05,7 --jobs=8 --lineage=lineage.jsonl > chaos_output.txt
diff chaos_output.jobs1.txt chaos_output.txt
diff chaos_report.jobs1.json chaos_report.json
diff lineage.jobs1.jsonl lineage.jsonl
rm -f chaos_output.jobs1.txt chaos_output.txt chaos_report.jobs1.json lineage.jobs1.jsonl

echo "== provenance: explain covers corrected/quarantined/clean records =="
# The no-target form lists one exemplar subject per class; each must
# then explain to a non-empty causal chain.
cargo run --release --offline --bin disengage -- \
    explain --scale 0.05 --chaos=0.3,7 > explain_index.txt
for class in corrected quarantined clean; do
    subject=$(awk -v c="$class" '$1 == c {print $2}' explain_index.txt)
    test -n "$subject" || {
        echo "verify: explain listed no $class exemplar" >&2
        exit 1
    }
    cargo run --release --offline --bin disengage -- \
        explain "$subject" --scale 0.05 --chaos=0.3,7 | grep -q "stage" || {
        echo "verify: explain $subject produced no stage chain" >&2
        exit 1
    }
done
rm -f explain_index.txt

echo "== execution trace: Chrome trace-event export validates =="
cargo run --release --offline -p disengage-bench --bin repro -- \
    table1 --trace=trace.json >/dev/null
cargo run --release --offline --bin disengage -- check-trace trace.json

echo "== parallel speedup bench (enforced on 4+ cores) =="
cargo run --release --offline -p disengage-bench --bin parbench -- \
    --require-speedup

echo "verify: OK"
