#!/usr/bin/env bash
# Offline verification: tier-1 build + tests with warnings denied, the
# full workspace test suite, the repro harness's telemetry self-check
# (nonzero exit if the pipeline's counters fail to reconcile), a
# seeded chaos smoke campaign (nonzero exit on any panic, unreconciled
# fault ledger, or rate-0 divergence from the clean run), the
# parallel-determinism byte-diffs (repro output, metrics, and the
# provenance lineage log at --jobs=1 vs the default worker pool, clean
# and chaos), an artifact-cache smoke (cold run stores, warm run must
# hit every stage and byte-match; a corrupted artifact must recompute
# silently), a seeded crash-recovery campaign (kill-and-restart trials
# with I/O faults and crashed-peer litter must converge byte-identically
# and audit clean), a two-process shared-cache-dir race (single-flight
# locks, identical output, no lock/tmp litter), a `disengage explain`
# smoke over all three exemplar classes, Chrome-trace export
# validation, a self-profiler smoke
# (stage x phase table, JSON round-trip, folded-stack validation),
# the observability smoke (Prometheus exposition validated by
# check-prom, canonical flight-recorder dumps byte-diffed across
# --jobs clean and under chaos, the clean run gated by the default
# health rules, a heavy chaos run required to breach them, and the
# crash campaign's postmortem dump required to doctor to its seeded
# abort stage), a sharded-cache incremental smoke (a run excluding one
# shard cold-populates the other 17; the following full run must
# replay those 17 from cache and compute exactly the one new shard),
# and the perf-regression gate (fresh parbench/repro measurements —
# including the --scale-stress peak-RSS ladder — vs the committed
# BENCH_*.json baselines, with the 2% obs-overhead and 1.25x
# stress-RSS ceilings; tolerance via DISENGAGE_BENCH_TOLERANCE).
# No network access is required at any step.
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true
export RUSTFLAGS="-D warnings"

echo "== tier-1: cargo build --release =="
cargo build --release --offline

echo "== tier-1: cargo test -q =="
cargo test -q --offline

echo "== workspace: cargo test --workspace -q =="
cargo test --workspace -q --offline

echo "== repro telemetry self-check (counter reconciliation) =="
cargo run --release --offline -p disengage-bench --bin repro -- \
    table1 --telemetry=json --prom=metrics.prom >/dev/null

echo "== observability: Prometheus exposition validates =="
cargo run --release --offline --bin disengage -- check-prom metrics.prom
rm -f metrics.prom

echo "== chaos smoke: seeded fault-injection campaign =="
cargo run --release --offline -p disengage-bench --bin repro -- \
    --chaos=0.05,7 >/dev/null
test -s chaos_report.json || {
    echo "verify: chaos campaign wrote no chaos_report.json" >&2
    exit 1
}

echo "== chaos smoke: rate 0 must match the clean run =="
cargo run --release --offline -p disengage-bench --bin repro -- \
    --chaos=0 >/dev/null

echo "== parallel determinism: repro --jobs=1 vs the default pool =="
# Stage I-III are deterministic at every worker count; stdout, the
# canonical (wall-clock-zeroed) metrics, and the provenance log must
# match byte for byte.
cargo run --release --offline -p disengage-bench --bin repro -- \
    --jobs=1 --telemetry=stable-json --lineage=lineage.jsonl \
    --flight=flight.jobs1.json --health > repro_output.jobs1.txt
mv repro_metrics.json repro_metrics.jobs1.json
mv lineage.jsonl lineage.jobs1.jsonl
cargo run --release --offline -p disengage-bench --bin repro -- \
    --telemetry=stable-json --lineage=lineage.jsonl \
    --flight=flight.json --health > repro_output.txt
diff repro_output.jobs1.txt repro_output.txt
diff repro_metrics.jobs1.json repro_metrics.json
diff lineage.jobs1.jsonl lineage.jsonl
# The canonical flight dump is part of the same contract (and the
# --health above doubles as the clean-run health gate: the default
# rules must pass, or repro exits nonzero and verify stops here).
diff flight.jobs1.json flight.json
test -s lineage.jsonl || {
    echo "verify: clean run wrote an empty lineage log" >&2
    exit 1
}
rm -f repro_output.jobs1.txt repro_metrics.jobs1.json lineage.jobs1.jsonl \
    flight.jobs1.json flight.json

echo "== parallel determinism: chaos campaign at --jobs=1 vs --jobs=8 =="
cargo run --release --offline -p disengage-bench --bin repro -- \
    --chaos=0.05,7 --jobs=1 --lineage=lineage.jsonl \
    --flight=flight.jobs1.json > chaos_output.jobs1.txt
mv chaos_report.json chaos_report.jobs1.json
mv lineage.jsonl lineage.jobs1.jsonl
cargo run --release --offline -p disengage-bench --bin repro -- \
    --chaos=0.05,7 --jobs=8 --lineage=lineage.jsonl \
    --flight=flight.json > chaos_output.txt
diff chaos_output.jobs1.txt chaos_output.txt
diff chaos_report.jobs1.json chaos_report.json
diff lineage.jobs1.jsonl lineage.jsonl
diff flight.jobs1.json flight.json
rm -f chaos_output.jobs1.txt chaos_output.txt chaos_report.jobs1.json \
    lineage.jobs1.jsonl flight.jobs1.json flight.json

echo "== health gate: a heavy chaos run must breach the default rules =="
if cargo run --release --offline --bin disengage -- \
    health --scale=0.05 --chaos=0.3,7 > health_breach.txt; then
    echo "verify: health gate passed a 30%-rate chaos run" >&2
    exit 1
fi
grep -q "FAIL quarantine_rate" health_breach.txt || {
    echo "verify: health breach did not name the quarantine-rate rule" >&2
    exit 1
}
rm -f health_breach.txt

echo "== artifact cache: warm run must replay Stages I-III byte-identically =="
# Cold run populates .disengage-cache; the warm rerun must hit every
# store-cached stage and still print the same bytes (stdout, canonical
# metrics, lineage). Stage keys fold the lineage bit, so every probe
# below records lineage like the cold run did.
rm -rf .disengage-cache
cargo run --release --offline -p disengage-bench --bin repro -- \
    table1 --scale=0.2 --cache-dir=.disengage-cache \
    --telemetry=stable-json --lineage=lineage.jsonl > cache_cold.txt
mv repro_metrics.json cache_cold_metrics.json
mv lineage.jsonl cache_cold_lineage.jsonl
cargo run --release --offline -p disengage-bench --bin repro -- \
    table1 --scale=0.2 --cache-dir=.disengage-cache \
    --telemetry=stable-json --lineage=lineage.jsonl > cache_warm.txt
mv lineage.jsonl cache_warm_lineage.jsonl
diff cache_cold.txt cache_warm.txt
diff cache_cold_metrics.json repro_metrics.json
diff cache_cold_lineage.jsonl cache_warm_lineage.jsonl

echo "== artifact cache: warm hits visible in telemetry, no misses =="
cargo run --release --offline -p disengage-bench --bin repro -- \
    table1 --scale=0.2 --cache-dir=.disengage-cache \
    --telemetry=json --lineage=lineage.jsonl > /dev/null
grep -q '"cache.hit.corpus":18' repro_metrics.json || {
    echo "verify: warm run did not hit all 18 Stage I shard artifacts" >&2
    exit 1
}
grep -q '"cache.hit.normalize":18' repro_metrics.json || {
    echo "verify: warm run did not hit all 18 Stage II shard artifacts" >&2
    exit 1
}
if grep -q '"cache.miss' repro_metrics.json; then
    echo "verify: warm run still missed the cache" >&2
    exit 1
fi

echo "== sharded cache: a one-shard change replays every other shard =="
# Cold-populate every shard except waymo_2016 via the exclusion
# filter, then run the full corpus against the same directory: 17 of
# the 18 shards must replay from cache and only the missing shard may
# compute — the incremental-ingest contract (adding one filing year
# re-OCRs one shard, not a million miles of corpus).
rm -rf .disengage-shard-cache
cargo run --release --offline -p disengage-bench --bin repro -- \
    table1 --scale=0.1 --cache-dir=.disengage-shard-cache \
    --shards=-waymo_2016 --telemetry=json > /dev/null
cargo run --release --offline -p disengage-bench --bin repro -- \
    table1 --scale=0.1 --cache-dir=.disengage-shard-cache \
    --telemetry=json > /dev/null
grep -q '"cache.hit.corpus":17' repro_metrics.json || {
    echo "verify: incremental run did not replay the 17 unchanged shards" >&2
    exit 1
}
grep -q '"cache.miss.corpus":1' repro_metrics.json || {
    echo "verify: incremental run did not compute exactly the one new shard" >&2
    exit 1
}
grep -q '"cache.miss.normalize":1' repro_metrics.json || {
    echo "verify: incremental run recomputed more than the new shard's parse" >&2
    exit 1
}
rm -rf .disengage-shard-cache

echo "== artifact cache: corrupted artifact recomputes, never crashes =="
# Startup recovery frame-validates every committed artifact and removes
# torn ones before any probe, so the truncated file surfaces as
# cache.torn.reclaimed (not cache.corrupt) and the stage recomputes.
artifact=$(find .disengage-cache/corpus -name '*.art' | head -n 1)
test -n "$artifact" || {
    echo "verify: cache smoke left no corpus artifact" >&2
    exit 1
}
truncate -s 7 "$artifact"
cargo run --release --offline -p disengage-bench --bin repro -- \
    table1 --scale=0.2 --cache-dir=.disengage-cache \
    --telemetry=json --lineage=lineage.jsonl > cache_corrupt.txt
grep -q '"cache.torn.reclaimed":1' repro_metrics.json || {
    echo "verify: torn artifact was not reclaimed at startup" >&2
    exit 1
}
diff cache_cold.txt cache_corrupt.txt
rm -rf .disengage-cache
rm -f cache_cold.txt cache_warm.txt cache_corrupt.txt \
    cache_cold_metrics.json cache_cold_lineage.jsonl \
    cache_warm_lineage.jsonl lineage.jsonl

echo "== crash recovery: seeded kill-and-restart campaign =="
# Three trials, fixed seed: each kills the pipeline between stage
# commits (with I/O faults and crashed-peer litter on some trials),
# restarts it, and requires byte-identical convergence with a cold run
# plus a clean cache-directory audit. Exits nonzero on any failure.
rm -rf .disengage-crash-cache crash_report.json flight.json
cargo run --release --offline -p disengage-bench --bin repro -- \
    --crash-campaign=3,7 --scale=0.1 >/dev/null
test -s crash_report.json || {
    echo "verify: crash campaign wrote no crash_report.json" >&2
    exit 1
}
grep -q '"trials":3,"passed":3' crash_report.json || {
    echo "verify: crash campaign did not pass all trials" >&2
    exit 1
}
test ! -e .disengage-crash-cache || {
    echo "verify: passing crash campaign left its cache root behind" >&2
    exit 1
}

echo "== flight recorder: the last killed trial left a doctorable dump =="
# Every interrupted half-run dumps the full flight ring to flight.json
# before CoreError::Interrupted propagates; the campaign's last trial
# owns the file. The postmortem must name that trial's seeded abort
# stage and show the pipeline span still open at death.
stage=$(grep -o '"abort_after":"[a-z]*"' crash_report.json | tail -n 1 | cut -d'"' -f4)
test -n "$stage" || {
    echo "verify: crash_report.json names no abort stage" >&2
    exit 1
}
cargo run --release --offline --bin disengage -- doctor flight.json > doctor.txt
grep -q "interrupted after stage $stage" doctor.txt || {
    echo "verify: doctor postmortem does not name abort stage $stage" >&2
    exit 1
}
grep -q "open spans at dump: pipeline" doctor.txt || {
    echo "verify: doctor postmortem shows no open pipeline span" >&2
    exit 1
}
rm -f crash_report.json flight.json doctor.txt

echo "== concurrent caching: two processes sharing one cache dir =="
# Two repro runs race on one cold cache directory. Advisory lease
# locks make one session compute each missing stage while the other
# waits and replays; both must print identical bytes and the directory
# must end clean (no lock or tmp litter, only committed artifacts).
rm -rf .disengage-cache
cargo run --release --offline -p disengage-bench --bin repro -- \
    table1 --scale=0.1 --cache-dir=.disengage-cache > shared_a.txt &
shared_pid=$!
cargo run --release --offline -p disengage-bench --bin repro -- \
    table1 --scale=0.1 --cache-dir=.disengage-cache > shared_b.txt
wait "$shared_pid"
diff shared_a.txt shared_b.txt
leftovers=$(find .disengage-cache \( -name '*.lock' -o -name '*.tmp' \) | wc -l)
test "$leftovers" -eq 0 || {
    echo "verify: shared-cache race left $leftovers lock/tmp files" >&2
    exit 1
}
rm -rf .disengage-cache shared_a.txt shared_b.txt

echo "== provenance: explain covers corrected/quarantined/clean records =="
# The no-target form lists one exemplar subject per class; each must
# then explain to a non-empty causal chain.
cargo run --release --offline --bin disengage -- \
    explain --scale 0.05 --chaos=0.3,7 > explain_index.txt
for class in corrected quarantined clean; do
    subject=$(awk -v c="$class" '$1 == c {print $2}' explain_index.txt)
    test -n "$subject" || {
        echo "verify: explain listed no $class exemplar" >&2
        exit 1
    }
    cargo run --release --offline --bin disengage -- \
        explain "$subject" --scale 0.05 --chaos=0.3,7 | grep -q "stage" || {
        echo "verify: explain $subject produced no stage chain" >&2
        exit 1
    }
done
rm -f explain_index.txt

echo "== execution trace: Chrome trace-event export validates =="
cargo run --release --offline -p disengage-bench --bin repro -- \
    table1 --trace=trace.json >/dev/null
cargo run --release --offline --bin disengage -- check-trace trace.json

echo "== self-profiler: table, JSON round-trip, folded stacks =="
# The profile command must attribute Stage I to named OCR phases, its
# JSON must parse (the binary self-validates the folded export; the
# JSON sections are asserted in tests/cli.rs), and the folded-stack
# export must satisfy check-folded.
cargo run --release --offline --bin disengage -- \
    profile --scale=0.02 > profile_table.txt
grep -q "digitize" profile_table.txt || {
    echo "verify: profile table attributes no digitize phases" >&2
    exit 1
}
grep -q "stage_i_ocr" profile_table.txt || {
    echo "verify: profile table lists no stages" >&2
    exit 1
}
rm -f profile_table.txt
cargo run --release --offline --bin disengage -- \
    profile --scale=0.02 --profile=json > profile.json
grep -q '"phases"' profile.json || {
    echo "verify: profile JSON has no phases section" >&2
    exit 1
}
rm -f profile.json
cargo run --release --offline --bin disengage -- \
    profile --scale=0.02 --profile=folded > profile.folded
cargo run --release --offline --bin disengage -- check-folded profile.folded
rm -f profile.folded

echo "== parallel speedup bench + scale-stress ladder (enforced on 4+ cores) =="
# Measures the full jobs x scale speedup curve and enforces byte-
# identity at every point. The 1.5x floor at default jobs needs 4+
# cores; below that parbench prints a loud SKIPPED notice and the
# identity checks still gate. --scale-stress appends the peak-RSS
# ladder (one child process per scale point): memory must stay flat
# across 8x corpus growth, gated below by the 1.25x stress_rss_ratio
# ceiling.
cargo run --release --offline -p disengage-bench --bin parbench -- \
    --require-speedup --scale-stress --out=BENCH_par.candidate.json

echo "== perf-regression gate: candidates vs committed baselines =="
# A fresh measurement must stay within tolerance of the committed
# baseline (skipped automatically when the core count differs from the
# baseline machine's). Re-baseline by copying the candidate over the
# baseline; loosen per-run with DISENGAGE_BENCH_TOLERANCE=F.
cargo run --release --offline -p disengage-bench --bin benchgate -- \
    BENCH_par.json BENCH_par.candidate.json
cargo run --release --offline -p disengage-bench --bin repro -- \
    table1 --bench=BENCH_pipeline.candidate.json >/dev/null
cargo run --release --offline -p disengage-bench --bin benchgate -- \
    BENCH_pipeline.json BENCH_pipeline.candidate.json
rm -f BENCH_par.candidate.json BENCH_pipeline.candidate.json

echo "verify: OK"
